//! Offline drop-in for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with spawn closures receiving the scope,
//! backed by `std::thread::scope`.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to spawned closures, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins them all before returning.
    ///
    /// `std::thread::scope` re-raises child panics at the join point, so
    /// unlike upstream crossbeam this never actually returns `Err` — the
    /// `Result` exists for call-site compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let hits = AtomicU32::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
