//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++ with SplitMix64
/// seeding, matching the construction `rand` 0.8 uses for `SmallRng` on
/// 64-bit targets.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // xoshiro forbids the all-zero state; SplitMix64 cannot produce
        // four zero words from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for state seeded from SplitMix64(0) must be stable
        // across refactors: pin the current sequence.
        let mut r = SmallRng::seed_from_u64(0);
        let a = r.next_u64();
        let b = r.next_u64();
        let mut r2 = SmallRng::seed_from_u64(0);
        assert_eq!(a, r2.next_u64());
        assert_eq!(b, r2.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }
}
