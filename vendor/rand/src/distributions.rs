//! Distributions: the `Distribution` trait, the `Standard` distribution and
//! uniform range sampling.

use crate::RngCore;

/// Types that produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over the full domain for
/// integers, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use super::{Distribution, Standard};
    use crate::RngCore;

    /// Types that can be drawn uniformly from a half-open `[lo, hi)` range.
    pub trait SampleUniform: Sized {
        /// Draws uniformly from `[lo, hi)`.
        fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128;
                    // Unbiased via 128-bit widening multiply (Lemire).
                    let mut m = (rng.next_u64() as u128).wrapping_mul(span);
                    let mut low = m as u64;
                    if (low as u128) < span {
                        let threshold = (u64::MAX as u128 + 1 - span) % span;
                        while (low as u128) < threshold {
                            m = (rng.next_u64() as u128).wrapping_mul(span);
                            low = m as u64;
                        }
                    }
                    let offset = (m >> 64) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "cannot sample empty range");
                    let unit: f64 = Standard.sample(rng);
                    lo + (hi - lo) * unit as $t
                }
            }
        )*};
    }
    impl_uniform_float!(f32, f64);

    /// Range-like arguments accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_between(rng, self.start, self.end)
        }
    }

    impl SampleRange<u64> for core::ops::RangeInclusive<u64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
            let (lo, hi) = self.into_inner();
            if hi == u64::MAX {
                return rng.next_u64().max(lo);
            }
            u64::sample_between(rng, lo, hi + 1)
        }
    }

    impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
            let (lo, hi) = self.into_inner();
            usize::sample_between(rng, lo, hi + 1)
        }
    }
}

/// Uniform distribution over a fixed range, usable via `Rng::sample`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: uniform::SampleUniform + Copy + PartialOrd> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        Self { lo, hi }
    }
}

impl<T: uniform::SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_between(rng, self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleUniform;
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn int_sampling_is_unbiased_enough() {
        let mut r = SmallRng::seed_from_u64(7);
        let n = 60_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[u64::sample_between(&mut r, 0, 3) as usize] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.01, "frac {frac}");
        }
    }

    #[test]
    fn uniform_struct_samples_in_range() {
        let mut r = SmallRng::seed_from_u64(8);
        let d = Uniform::new(-4.0f64, 9.0);
        for _ in 0..1_000 {
            let v = d.sample(&mut r);
            assert!((-4.0..9.0).contains(&v));
        }
    }
}
