//! Offline drop-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, API-compatible implementation: `rngs::SmallRng` (xoshiro256++
//! seeded via SplitMix64 — the same construction real `rand` 0.8 uses for
//! `SmallRng` on 64-bit targets), the `Rng`/`RngCore`/`SeedableRng` traits,
//! and the `distributions::Distribution`/`Standard`/`Uniform` types.
//!
//! Draw sequences are deterministic for a fixed seed (the property every
//! simulation and golden test in this repo relies on) but are not guaranteed
//! to be bit-identical to upstream `rand`.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level draw methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, dist: &D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        // All values of a small range appear.
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_unit_draws_near_half() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
