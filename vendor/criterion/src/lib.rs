//! Offline drop-in for the subset of `criterion` this workspace's benches
//! use. It keeps the API shape (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros) but implements a simple
//! best-of-N wall-clock timer instead of criterion's statistical engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark (overridable via the
/// `CRITERION_SHIM_ITERS` environment variable).
fn iters() -> u32 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    /// Times `f`, keeping the best of a few runs.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..iters() {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed();
            if self.best.is_none_or(|b| elapsed < b) {
                self.best = Some(elapsed);
            }
        }
    }
}

fn run_bench(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { best: None };
    f(&mut b);
    match b.best {
        Some(d) => println!("bench {label:<48} {d:>12.3?}"),
        None => println!("bench {label:<48} (no iterations)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted for API parity; the
    /// shim always runs a fixed small number of iterations).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(name, f);
        self
    }
}

/// Declares a group function that runs the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
