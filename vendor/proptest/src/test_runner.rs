//! Deterministic case generation for the proptest shim.

/// Marker returned by `prop_assume!` when a case is rejected.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Fails a property whose assumption rejected every generated case — that
/// almost always means the `prop_assume!` filter is unsatisfiable.
pub fn check_rejection_rate(name: &str, rejected: u32, cases: u32) {
    assert!(
        !(cases > 0 && rejected == cases),
        "property {name}: all {cases} cases rejected by prop_assume!"
    );
}

/// A deterministic PRNG (SplitMix64) seeded from the test name and case
/// index, so every run of the binary replays identical cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one (test, case) pair.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = Self {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        };
        // Warm up so similar names/cases decorrelate.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // 128-bit widening multiply keeps bias negligible for test sizes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_cases_diverge() {
        let a = TestRng::for_case("x", 0).next_u64();
        let b = TestRng::for_case("x", 1).next_u64();
        let c = TestRng::for_case("y", 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::for_case("below", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "all 5 cases rejected")]
    fn full_rejection_panics() {
        check_rejection_rate("t", 5, 5);
    }
}
