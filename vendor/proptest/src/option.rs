//! Option strategies: `prop::option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<S::Value>`; `Some` roughly 75% of the time.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Wraps a strategy in `Option`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let s = of(0u64..10);
        let mut rng = TestRng::for_case("opt", 0);
        let draws: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
    }
}
