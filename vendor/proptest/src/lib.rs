//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest! { #[test] fn name(x in strategy, ...) { ... } }`
//! macro with range strategies (`0u64..100`, `1.0f64..2.0`, `1usize..=8`),
//! tuple strategies, `prop::collection::vec`, `prop::option::of`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs via the normal assertion message), and case generation
//! is deterministic per test name — the same binary always replays the same
//! cases, which is what this repo's acceptance gates want. The case count
//! defaults to 64 and can be raised with `PROPTEST_CASES`.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        // The closure exists so `prop_assume!` can early-return per case.
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let cases = $crate::test_runner::cases();
            let mut rejected = 0u32;
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if outcome.is_err() {
                    rejected += 1;
                }
            }
            $crate::test_runner::check_rejection_rate(stringify!($name), rejected, cases);
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The harness runs and ranges respect bounds.
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -1.5f64..2.5, n in 1usize..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        /// Tuples and collections compose.
        #[test]
        fn composition_works(
            v in prop::collection::vec((0usize..6, prop::option::of(1.0f64..5.0)), 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (i, opt) in &v {
                prop_assert!(*i < 6);
                if let Some(f) = opt {
                    prop_assert!((1.0..5.0).contains(f));
                }
            }
        }

        /// Assumptions skip cases without failing the test.
        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
    }
}
