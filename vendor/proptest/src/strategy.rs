//! The `Strategy` trait and primitive strategies (ranges, tuples).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = TestRng::for_case("ends", 0);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..200 {
            match (0u64..=1).generate(&mut rng) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn signed_ranges_work() {
        let mut rng = TestRng::for_case("signed", 0);
        for _ in 0..1000 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_case("tup", 0);
        let (a, b, c) = (0u32..4, 1.0f64..2.0, Just(7u8)).generate(&mut rng);
        assert!(a < 4);
        assert!((1.0..2.0).contains(&b));
        assert_eq!(c, 7);
    }
}
