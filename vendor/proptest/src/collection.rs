//! Collection strategies: `prop::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for vectors with element strategy `S` and a length range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

/// Builds a vector strategy: lengths drawn from `len`, elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let s = vec(0u64..10, 2..5);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
