//! Offline drop-in for the subset of `parking_lot` this workspace uses: a
//! `Mutex` whose `lock()` returns the guard directly (no `Result`), backed
//! by `std::sync::Mutex` with poison recovery.

use std::fmt;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a panic
    /// in a previous critical section does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
