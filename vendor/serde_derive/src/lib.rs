//! No-op derive macros backing the offline `serde` shim: the workspace uses
//! the derives as documentation/metadata only, so they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing: no code in this workspace serializes via serde.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: no code in this workspace deserializes via serde.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
