//! Offline drop-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata —
//! nothing actually serializes through serde (reports render their own
//! tables). This shim provides the two marker traits and re-exports no-op
//! derive macros so those derives compile without registry access.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
