//! In-the-wild cloud-gaming traffic generator (Fig. 5).
//!
//! Fig. 5 shows 38 hours of network throughput from a production SoC
//! Cluster serving cloud gaming: strongly diurnal, peak-to-trough ratio up
//! to 25×, and overall utilization below 20% of the 20 Gbps fabric. The
//! generator reproduces those statistics: a diurnal base curve with an
//! evening peak, sharpened by an exponent, plus log-normal noise.

use serde::{Deserialize, Serialize};
use socc_sim::rng::SimRng;
use socc_sim::series::TimeSeries;
use socc_sim::time::{SimDuration, SimTime};

/// Gaming traffic model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GamingTraceConfig {
    /// Trough throughput in Gbps.
    pub min_gbps: f64,
    /// Peak throughput in Gbps.
    pub max_gbps: f64,
    /// Hour of day (0–24) of the evening peak.
    pub peak_hour: f64,
    /// Diurnal sharpness (higher = peakier evenings).
    pub sharpness: f64,
    /// Log-normal noise sigma.
    pub noise_sigma: f64,
    /// Local-time offset in hours: the site's population lives this many
    /// hours ahead of the trace clock, so its evening peak arrives
    /// `phase_hours` earlier. Fleet simulations phase sites across time
    /// zones with this so the fleet-wide envelope flattens while every
    /// site keeps the Fig. 5 diurnal shape.
    pub phase_hours: f64,
}

impl Default for GamingTraceConfig {
    fn default() -> Self {
        // Calibrated to Fig. 5: ~25× dynamic range, < 20% of 20 Gbps.
        Self {
            min_gbps: 0.14,
            max_gbps: 3.5,
            peak_hour: 21.0,
            sharpness: 3.0,
            noise_sigma: 0.10,
            phase_hours: 0.0,
        }
    }
}

impl GamingTraceConfig {
    /// Returns the config shifted by `hours` of local-time offset.
    pub fn with_phase(self, hours: f64) -> Self {
        Self {
            phase_hours: hours,
            ..self
        }
    }

    /// Deterministic diurnal envelope in `[0, 1]` at an hour of day.
    pub fn envelope(&self, hour_of_day: f64) -> f64 {
        // Cosine bump centred on the peak hour in the site's local time
        // (trace hour + phase offset), raised to `sharpness`.
        let phase =
            (hour_of_day + self.phase_hours - self.peak_hour) / 24.0 * core::f64::consts::TAU;
        let base = (1.0 + phase.cos()) / 2.0;
        base.powf(self.sharpness)
    }

    /// Expected (noise-free) throughput in Gbps at an hour of day.
    pub fn mean_gbps(&self, hour_of_day: f64) -> f64 {
        self.min_gbps + (self.max_gbps - self.min_gbps) * self.envelope(hour_of_day)
    }

    /// Generates a throughput trace: one sample per `step` over `duration`,
    /// starting at midnight.
    pub fn generate(
        &self,
        duration: SimDuration,
        step: SimDuration,
        rng: &mut SimRng,
    ) -> TimeSeries {
        assert!(!step.is_zero(), "step must be positive");
        let mut series = TimeSeries::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + duration;
        while t <= end {
            let hour = (t.as_secs_f64() / 3600.0) % 24.0;
            let noise = rng.lognormal(0.0, self.noise_sigma);
            series.push(t, (self.mean_gbps(hour) * noise).max(self.min_gbps * 0.5));
            t += step;
        }
        series
    }
}

/// Summary statistics of a throughput trace against a fabric capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Largest sample in Gbps.
    pub peak_gbps: f64,
    /// Smallest sample in Gbps.
    pub trough_gbps: f64,
    /// Peak ÷ trough.
    pub dynamic_range: f64,
    /// Time-average utilization of the capacity.
    pub mean_utilization: f64,
}

/// Computes trace statistics against a capacity in Gbps.
pub fn trace_stats(series: &TimeSeries, capacity_gbps: f64) -> Option<TraceStats> {
    let peak = series.max_value()?;
    let trough = series.min_value()?;
    let (first, last) = (series.samples().first()?.0, series.samples().last()?.0);
    let mean = series.time_average(first, last);
    Some(TraceStats {
        peak_gbps: peak,
        trough_gbps: trough,
        dynamic_range: peak / trough,
        mean_utilization: mean / capacity_gbps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_38h_trace(seed: u64) -> TimeSeries {
        let cfg = GamingTraceConfig::default();
        let mut rng = SimRng::seed(seed);
        cfg.generate(
            SimDuration::from_hours(38),
            SimDuration::from_mins(5),
            &mut rng,
        )
    }

    #[test]
    fn dynamic_range_near_25x() {
        // Fig. 5: "the disparity between its highest and lowest outbound
        // traffic reaches up to 25×".
        let stats = trace_stats(&default_38h_trace(1), 20.0).unwrap();
        assert!(
            (15.0..=45.0).contains(&stats.dynamic_range),
            "range {}",
            stats.dynamic_range
        );
    }

    #[test]
    fn utilization_stays_below_20_percent() {
        // §2.3: "the resource usage of all deployed SoC Clusters remains
        // below 20%".
        for seed in 0..5 {
            let stats = trace_stats(&default_38h_trace(seed), 20.0).unwrap();
            assert!(
                stats.mean_utilization < 0.20,
                "seed {seed}: {}",
                stats.mean_utilization
            );
            assert!(stats.peak_gbps < 20.0 * 0.25);
        }
    }

    #[test]
    fn envelope_peaks_at_peak_hour() {
        let cfg = GamingTraceConfig::default();
        let at_peak = cfg.envelope(cfg.peak_hour);
        assert!((at_peak - 1.0).abs() < 1e-9);
        for hour in [3.0, 9.0, 15.0] {
            assert!(cfg.envelope(hour) < at_peak);
        }
        // Deep trough opposite the peak.
        assert!(cfg.envelope(cfg.peak_hour - 12.0) < 0.01);
    }

    #[test]
    fn phase_shifts_the_peak_without_changing_its_height() {
        let base = GamingTraceConfig::default();
        let shifted = base.with_phase(6.0);
        // A population 6 h ahead peaks 6 h earlier on the trace clock.
        assert!((shifted.envelope(base.peak_hour - 6.0) - 1.0).abs() < 1e-9);
        assert!(shifted.envelope(base.peak_hour) < 0.3);
        // The envelope is the same curve, just translated.
        for hour in [0.0, 5.0, 11.0, 17.0, 23.0] {
            let a = base.envelope(hour);
            let b = shifted.envelope(hour - 6.0);
            assert!((a - b).abs() < 1e-9, "hour {hour}: {a} vs {b}");
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let a = default_38h_trace(9);
        let b = default_38h_trace(9);
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn sample_count_matches_duration() {
        let trace = default_38h_trace(3);
        // 38 h at 5-minute steps: 457 samples (inclusive endpoints).
        assert_eq!(trace.len(), 38 * 12 + 1);
    }
}
