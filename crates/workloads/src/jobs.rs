//! Job-stream generators: transcode jobs and DL request streams.

use serde::{Deserialize, Serialize};
use socc_sim::rng::SimRng;
use socc_sim::time::{SimDuration, SimTime};

use crate::arrivals::DiurnalPoisson;

/// One archive transcode job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveJob {
    /// Submission time.
    pub at: SimTime,
    /// vbench video id ("V1".."V6").
    pub video_id: String,
    /// Clip length in frames.
    pub frames: u64,
}

/// Generates an archive job stream: Poisson arrivals over the vbench
/// catalogue with log-normal clip lengths (median ~2 minutes of video).
pub fn archive_job_stream(
    rate_per_hour: f64,
    horizon: SimDuration,
    rng: &mut SimRng,
) -> Vec<ArchiveJob> {
    let arrivals = crate::arrivals::Poisson::new(rate_per_hour / 3600.0).generate(horizon, rng);
    arrivals
        .into_iter()
        .map(|at| {
            let idx = rng.uniform_usize(0, 6);
            let video_id = format!("V{}", idx + 1);
            let minutes = rng.lognormal((2.0f64).ln(), 0.7);
            let fps = [30.0, 30.0, 59.0, 25.0, 29.0, 30.0][idx];
            ArchiveJob {
                at,
                video_id,
                frames: (minutes * 60.0 * fps).max(1.0) as u64,
            }
        })
        .collect()
}

/// One live-stream session: start time plus duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveSession {
    /// Session start.
    pub start: SimTime,
    /// Session length.
    pub duration: SimDuration,
    /// vbench video id.
    pub video_id: String,
}

/// Generates diurnal live-stream sessions (live traffic follows viewers).
pub fn live_session_stream(
    peak_starts_per_hour: f64,
    horizon: SimDuration,
    rng: &mut SimRng,
) -> Vec<LiveSession> {
    let process = DiurnalPoisson {
        peak_rate: peak_starts_per_hour / 3600.0,
        trough_ratio: 0.08,
        peak_hour: 20.0,
    };
    process
        .generate(horizon, rng)
        .into_iter()
        .map(|start| {
            let idx = rng.uniform_usize(0, 6);
            let mins = rng.lognormal((25.0f64).ln(), 0.6);
            LiveSession {
                start,
                duration: SimDuration::from_secs_f64(mins * 60.0),
                video_id: format!("V{}", idx + 1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_stream_rate_and_catalogue() {
        let mut rng = SimRng::seed(21);
        let jobs = archive_job_stream(60.0, SimDuration::from_hours(48), &mut rng);
        let per_hour = jobs.len() as f64 / 48.0;
        assert!((per_hour - 60.0).abs() < 6.0, "rate {per_hour}");
        for j in &jobs {
            assert!(j.frames > 0);
            assert!(["V1", "V2", "V3", "V4", "V5", "V6"].contains(&j.video_id.as_str()));
        }
    }

    #[test]
    fn clip_lengths_median_near_2min() {
        let mut rng = SimRng::seed(22);
        let jobs = archive_job_stream(600.0, SimDuration::from_hours(24), &mut rng);
        // Normalize by fps: median minutes ≈ 2.
        let mins: Vec<f64> = jobs
            .iter()
            .map(|j| {
                let fps = match j.video_id.as_str() {
                    "V3" => 59.0,
                    "V4" => 25.0,
                    "V5" => 29.0,
                    _ => 30.0,
                };
                j.frames as f64 / fps / 60.0
            })
            .collect();
        let median = socc_sim::stats::percentile(&mins, 0.5).unwrap();
        assert!((1.5..=2.6).contains(&median), "median {median}");
    }

    #[test]
    fn live_sessions_follow_diurnal_shape() {
        let mut rng = SimRng::seed(23);
        let sessions = live_session_stream(200.0, SimDuration::from_hours(24), &mut rng);
        let evening = sessions
            .iter()
            .filter(|s| (18.0..23.0).contains(&(s.start.as_secs_f64() / 3600.0)))
            .count();
        let morning = sessions
            .iter()
            .filter(|s| (5.0..10.0).contains(&(s.start.as_secs_f64() / 3600.0)))
            .count();
        assert!(
            evening > 2 * morning.max(1),
            "evening {evening} morning {morning}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = archive_job_stream(60.0, SimDuration::from_hours(4), &mut SimRng::seed(3));
        let b = archive_job_stream(60.0, SimDuration::from_hours(4), &mut SimRng::seed(3));
        assert_eq!(a, b);
    }
}
