//! Arrival processes: Poisson, Markov-modulated, and diurnal-modulated.
//!
//! Edge workloads are "mainly user-centric, therefore highly dependent on
//! user activities" (§2.3) — load generators need both memoryless arrivals
//! and realistic day-shaped modulation.

use socc_sim::rng::SimRng;
use socc_sim::time::{SimDuration, SimTime};

/// A homogeneous Poisson arrival process.
#[derive(Debug, Clone)]
pub struct Poisson {
    rate_per_s: f64,
}

impl Poisson {
    /// Creates a process with the given arrival rate (events/s).
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_s` is not strictly positive.
    pub fn new(rate_per_s: f64) -> Self {
        assert!(rate_per_s > 0.0, "rate must be positive");
        Self { rate_per_s }
    }

    /// Generates arrival times in `[0, horizon)`.
    pub fn generate(&self, horizon: SimDuration, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = 0.0;
        loop {
            t += rng.exponential(self.rate_per_s);
            if t >= horizon.as_secs_f64() {
                return out;
            }
            out.push(SimTime::from_secs_f64(t));
        }
    }
}

/// A two-state Markov-modulated Poisson process (bursty arrivals).
#[derive(Debug, Clone)]
pub struct Mmpp2 {
    /// Arrival rate in the calm state (events/s).
    pub calm_rate: f64,
    /// Arrival rate in the burst state.
    pub burst_rate: f64,
    /// Mean dwell time in the calm state (s).
    pub calm_dwell_s: f64,
    /// Mean dwell time in the burst state (s).
    pub burst_dwell_s: f64,
}

impl Mmpp2 {
    /// Generates arrival times in `[0, horizon)`.
    pub fn generate(&self, horizon: SimDuration, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = 0.0;
        let end = horizon.as_secs_f64();
        let mut bursty = false;
        let mut state_ends = rng.exponential(1.0 / self.calm_dwell_s);
        while t < end {
            let rate = if bursty {
                self.burst_rate
            } else {
                self.calm_rate
            };
            let next = t + rng.exponential(rate);
            if next < state_ends.min(end) {
                out.push(SimTime::from_secs_f64(next));
                t = next;
            } else {
                t = state_ends;
                bursty = !bursty;
                let dwell = if bursty {
                    self.burst_dwell_s
                } else {
                    self.calm_dwell_s
                };
                state_ends = t + rng.exponential(1.0 / dwell);
            }
        }
        out
    }

    /// Long-run average arrival rate.
    pub fn mean_rate(&self) -> f64 {
        let total = self.calm_dwell_s + self.burst_dwell_s;
        (self.calm_rate * self.calm_dwell_s + self.burst_rate * self.burst_dwell_s) / total
    }
}

/// A non-homogeneous Poisson process whose rate follows a diurnal shape
/// (thinning method).
#[derive(Debug, Clone)]
pub struct DiurnalPoisson {
    /// Peak arrival rate (events/s) at the peak hour.
    pub peak_rate: f64,
    /// Trough-to-peak ratio in `(0, 1]`.
    pub trough_ratio: f64,
    /// Hour of day of the peak.
    pub peak_hour: f64,
}

impl DiurnalPoisson {
    /// Instantaneous rate at an absolute time (day starts at t = 0).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let hour = (t.as_secs_f64() / 3600.0) % 24.0;
        let phase = (hour - self.peak_hour) / 24.0 * core::f64::consts::TAU;
        let shape = (1.0 + phase.cos()) / 2.0;
        self.peak_rate * (self.trough_ratio + (1.0 - self.trough_ratio) * shape)
    }

    /// Generates arrival times in `[0, horizon)` by thinning.
    pub fn generate(&self, horizon: SimDuration, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = 0.0;
        let end = horizon.as_secs_f64();
        loop {
            t += rng.exponential(self.peak_rate);
            if t >= end {
                return out;
            }
            let at = SimTime::from_secs_f64(t);
            if rng.chance(self.rate_at(at) / self.peak_rate) {
                out.push(at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let mut rng = SimRng::seed(5);
        let arrivals = Poisson::new(10.0).generate(SimDuration::from_secs(1000), &mut rng);
        let rate = arrivals.len() as f64 / 1000.0;
        assert!((rate - 10.0).abs() < 0.5, "rate {rate}");
    }

    #[test]
    fn poisson_times_sorted_and_bounded() {
        let mut rng = SimRng::seed(6);
        let horizon = SimDuration::from_secs(100);
        let arrivals = Poisson::new(5.0).generate(horizon, &mut rng);
        for pair in arrivals.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert!(arrivals.iter().all(|&t| t < SimTime::ZERO + horizon));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = Poisson::new(0.0);
    }

    #[test]
    fn mmpp_mean_rate_between_states() {
        let p = Mmpp2 {
            calm_rate: 1.0,
            burst_rate: 50.0,
            calm_dwell_s: 90.0,
            burst_dwell_s: 10.0,
        };
        let mut rng = SimRng::seed(7);
        let arrivals = p.generate(SimDuration::from_secs(20_000), &mut rng);
        let rate = arrivals.len() as f64 / 20_000.0;
        assert!(
            (rate - p.mean_rate()).abs() / p.mean_rate() < 0.15,
            "rate {rate}"
        );
        assert!(p.mean_rate() > 1.0 && p.mean_rate() < 50.0);
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Compare squared coefficient of variation of interarrivals.
        let scv = |times: &[SimTime]| {
            let gaps: Vec<f64> = times
                .windows(2)
                .map(|w| (w[1] - w[0]).as_secs_f64())
                .collect();
            let mean = socc_sim::stats::mean(&gaps);
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let mut rng = SimRng::seed(8);
        let mmpp = Mmpp2 {
            calm_rate: 1.0,
            burst_rate: 60.0,
            calm_dwell_s: 60.0,
            burst_dwell_s: 6.0,
        };
        let bursty = mmpp.generate(SimDuration::from_secs(30_000), &mut rng);
        let smooth =
            Poisson::new(mmpp.mean_rate()).generate(SimDuration::from_secs(30_000), &mut rng);
        assert!(
            scv(&bursty) > 2.0 * scv(&smooth),
            "{} vs {}",
            scv(&bursty),
            scv(&smooth)
        );
    }

    #[test]
    fn diurnal_peaks_at_peak_hour() {
        let d = DiurnalPoisson {
            peak_rate: 100.0,
            trough_ratio: 0.05,
            peak_hour: 21.0,
        };
        let peak = d.rate_at(SimTime::from_secs_f64(21.0 * 3600.0));
        let trough = d.rate_at(SimTime::from_secs_f64(9.0 * 3600.0));
        assert!((peak - 100.0).abs() < 1e-9);
        assert!(trough < 0.1 * peak);
    }

    #[test]
    fn diurnal_thinning_tracks_shape() {
        let d = DiurnalPoisson {
            peak_rate: 2.0,
            trough_ratio: 0.1,
            peak_hour: 12.0,
        };
        let mut rng = SimRng::seed(9);
        let arrivals = d.generate(SimDuration::from_hours(24), &mut rng);
        // Count arrivals near noon vs near midnight.
        let noon = arrivals
            .iter()
            .filter(|t| (10.0..14.0).contains(&(t.as_secs_f64() / 3600.0)))
            .count();
        let midnight = arrivals
            .iter()
            .filter(|t| {
                let h = t.as_secs_f64() / 3600.0;
                !(2.0..22.0).contains(&h)
            })
            .count();
        assert!(
            noon > 3 * midnight.max(1),
            "noon {noon} vs midnight {midnight}"
        );
    }
}
