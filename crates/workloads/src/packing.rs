//! VM-to-SoC consolidation: how many SoC Clusters replace a VM fleet?
//!
//! Fig. 1 shows that most VMs *individually* fit a mobile SoC; this module
//! answers the operational follow-up — bin-packing a sampled fleet onto
//! SoCs (one VM per SoC, the cluster's isolation granularity) versus onto
//! traditional servers, and what fraction of the fleet is cluster-eligible.

use serde::{Deserialize, Serialize};

use crate::vmtrace::{VmPopulation, VmSubscription};

/// Outcome of consolidating a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationReport {
    /// VMs in the fleet.
    pub total_vms: usize,
    /// VMs that fit a SoC (cluster-eligible).
    pub eligible: usize,
    /// SoC Clusters (60 SoCs each) needed for the eligible VMs.
    pub clusters_needed: usize,
    /// Traditional servers needed for the *whole* fleet (resource
    /// bin-packing on 40 cores / 768 GB / 1.92 TB per server).
    pub traditional_needed: usize,
    /// Mean core utilization of the SoCs hosting eligible VMs.
    pub soc_core_utilization: f64,
}

/// Bin-packs a fleet. One SoC hosts exactly one VM (the cluster's
/// hard-isolation model, §2.2); traditional servers use first-fit
/// decreasing over cores with memory/storage caps.
pub fn consolidate(vms: &[VmSubscription]) -> ConsolidationReport {
    let eligible: Vec<&VmSubscription> = vms.iter().filter(|v| v.fits_in_soc()).collect();
    let clusters_needed = eligible.len().div_ceil(socc_hw::calib::CLUSTER_SOC_COUNT);
    let used_cores: f64 = eligible.iter().map(|v| v.cores as f64).sum();
    let soc_core_utilization = if eligible.is_empty() {
        0.0
    } else {
        used_cores / (eligible.len() as f64 * socc_hw::calib::SOC_CPU_CORES as f64)
    };

    // First-fit decreasing onto traditional servers.
    const SERVER_CORES: f64 = 40.0;
    const SERVER_MEM: f64 = 768.0;
    const SERVER_STORAGE: f64 = 1920.0 + 30_000.0;
    let mut sorted: Vec<&VmSubscription> = vms.iter().collect();
    sorted.sort_by_key(|v| core::cmp::Reverse(v.cores));
    let mut servers: Vec<(f64, f64, f64)> = Vec::new();
    for vm in sorted {
        let need = (vm.cores as f64, vm.mem_gb, vm.storage_gb);
        match servers.iter_mut().find(|(c, m, s)| {
            *c + need.0 <= SERVER_CORES
                && *m + need.1 <= SERVER_MEM
                && *s + need.2 <= SERVER_STORAGE
        }) {
            Some(server) => {
                server.0 += need.0;
                server.1 += need.1;
                server.2 += need.2;
            }
            None => servers.push(need),
        }
    }

    ConsolidationReport {
        total_vms: vms.len(),
        eligible: eligible.len(),
        clusters_needed,
        traditional_needed: servers.len(),
        soc_core_utilization,
    }
}

/// Samples a fleet and consolidates it.
pub fn consolidate_population(
    pop: VmPopulation,
    n: usize,
    rng: &mut socc_sim::rng::SimRng,
) -> ConsolidationReport {
    let vms = pop.sample_many(n, rng);
    consolidate(&vms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socc_sim::rng::SimRng;

    #[test]
    fn azure_fleet_mostly_eligible() {
        let mut rng = SimRng::seed(31);
        let r = consolidate_population(VmPopulation::Azure, 6000, &mut rng);
        assert_eq!(r.total_vms, 6000);
        let frac = r.eligible as f64 / r.total_vms as f64;
        assert!((0.60..=0.72).contains(&frac), "eligible {frac}");
        assert_eq!(r.clusters_needed, r.eligible.div_ceil(60));
    }

    #[test]
    fn soc_cores_are_underfilled_by_small_vms() {
        // One-VM-per-SoC wastes cores on 1–2 core VMs: mean utilization is
        // well below 1 — quantifying the isolation granularity's cost.
        let mut rng = SimRng::seed(32);
        let r = consolidate_population(VmPopulation::Azure, 6000, &mut rng);
        assert!(
            (0.2..=0.6).contains(&r.soc_core_utilization),
            "{}",
            r.soc_core_utilization
        );
    }

    #[test]
    fn traditional_packing_respects_all_dimensions() {
        let vms = vec![
            VmSubscription {
                cores: 40,
                mem_gb: 100.0,
                storage_gb: 100.0,
            },
            VmSubscription {
                cores: 40,
                mem_gb: 100.0,
                storage_gb: 100.0,
            },
            VmSubscription {
                cores: 2,
                mem_gb: 760.0,
                storage_gb: 100.0,
            },
        ];
        let r = consolidate(&vms);
        // Two 40-core VMs can't share; the memory hog needs its own box
        // (40-core server already holds the first VM's cores? no — FFD:
        // each 40-core VM fills a server; the 760 GB VM fits neither).
        assert_eq!(r.traditional_needed, 3);
    }

    #[test]
    fn empty_fleet() {
        let r = consolidate(&[]);
        assert_eq!(r.total_vms, 0);
        assert_eq!(r.clusters_needed, 0);
        assert_eq!(r.traditional_needed, 0);
        assert_eq!(r.soc_core_utilization, 0.0);
    }

    #[test]
    fn alibaba_needs_relatively_more_traditional_capacity() {
        // Edge VMs are bigger: fewer fit SoCs, and each eats more server.
        let mut rng = SimRng::seed(33);
        let az = consolidate_population(VmPopulation::Azure, 4000, &mut rng);
        let ali = consolidate_population(VmPopulation::AlibabaEns, 4000, &mut rng);
        let az_frac = az.eligible as f64 / az.total_vms as f64;
        let ali_frac = ali.eligible as f64 / ali.total_vms as f64;
        assert!(az_frac > ali_frac);
        assert!(ali.traditional_needed > az.traditional_needed);
    }
}
