//! `socc-workloads` — workload and trace generators.
//!
//! Synthetic substitutes for the paper's proprietary datasets:
//!
//! - [`vmtrace`]: VM-subscription populations fitted to Fig. 1's Azure and
//!   Alibaba ENS CDFs (66% / 36% fit-in-SoC);
//! - [`gaming`]: the 38-hour production cloud-gaming traffic trace of
//!   Fig. 5 (25× dynamic range, < 20% utilization);
//! - [`arrivals`]: Poisson / MMPP / diurnal arrival processes;
//! - [`jobs`]: archive-transcode and live-session job streams.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod gaming;
pub mod jobs;
pub mod packing;
pub mod vmtrace;

pub use gaming::{GamingTraceConfig, TraceStats};
pub use vmtrace::{VmPopulation, VmSubscription};
