//! Synthetic VM-subscription populations (Fig. 1).
//!
//! Fig. 1 plots the CDF of resource subscriptions of 2.7 M Azure VMs and
//! 7,410 Alibaba ENS VMs, and finds that 66% / 36% respectively fit within
//! one Snapdragon 865's envelope (8 cores, 12 GB RAM, 256 GB storage). The
//! mixtures below are fitted to those published quantiles: Azure skews
//! small-and-many; edge VMs are mid-sized (the ENS median is 8 vCPUs, §3).

use serde::{Deserialize, Serialize};
use socc_sim::rng::SimRng;

/// One VM's resource subscription.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmSubscription {
    /// vCPU cores.
    pub cores: u32,
    /// Memory in GB.
    pub mem_gb: f64,
    /// Storage in GB.
    pub storage_gb: f64,
}

impl VmSubscription {
    /// Whether this VM fits within one Snapdragon 865 SoC's envelope.
    pub fn fits_in_soc(&self) -> bool {
        self.cores <= 8 && self.mem_gb <= 12.0 && self.storage_gb <= 256.0
    }
}

/// A VM population model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmPopulation {
    /// Microsoft Azure (Cortez et al., paper ref 46): 2.7 M VMs, mostly small.
    Azure,
    /// Alibaba ENS (Xu et al., paper ref 85): 7,410 edge VMs, median 8 vCPUs.
    AlibabaEns,
}

impl VmPopulation {
    /// Number of VMs in the paper's dataset.
    pub fn dataset_size(self) -> usize {
        match self {
            VmPopulation::Azure => 2_700_000,
            VmPopulation::AlibabaEns => 7_410,
        }
    }

    /// Fraction of VMs the paper reports as fitting in one SoC.
    pub fn paper_fit_fraction(self) -> f64 {
        match self {
            VmPopulation::Azure => 0.66,
            VmPopulation::AlibabaEns => 0.36,
        }
    }

    /// `(cores, probability)` mixture of vCPU counts.
    fn core_pmf(self) -> &'static [(u32, f64)] {
        match self {
            VmPopulation::Azure => &[
                (1, 0.22),
                (2, 0.30),
                (4, 0.24),
                (8, 0.14),
                (16, 0.06),
                (32, 0.03),
                (64, 0.01),
            ],
            VmPopulation::AlibabaEns => &[
                (1, 0.08),
                (2, 0.17),
                (4, 0.22),
                (8, 0.28),
                (16, 0.15),
                (32, 0.10),
            ],
        }
    }

    /// `(GB per core, probability)` memory ratio mixture.
    fn mem_per_core_pmf(self) -> &'static [(f64, f64)] {
        match self {
            VmPopulation::Azure => &[(1.0, 0.30), (2.0, 0.35), (4.0, 0.25), (8.0, 0.10)],
            VmPopulation::AlibabaEns => &[(1.0, 0.15), (2.0, 0.35), (4.0, 0.35), (8.0, 0.15)],
        }
    }

    /// Median of the log-normal storage distribution in GB.
    fn storage_median_gb(self) -> f64 {
        match self {
            VmPopulation::Azure => 32.0,
            VmPopulation::AlibabaEns => 60.0,
        }
    }

    fn sample_pmf<T: Copy>(rng: &mut SimRng, pmf: &[(T, f64)]) -> T {
        let u = rng.next_f64();
        let mut acc = 0.0;
        for &(v, p) in pmf {
            acc += p;
            if u < acc {
                return v;
            }
        }
        pmf.last().expect("non-empty pmf").0
    }

    /// Samples one VM subscription.
    pub fn sample(self, rng: &mut SimRng) -> VmSubscription {
        let cores = Self::sample_pmf(rng, self.core_pmf());
        let mem_per_core = Self::sample_pmf(rng, self.mem_per_core_pmf());
        let storage = rng.lognormal(self.storage_median_gb().ln(), 1.2);
        VmSubscription {
            cores,
            mem_gb: cores as f64 * mem_per_core,
            storage_gb: storage,
        }
    }

    /// Samples `n` VMs.
    pub fn sample_many(self, n: usize, rng: &mut SimRng) -> Vec<VmSubscription> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Monte-Carlo estimate of the fit-in-SoC fraction.
    pub fn fit_fraction(self, n: usize, rng: &mut SimRng) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let fit = (0..n).filter(|_| self.sample(rng).fits_in_soc()).count();
        fit as f64 / n as f64
    }
}

/// Empirical CDF over a metric of a sampled population: returns
/// `(value, cumulative fraction)` at each distinct value, ascending.
pub fn empirical_cdf(values: &mut [f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in CDF input"));
    let n = values.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == v => last.1 = frac,
            _ => out.push((v, frac)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_fit_fraction_near_66_percent() {
        let mut rng = SimRng::seed(1);
        let frac = VmPopulation::Azure.fit_fraction(100_000, &mut rng);
        assert!((0.62..=0.70).contains(&frac), "frac {frac}");
    }

    #[test]
    fn alibaba_fit_fraction_near_36_percent() {
        let mut rng = SimRng::seed(2);
        let frac = VmPopulation::AlibabaEns.fit_fraction(100_000, &mut rng);
        assert!((0.31..=0.41).contains(&frac), "frac {frac}");
    }

    #[test]
    fn alibaba_median_is_8_vcpus() {
        // §3: "8 is the median number of vCPU cores for edge IaaS VMs".
        let mut rng = SimRng::seed(3);
        let cores: Vec<f64> = VmPopulation::AlibabaEns
            .sample_many(50_000, &mut rng)
            .iter()
            .map(|v| v.cores as f64)
            .collect();
        let median = socc_sim::stats::percentile(&cores, 0.5).unwrap();
        assert_eq!(median, 8.0);
    }

    #[test]
    fn azure_skews_smaller_than_alibaba() {
        let mut rng = SimRng::seed(4);
        let az: f64 = VmPopulation::Azure
            .sample_many(20_000, &mut rng)
            .iter()
            .map(|v| v.cores as f64)
            .sum::<f64>()
            / 20_000.0;
        let ali: f64 = VmPopulation::AlibabaEns
            .sample_many(20_000, &mut rng)
            .iter()
            .map(|v| v.cores as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!(az < ali, "azure mean {az} vs alibaba {ali}");
    }

    #[test]
    fn pmfs_sum_to_one() {
        for pop in [VmPopulation::Azure, VmPopulation::AlibabaEns] {
            let c: f64 = pop.core_pmf().iter().map(|&(_, p)| p).sum();
            let m: f64 = pop.mem_per_core_pmf().iter().map(|&(_, p)| p).sum();
            assert!((c - 1.0).abs() < 1e-9, "{pop:?} cores {c}");
            assert!((m - 1.0).abs() < 1e-9, "{pop:?} mem {m}");
        }
    }

    #[test]
    fn fit_predicate_boundaries() {
        let fits = VmSubscription {
            cores: 8,
            mem_gb: 12.0,
            storage_gb: 256.0,
        };
        assert!(fits.fits_in_soc());
        assert!(!VmSubscription { cores: 9, ..fits }.fits_in_soc());
        assert!(!VmSubscription {
            mem_gb: 12.5,
            ..fits
        }
        .fits_in_soc());
        assert!(!VmSubscription {
            storage_gb: 257.0,
            ..fits
        }
        .fits_in_soc());
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let mut values = vec![4.0, 1.0, 2.0, 2.0, 8.0];
        let cdf = empirical_cdf(&mut values);
        assert_eq!(cdf.first().unwrap().0, 1.0);
        assert_eq!(cdf.last().unwrap(), &(8.0, 1.0));
        for pair in cdf.windows(2) {
            assert!(pair[1].0 > pair[0].0);
            assert!(pair[1].1 > pair[0].1);
        }
        // Duplicate value collapsed with cumulative fraction.
        let two = cdf.iter().find(|(v, _)| *v == 2.0).unwrap();
        assert!((two.1 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_cdf() {
        assert!(empirical_cdf(&mut []).is_empty());
    }
}
