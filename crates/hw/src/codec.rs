//! Hardware video codec models (the mobile Venus ASIC and NVIDIA NVENC).
//!
//! Transcode *behaviour* (rate control, quality) lives in `socc-video`;
//! this module models raw capability: how many macroblocks per second the
//! ASIC processes, how many concurrent sessions it accepts, and what it
//! draws from the power rail.

use serde::{Deserialize, Serialize};
use socc_sim::units::Power;

use crate::power::{LoadPowerModel, PowerState, Utilization};

/// A hardware encode/decode engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HwCodecModel {
    /// Marketing name.
    pub name: String,
    /// Sustained transcode throughput in 16×16 macroblocks per second,
    /// at unit content-complexity.
    pub throughput_mb_per_s: f64,
    /// Maximum concurrent codec sessions the firmware accepts.
    pub max_sessions: usize,
    /// Power model of the engine (plus its delegation daemons).
    pub power_model: LoadPowerModel,
    /// CPU perf-units consumed per active session by the software
    /// delegation daemon (§4.4: "software delegation daemon processes of
    /// SoC hardware codecs also consume some CPU resources").
    pub delegation_cpu_pu_per_session: f64,
}

impl HwCodecModel {
    /// Electrical power at a state and utilization.
    pub fn power(&self, state: PowerState, util: Utilization) -> Power {
        self.power_model.power(state, util)
    }

    /// Workload (idle-excluded) power.
    pub fn workload_power(&self, util: Utilization) -> Power {
        self.power_model.workload_power(util)
    }

    /// Maximum concurrent streams given a per-stream cost in macroblocks/s
    /// (already weighted by content complexity), bounded by the session cap.
    pub fn max_streams(&self, cost_mb_per_s: f64) -> usize {
        if cost_mb_per_s <= 0.0 {
            return self.max_sessions;
        }
        let by_throughput = (self.throughput_mb_per_s / cost_mb_per_s).floor() as usize;
        by_throughput.min(self.max_sessions)
    }

    /// The Venus encode/decode ASIC of a Snapdragon 865.
    ///
    /// Throughput and session cap are calibrated so Table 3's HW-codec
    /// max-stream column (16/16/12/16/7/2 for V1–V6) is reproduced by the
    /// vbench cost model in `socc-video`.
    pub fn venus_sd865() -> Self {
        Self {
            name: "Qualcomm Venus (SD865)".to_string(),
            throughput_mb_per_s: 1.92e6,
            max_sessions: 16,
            power_model: LoadPowerModel::new(
                crate::calib::SOC_HW_CODEC_POWER.0,
                crate::calib::SOC_HW_CODEC_POWER.1,
                crate::calib::SOC_HW_CODEC_POWER.2,
            ),
            delegation_cpu_pu_per_session: 45.0,
        }
    }

    /// The NVENC/NVDEC engines of one NVIDIA A40.
    ///
    /// Sized so the 8-GPU server's live-stream counts land at the Table 5
    /// TpC-derived whole-server throughputs.
    pub fn nvenc_a40() -> Self {
        Self {
            name: "NVIDIA NVENC (A40)".to_string(),
            throughput_mb_per_s: 3.87e6,
            max_sessions: 96,
            power_model: LoadPowerModel::new(
                crate::calib::A40_TRANSCODE_POWER.0,
                crate::calib::A40_TRANSCODE_POWER.1,
                crate::calib::A40_TRANSCODE_POWER.2,
            ),
            delegation_cpu_pu_per_session: 120.0, // host FFmpeg feeding/demux
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_cap_binds_for_cheap_streams() {
        let venus = HwCodecModel::venus_sd865();
        assert_eq!(venus.max_streams(1.0), venus.max_sessions);
        assert_eq!(venus.max_streams(0.0), venus.max_sessions);
    }

    #[test]
    fn throughput_binds_for_heavy_streams() {
        let venus = HwCodecModel::venus_sd865();
        // A ~950k MB/s stream (V6-class UHD) fits twice.
        assert_eq!(venus.max_streams(950_000.0), 2);
    }

    #[test]
    fn nvenc_outscales_venus() {
        let venus = HwCodecModel::venus_sd865();
        let nvenc = HwCodecModel::nvenc_a40();
        assert!(nvenc.throughput_mb_per_s > 2.0 * venus.throughput_mb_per_s);
        assert!(nvenc.max_sessions > venus.max_sessions);
    }

    #[test]
    fn venus_power_is_sub_2w() {
        let venus = HwCodecModel::venus_sd865();
        let p = venus.workload_power(Utilization::FULL).as_watts();
        assert!((1.0..=2.0).contains(&p), "power {p}");
    }

    #[test]
    fn nvenc_pays_activation_step() {
        let nvenc = HwCodecModel::nvenc_a40();
        let p = nvenc.workload_power(Utilization::new(0.01)).as_watts();
        assert!(p > 50.0, "activation step missing: {p}");
    }
}
