//! Memory and storage models.

use serde::{Deserialize, Serialize};
use socc_sim::units::Power;

use crate::power::{LoadPowerModel, PowerState, Utilization};

/// DRAM technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramKind {
    /// Low-power mobile DRAM.
    Lpddr5,
    /// Previous-generation mobile DRAM.
    Lpddr4x,
    /// Server registered DIMMs.
    Ddr4,
}

/// A DRAM subsystem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Technology.
    pub kind: DramKind,
    /// Capacity in GB.
    pub capacity_gb: f64,
    /// Peak bandwidth in GB/s.
    pub bandwidth_gb_s: f64,
    /// Power model.
    pub power_model: LoadPowerModel,
}

impl MemoryModel {
    /// 12 GB LPDDR5 of one Snapdragon 865 SoC (Table 1).
    pub fn lpddr5_12gb() -> Self {
        Self {
            kind: DramKind::Lpddr5,
            capacity_gb: 12.0,
            bandwidth_gb_s: 44.0,
            power_model: LoadPowerModel::new(0.15, 0.05, 0.9),
        }
    }

    /// 768 GB DDR4 of the traditional edge server (Table 1).
    pub fn ddr4_768gb() -> Self {
        Self {
            kind: DramKind::Ddr4,
            capacity_gb: 768.0,
            bandwidth_gb_s: 280.0,
            power_model: LoadPowerModel::new(45.0, 5.0, 40.0),
        }
    }

    /// Electrical power at a state and utilization.
    pub fn power(&self, state: PowerState, util: Utilization) -> Power {
        self.power_model.power(state, util)
    }
}

/// Storage technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageKind {
    /// Mobile UFS flash.
    UfsFlash,
    /// Datacenter NVMe/SATA SSD.
    Ssd,
    /// Spinning disk.
    Hdd,
}

/// A storage device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StorageModel {
    /// Technology.
    pub kind: StorageKind,
    /// Capacity in GB.
    pub capacity_gb: f64,
    /// Sequential read bandwidth in MB/s.
    pub read_mb_s: f64,
    /// Sequential write bandwidth in MB/s.
    pub write_mb_s: f64,
    /// Probability of device failure per year of full-duty operation.
    ///
    /// §8: "The failure of a single SoC subsystem, such as flash, can render
    /// the application and entire SoC unusable" — mobile flash is not rated
    /// for 24/7 server duty, so its annual failure rate is set well above
    /// datacenter SSDs.
    pub annual_failure_rate: f64,
}

impl StorageModel {
    /// 256 GB UFS 3.0 flash of one SoC (Table 1).
    pub fn ufs_256gb() -> Self {
        Self {
            kind: StorageKind::UfsFlash,
            capacity_gb: 256.0,
            read_mb_s: 1700.0,
            write_mb_s: 750.0,
            annual_failure_rate: 0.035,
        }
    }

    /// 1.92 TB SSD of the traditional edge server (Table 1).
    pub fn ssd_1920gb() -> Self {
        Self {
            kind: StorageKind::Ssd,
            capacity_gb: 1920.0,
            read_mb_s: 3500.0,
            write_mb_s: 3000.0,
            annual_failure_rate: 0.009,
        }
    }

    /// 30 TB HDD array of the traditional edge server (Table 1).
    pub fn hdd_30tb() -> Self {
        Self {
            kind: StorageKind::Hdd,
            capacity_gb: 30_000.0,
            read_mb_s: 250.0,
            write_mb_s: 230.0,
            annual_failure_rate: 0.015,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capacities() {
        assert_eq!(MemoryModel::lpddr5_12gb().capacity_gb, 12.0);
        assert_eq!(MemoryModel::ddr4_768gb().capacity_gb, 768.0);
        assert_eq!(StorageModel::ufs_256gb().capacity_gb, 256.0);
    }

    #[test]
    fn mobile_dram_draws_far_less() {
        let lp = MemoryModel::lpddr5_12gb();
        let ddr = MemoryModel::ddr4_768gb();
        let full = Utilization::FULL;
        assert!(
            ddr.power(PowerState::Active, full).as_watts()
                > 20.0 * lp.power(PowerState::Active, full).as_watts()
        );
    }

    #[test]
    fn mobile_flash_fails_more_often() {
        assert!(
            StorageModel::ufs_256gb().annual_failure_rate
                > 2.0 * StorageModel::ssd_1920gb().annual_failure_rate
        );
    }
}
