//! GPU models: the mobile Adreno 650 and discrete NVIDIA server parts.

use serde::{Deserialize, Serialize};
use socc_sim::units::Power;

use crate::power::{LoadPowerModel, PowerState, Utilization};

/// Broad GPU class, which determines power-behaviour defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuClass {
    /// Integrated mobile GPU sharing the SoC power budget.
    MobileIntegrated,
    /// Discrete datacenter GPU with its own board power.
    DatacenterDiscrete,
}

/// A GPU compute model.
///
/// DL-serving latency is *not* computed from raw TFLOPS — real engines reach
/// wildly different fractions of peak depending on the operator mix — so
/// `socc-dl` anchors per-engine latency separately. This model carries the
/// physical attributes the orchestrator and power accounting need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuModel {
    /// Marketing name.
    pub name: String,
    /// Class of the part.
    pub class: GpuClass,
    /// Peak FP32 throughput in GFLOP/s (for reference/reporting).
    pub peak_fp32_gflops: f64,
    /// Peak INT8 throughput in GOP/s.
    pub peak_int8_gops: f64,
    /// Dedicated memory in GB (shared with the SoC for mobile parts).
    pub memory_gb: f64,
    /// Power model of the part.
    pub power_model: LoadPowerModel,
    /// Number of independent NVENC-class encode sessions the part sustains
    /// concurrently (0 when the part has no hardware encoder exposed).
    pub encoder_sessions: usize,
}

impl GpuModel {
    /// Electrical power at a state and utilization.
    pub fn power(&self, state: PowerState, util: Utilization) -> Power {
        self.power_model.power(state, util)
    }

    /// Workload (idle-excluded) power.
    pub fn workload_power(&self, util: Utilization) -> Power {
        self.power_model.workload_power(util)
    }

    /// The Adreno 650 inside a Snapdragon 865 (Table 1).
    pub fn adreno_650() -> Self {
        Self {
            name: "Qualcomm Adreno 650".to_string(),
            class: GpuClass::MobileIntegrated,
            peak_fp32_gflops: 1250.0,
            peak_int8_gops: 5000.0,
            memory_gb: 0.0, // shares LPDDR5 with the CPU
            // Workload power anchored at 1.71 W for DL (calib); mobile GPUs
            // have essentially no activation step.
            power_model: LoadPowerModel::new(0.15, 0.1, crate::calib::DL_SOC_GPU_POWER_W - 0.1),
            encoder_sessions: 0, // encoding is the Venus codec's job
        }
    }

    /// NVIDIA A40 (Table 1: 8 of them in the traditional edge server).
    pub fn a40() -> Self {
        Self {
            name: "NVIDIA A40".to_string(),
            class: GpuClass::DatacenterDiscrete,
            peak_fp32_gflops: 37_400.0,
            peak_int8_gops: 299_000.0,
            memory_gb: 48.0,
            // Large activation step: the part jumps to high clocks as soon
            // as any work arrives (§4.1).
            power_model: LoadPowerModel::new(
                crate::calib::A40_TRANSCODE_POWER.0,
                crate::calib::A40_TRANSCODE_POWER.1,
                crate::calib::A40_TRANSCODE_POWER.2 + 120.0, // DL loads clock higher than NVENC
            ),
            encoder_sessions: 32,
        }
    }

    /// NVIDIA A100 (used for DL-serving comparison only; it has no NVENC,
    /// which is why the paper excludes it from transcoding (§3)).
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100".to_string(),
            class: GpuClass::DatacenterDiscrete,
            peak_fp32_gflops: 19_500.0,
            peak_int8_gops: 624_000.0,
            memory_gb: 40.0,
            power_model: LoadPowerModel::new(40.0, 60.0, crate::calib::DL_A100_POWER_W - 60.0),
            encoder_sessions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_has_no_encoder() {
        assert_eq!(GpuModel::a100().encoder_sessions, 0);
        assert!(GpuModel::a40().encoder_sessions > 0);
    }

    #[test]
    fn discrete_gpu_has_large_activation_step() {
        let a40 = GpuModel::a40();
        let adreno = GpuModel::adreno_650();
        // Workload power at minimal load: the A40 pays tens of watts, the
        // mobile GPU a fraction of a watt (§4.1's 40.8× efficiency gap).
        let tiny = Utilization::new(0.02);
        assert!(a40.workload_power(tiny).as_watts() > 50.0);
        assert!(adreno.workload_power(tiny).as_watts() < 0.3);
    }

    #[test]
    fn adreno_dl_power_matches_anchor() {
        let p = GpuModel::adreno_650()
            .workload_power(Utilization::FULL)
            .as_watts();
        assert!((p - crate::calib::DL_SOC_GPU_POWER_W).abs() < 0.05);
    }

    #[test]
    fn mobile_gpu_idle_is_negligible() {
        let adreno = GpuModel::adreno_650();
        assert!(adreno.power(PowerState::Idle, Utilization::ZERO).as_watts() < 0.5);
    }
}
