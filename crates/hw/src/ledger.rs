//! Per-component energy ledger with board and PSU-rail roll-ups.
//!
//! The paper's headline numbers are energy numbers — per-SoC power curves,
//! the cluster-average peak, energy-per-request against the A40 baseline
//! (PAPER.md §4–§6) — so the simulator keeps an explicit ledger instead of
//! a single cluster-level meter: each SoC's CPU/codec/GPU/DSP/memory power
//! is integrated piecewise-constantly over its DVFS-state residencies,
//! rolled up to the SoC's PCB board, and from the board to the PSU rail
//! that feeds it. Shared chassis power (PCB controllers, the embedded
//! switch board, the BMC, fans) is metered separately and split evenly
//! across rails.
//!
//! Because the rail meters are maintained *incrementally* (a rail's power
//! is nudged by the delta of the one SoC that changed, not recomputed as a
//! fresh sum), the ledger carries a built-in cross-check:
//! [`EnergyLedger::verify_conservation`] demands that the sum of every
//! component energy plus chassis energy equals the sum of rail energies to
//! within a relative tolerance. A bookkeeping bug on either side — a
//! missed residency interval, a rail attributed twice — breaks the
//! identity and fails the check, which the orchestrator runs every tick.

use socc_sim::time::SimTime;
use socc_sim::units::{Energy, Power};

/// The five metered component classes of one SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Component {
    /// Big/little CPU complex.
    Cpu = 0,
    /// Hardware video codec.
    Codec = 1,
    /// GPU.
    Gpu = 2,
    /// DSP / NPU.
    Dsp = 3,
    /// LPDDR memory system.
    Memory = 4,
}

impl Component {
    /// All components, in metering order.
    pub const ALL: [Component; 5] = [
        Component::Cpu,
        Component::Codec,
        Component::Gpu,
        Component::Dsp,
        Component::Memory,
    ];

    /// Stable lower-case name.
    pub const fn name(self) -> &'static str {
        match self {
            Component::Cpu => "cpu",
            Component::Codec => "codec",
            Component::Gpu => "gpu",
            Component::Dsp => "dsp",
            Component::Memory => "memory",
        }
    }
}

/// A per-component power breakdown for one SoC at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComponentPowers {
    /// CPU complex power.
    pub cpu: Power,
    /// Hardware codec power.
    pub codec: Power,
    /// GPU power.
    pub gpu: Power,
    /// DSP power.
    pub dsp: Power,
    /// Memory system power.
    pub memory: Power,
}

impl ComponentPowers {
    /// All components at zero watts.
    pub const ZERO: ComponentPowers = ComponentPowers {
        cpu: Power::ZERO,
        codec: Power::ZERO,
        gpu: Power::ZERO,
        dsp: Power::ZERO,
        memory: Power::ZERO,
    };

    /// Total SoC power.
    ///
    /// The summation order (`cpu + codec + gpu + dsp + memory`) is part of
    /// the contract: it matches the historical `SocUnit::total_power`
    /// accumulation order bit-for-bit, so switching the orchestrator's
    /// meter to `component_powers().total()` changed no golden number.
    pub fn total(&self) -> Power {
        self.cpu + self.codec + self.gpu + self.dsp + self.memory
    }

    /// The power of one component.
    pub const fn get(&self, c: Component) -> Power {
        match c {
            Component::Cpu => self.cpu,
            Component::Codec => self.codec,
            Component::Gpu => self.gpu,
            Component::Dsp => self.dsp,
            Component::Memory => self.memory,
        }
    }
}

/// Accumulated energy for the five components of one SoC, in joules.
type ComponentEnergies = [f64; 5];

/// Piecewise-constant per-component energy integrator with board and
/// PSU-rail roll-ups and a conservation cross-check.
///
/// All `set_*` calls must carry non-decreasing timestamps; the ledger is
/// monotone in sim time by construction (powers are clamped non-negative
/// and intervals never overlap).
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    socs_per_board: usize,
    boards: usize,
    rails: usize,
    /// Per-SoC integration state.
    soc_last_t: Vec<SimTime>,
    soc_power: Vec<ComponentPowers>,
    soc_energy: Vec<ComponentEnergies>,
    /// Shared chassis power (boards + switch + BMC + fans).
    chassis_last_t: SimTime,
    chassis_power_w: f64,
    chassis_energy_j: f64,
    /// Per-rail roll-up, maintained incrementally.
    rail_last_t: Vec<SimTime>,
    rail_power_w: Vec<f64>,
    rail_energy_j: Vec<f64>,
}

impl EnergyLedger {
    /// Creates a ledger for `socs` SoC slots grouped `socs_per_board` to a
    /// PCB (the last board may be partial), the boards striped across
    /// `rails` PSU rails. Everything starts at zero watts at `t0`.
    ///
    /// # Panics
    ///
    /// Panics on zero `socs`, `socs_per_board` or `rails`.
    pub fn new(t0: SimTime, socs: usize, socs_per_board: usize, rails: usize) -> Self {
        assert!(socs > 0, "socs must be positive");
        assert!(socs_per_board > 0, "socs_per_board must be positive");
        assert!(rails > 0, "rails must be positive");
        let boards = socs.div_ceil(socs_per_board);
        Self {
            socs_per_board,
            boards,
            rails,
            soc_last_t: vec![t0; socs],
            soc_power: vec![ComponentPowers::ZERO; socs],
            soc_energy: vec![[0.0; 5]; socs],
            chassis_last_t: t0,
            chassis_power_w: 0.0,
            chassis_energy_j: 0.0,
            rail_last_t: vec![t0; rails],
            rail_power_w: vec![0.0; rails],
            rail_energy_j: vec![0.0; rails],
        }
    }

    /// Number of SoC slots.
    pub fn socs(&self) -> usize {
        self.soc_last_t.len()
    }

    /// Number of PCB boards.
    pub const fn boards(&self) -> usize {
        self.boards
    }

    /// Number of PSU rails.
    pub const fn rails(&self) -> usize {
        self.rails
    }

    /// The PCB board carrying a SoC slot.
    pub const fn board_of_soc(&self, soc: usize) -> usize {
        soc / self.socs_per_board
    }

    /// The PSU rail feeding a board (boards are striped contiguously:
    /// with 12 boards on 2 rails, boards 0–5 draw from rail 0).
    pub const fn rail_of_board(&self, board: usize) -> usize {
        board * self.rails / self.boards
    }

    /// The PSU rail feeding a SoC slot.
    pub const fn rail_of_soc(&self, soc: usize) -> usize {
        self.rail_of_board(self.board_of_soc(soc))
    }

    fn integrate_soc(&mut self, soc: usize, t: SimTime) {
        let dt = t.since(self.soc_last_t[soc]).as_secs_f64();
        if dt > 0.0 {
            let p = self.soc_power[soc];
            for c in Component::ALL {
                self.soc_energy[soc][c as usize] += p.get(c).as_watts() * dt;
            }
        }
        self.soc_last_t[soc] = t;
    }

    fn integrate_rail(&mut self, rail: usize, t: SimTime) {
        let dt = t.since(self.rail_last_t[rail]).as_secs_f64();
        if dt > 0.0 {
            self.rail_energy_j[rail] += self.rail_power_w[rail] * dt;
        }
        self.rail_last_t[rail] = t;
    }

    fn integrate_chassis(&mut self, t: SimTime) {
        let dt = t.since(self.chassis_last_t).as_secs_f64();
        if dt > 0.0 {
            self.chassis_energy_j += self.chassis_power_w * dt;
        }
        self.chassis_last_t = t;
    }

    /// Registers a SoC's new per-component power breakdown effective at
    /// `t`. The interval since the previous call is integrated at the old
    /// breakdown, and the SoC's rail meter is nudged by the total delta.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes this SoC's previous timestamp, if `soc` is
    /// out of range, or if any component power is negative.
    pub fn set_soc_power(&mut self, t: SimTime, soc: usize, p: ComponentPowers) {
        for c in Component::ALL {
            assert!(
                p.get(c).as_watts() >= 0.0,
                "negative {} power on SoC {soc}",
                c.name()
            );
        }
        self.integrate_soc(soc, t);
        let rail = self.rail_of_soc(soc);
        self.integrate_rail(rail, t);
        let old_total = self.soc_power[soc].total().as_watts();
        self.soc_power[soc] = p;
        self.rail_power_w[rail] += p.total().as_watts() - old_total;
        // Float roundoff in the incremental delta can leave a tiny
        // negative residue when a rail returns to zero; clamp so rail
        // energy stays monotone.
        if self.rail_power_w[rail] < 0.0 {
            self.rail_power_w[rail] = 0.0;
        }
    }

    /// Registers new shared chassis power effective at `t`, split evenly
    /// across rails.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous chassis timestamp or `power`
    /// is negative.
    pub fn set_chassis_power(&mut self, t: SimTime, power: Power) {
        let w = power.as_watts();
        assert!(w >= 0.0, "negative chassis power");
        self.integrate_chassis(t);
        let delta = (w - self.chassis_power_w) / self.rails as f64;
        self.chassis_power_w = w;
        for rail in 0..self.rails {
            self.integrate_rail(rail, t);
            self.rail_power_w[rail] += delta;
            if self.rail_power_w[rail] < 0.0 {
                self.rail_power_w[rail] = 0.0;
            }
        }
    }

    /// Integrates every meter up to `t` without changing any power.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes any meter's previous timestamp.
    pub fn advance(&mut self, t: SimTime) {
        for soc in 0..self.socs() {
            self.integrate_soc(soc, t);
        }
        for rail in 0..self.rails {
            self.integrate_rail(rail, t);
        }
        self.integrate_chassis(t);
    }

    fn pending_soc(&self, soc: usize, t: SimTime) -> f64 {
        self.soc_power[soc].total().as_watts()
            * t.saturating_since(self.soc_last_t[soc]).as_secs_f64()
    }

    /// Energy one component of one SoC has accumulated by `t`.
    pub fn component_energy(&self, soc: usize, c: Component, t: SimTime) -> Energy {
        let pending = self.soc_power[soc].get(c).as_watts()
            * t.saturating_since(self.soc_last_t[soc]).as_secs_f64();
        Energy::joules(self.soc_energy[soc][c as usize] + pending)
    }

    /// Total energy one SoC has accumulated by `t` (all components).
    pub fn soc_energy(&self, soc: usize, t: SimTime) -> Energy {
        let booked: f64 = self.soc_energy[soc].iter().sum();
        Energy::joules(booked + self.pending_soc(soc, t))
    }

    /// Total energy one PCB board's SoCs have accumulated by `t` (SoC
    /// silicon only — shared chassis power is metered separately).
    pub fn board_energy(&self, board: usize, t: SimTime) -> Energy {
        let lo = board * self.socs_per_board;
        let hi = (lo + self.socs_per_board).min(self.socs());
        (lo..hi).map(|s| self.soc_energy(s, t)).sum()
    }

    /// Shared chassis energy accumulated by `t`.
    pub fn chassis_energy(&self, t: SimTime) -> Energy {
        let pending = self.chassis_power_w * t.saturating_since(self.chassis_last_t).as_secs_f64();
        Energy::joules(self.chassis_energy_j + pending)
    }

    /// Energy one PSU rail has delivered by `t`.
    pub fn rail_energy(&self, rail: usize, t: SimTime) -> Energy {
        let pending =
            self.rail_power_w[rail] * t.saturating_since(self.rail_last_t[rail]).as_secs_f64();
        Energy::joules(self.rail_energy_j[rail] + pending)
    }

    /// Sum of every component energy plus chassis energy by `t` — the
    /// "demand side" of the conservation identity.
    pub fn component_total(&self, t: SimTime) -> Energy {
        let socs: Energy = (0..self.socs()).map(|s| self.soc_energy(s, t)).sum();
        socs + self.chassis_energy(t)
    }

    /// Sum of every rail energy by `t` — the "supply side" of the
    /// conservation identity.
    pub fn rail_total(&self, t: SimTime) -> Energy {
        (0..self.rails).map(|r| self.rail_energy(r, t)).sum()
    }

    /// Checks conservation at `t`: component-sum energy must equal
    /// rail-sum energy within `rel_tol` relative tolerance. Returns the
    /// observed relative error on failure.
    pub fn verify_conservation(&self, t: SimTime, rel_tol: f64) -> Result<(), f64> {
        let demand = self.component_total(t).as_joules();
        let supply = self.rail_total(t).as_joules();
        let scale = demand.abs().max(supply.abs()).max(1e-12);
        let rel = (demand - supply).abs() / scale;
        if rel <= rel_tol {
            Ok(())
        } else {
            Err(rel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socc_sim::time::SimDuration;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    fn powers(cpu: f64, codec: f64, gpu: f64, dsp: f64, memory: f64) -> ComponentPowers {
        ComponentPowers {
            cpu: Power::watts(cpu),
            codec: Power::watts(codec),
            gpu: Power::watts(gpu),
            dsp: Power::watts(dsp),
            memory: Power::watts(memory),
        }
    }

    #[test]
    fn integrates_piecewise_constant_components() {
        let mut l = EnergyLedger::new(t(0.0), 10, 5, 2);
        l.set_soc_power(t(0.0), 0, powers(2.0, 0.0, 1.0, 0.0, 0.5));
        l.set_soc_power(t(10.0), 0, powers(4.0, 0.0, 0.0, 0.0, 0.5));
        l.advance(t(20.0));
        let e = |c| l.component_energy(0, c, t(20.0)).as_joules();
        assert!((e(Component::Cpu) - (2.0 * 10.0 + 4.0 * 10.0)).abs() < 1e-9);
        assert!((e(Component::Gpu) - 10.0).abs() < 1e-9);
        assert!((e(Component::Memory) - 10.0).abs() < 1e-9);
        assert!((l.soc_energy(0, t(20.0)).as_joules() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn reads_include_pending_interval_without_mutation() {
        let mut l = EnergyLedger::new(t(0.0), 5, 5, 1);
        l.set_soc_power(t(0.0), 2, powers(3.0, 0.0, 0.0, 0.0, 0.0));
        // No advance() — the read itself must extrapolate.
        assert!((l.soc_energy(2, t(7.0)).as_joules() - 21.0).abs() < 1e-9);
        assert!((l.rail_energy(0, t(7.0)).as_joules() - 21.0).abs() < 1e-9);
        // Reading in the past of the meter saturates to booked energy.
        l.advance(t(10.0));
        assert!((l.soc_energy(2, t(7.0)).as_joules() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn rails_stripe_boards_contiguously() {
        let l = EnergyLedger::new(t(0.0), 60, 5, 2);
        assert_eq!(l.boards(), 12);
        assert_eq!(l.rail_of_board(0), 0);
        assert_eq!(l.rail_of_board(5), 0);
        assert_eq!(l.rail_of_board(6), 1);
        assert_eq!(l.rail_of_board(11), 1);
        assert_eq!(l.rail_of_soc(29), 0);
        assert_eq!(l.rail_of_soc(30), 1);
    }

    #[test]
    fn rail_rollup_tracks_soc_and_chassis_power() {
        let mut l = EnergyLedger::new(t(0.0), 10, 5, 2);
        // SoC 0 on rail 0, SoC 7 on rail 1, chassis split across both.
        l.set_soc_power(t(0.0), 0, powers(2.0, 0.0, 0.0, 0.0, 0.0));
        l.set_soc_power(t(0.0), 7, powers(0.0, 0.0, 4.0, 0.0, 0.0));
        l.set_chassis_power(t(0.0), Power::watts(6.0));
        l.advance(t(10.0));
        assert!((l.rail_energy(0, t(10.0)).as_joules() - (2.0 + 3.0) * 10.0).abs() < 1e-9);
        assert!((l.rail_energy(1, t(10.0)).as_joules() - (4.0 + 3.0) * 10.0).abs() < 1e-9);
        l.verify_conservation(t(10.0), 1e-9).expect("conserved");
    }

    #[test]
    fn conservation_holds_under_churn() {
        let mut l = EnergyLedger::new(t(0.0), 20, 5, 2);
        let mut x = 88172645463325252u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut now = 0.0;
        for _ in 0..500 {
            now += rnd() * 3.0;
            let soc = (rnd() * 20.0) as usize % 20;
            l.set_soc_power(
                t(now),
                soc,
                powers(rnd() * 5.0, rnd(), rnd() * 2.0, rnd(), rnd()),
            );
            if rnd() < 0.2 {
                l.set_chassis_power(t(now), Power::watts(rnd() * 50.0));
            }
        }
        l.advance(t(now + 1.0));
        l.verify_conservation(t(now + 1.0), 1e-6)
            .expect("conservation under churn");
    }

    #[test]
    fn ledger_is_monotone_in_time() {
        let mut l = EnergyLedger::new(t(0.0), 5, 5, 1);
        l.set_soc_power(t(0.0), 1, powers(1.0, 1.0, 1.0, 1.0, 1.0));
        l.set_chassis_power(t(0.0), Power::watts(2.0));
        let mut prev = 0.0;
        for k in 1..50 {
            let now = t(k as f64 * 0.37);
            let e = l.rail_total(now).as_joules();
            assert!(e >= prev, "rail energy regressed at step {k}");
            prev = e;
            if k % 7 == 0 {
                l.set_soc_power(now, 1, powers(0.1 * k as f64, 0.0, 0.0, 0.0, 0.0));
            }
        }
    }

    #[test]
    fn conservation_detects_imbalance() {
        let mut l = EnergyLedger::new(t(0.0), 5, 5, 1);
        l.set_soc_power(t(0.0), 0, powers(5.0, 0.0, 0.0, 0.0, 0.0));
        l.advance(t(10.0));
        // Corrupt the supply side directly.
        l.rail_energy_j[0] += 1.0;
        let err = l.verify_conservation(t(10.0), 1e-6).unwrap_err();
        assert!(err > 1e-3);
    }

    #[test]
    fn partial_last_board_still_conserves() {
        let mut l = EnergyLedger::new(t(0.0), 7, 5, 2);
        assert_eq!(l.boards(), 2);
        l.set_soc_power(t(0.0), 6, powers(1.0, 0.0, 0.0, 0.0, 0.0));
        l.set_chassis_power(t(0.0), Power::watts(3.0));
        l.advance(t(4.0));
        assert!((l.board_energy(1, t(4.0)).as_joules() - 4.0).abs() < 1e-9);
        l.verify_conservation(t(4.0), 1e-9).expect("conserved");
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_power_panics() {
        let mut l = EnergyLedger::new(t(0.0), 5, 5, 1);
        l.set_soc_power(t(0.0), 0, powers(-1.0, 0.0, 0.0, 0.0, 0.0));
    }
}
