//! `socc-hw` — hardware component models for the SoC Cluster workspace.
//!
//! This crate replaces the paper's physical hardware (60× Snapdragon 865,
//! an Intel Xeon Gold 5218R host, NVIDIA A40/A100 GPUs) with calibrated
//! mechanistic models:
//!
//! - [`cpu`], [`gpu`], [`dsp`], [`codec`], [`memory`]: per-component
//!   capability and power models;
//! - [`power`]: the three-term load-to-power model that underpins the
//!   paper's energy-proportionality results;
//! - [`thermal`]: RC thermal nodes and the chassis fan wall;
//! - [`spec`]: Table 1 platform specifications;
//! - [`generations`]: the six Snapdragon generations of the longitudinal
//!   study (§7, Table 6, Fig. 14);
//! - [`ledger`]: the per-component energy ledger with board/PSU-rail
//!   roll-ups and the conservation cross-check;
//! - [`microbench`]: the Geekbench-style model behind Table 2;
//! - [`calib`]: every numeric anchor taken from the paper, with citations.
//!
//! # Examples
//!
//! ```
//! use socc_hw::power::{PowerState, Utilization};
//! use socc_hw::spec::SocSpec;
//!
//! let soc = SocSpec::snapdragon_865();
//! let busy = soc.cpu.power(PowerState::Active, Utilization::FULL);
//! let idle = soc.cpu.power(PowerState::Idle, Utilization::ZERO);
//! assert!(busy > idle);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calib;
pub mod codec;
pub mod cpu;
pub mod dsp;
pub mod dvfs;
pub mod generations;
pub mod gpu;
pub mod ledger;
pub mod memory;
pub mod microbench;
pub mod power;
pub mod psu;
pub mod spec;
pub mod thermal;

pub use generations::SocGeneration;
pub use power::{LoadPowerModel, PowerState, Utilization};
pub use spec::{ServerSpec, SocSpec};
