//! Power supply units: conversion efficiency and redundancy.
//!
//! The cluster "utilizes two power modules to provide redundant power
//! supplies, with a maximum support of approximately 700 watts" (§2.2).
//! Wall power exceeds DC load by the conversion loss, and the loss curve is
//! U-shaped: PSUs are least efficient near idle — which penalizes exactly
//! the low-utilization operation Fig. 5 shows. Redundant operation (two
//! PSUs sharing load at ~50% each) sits near the efficiency sweet spot.

use serde::{Deserialize, Serialize};
use socc_sim::units::Power;

/// An 80 PLUS-style efficiency curve: efficiency at 20%, 50% and 100% of
/// rated load, interpolated piecewise-linearly (and degraded below 10%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsuModel {
    /// Rated output per module in watts.
    pub rated_w: f64,
    /// Efficiency at 20% load.
    pub eff_20: f64,
    /// Efficiency at 50% load.
    pub eff_50: f64,
    /// Efficiency at 100% load.
    pub eff_100: f64,
}

impl PsuModel {
    /// One of the cluster's two 400 W modules (80 PLUS Gold-class).
    pub fn cluster_module() -> Self {
        Self {
            rated_w: 400.0,
            eff_20: 0.87,
            eff_50: 0.92,
            eff_100: 0.89,
        }
    }

    /// Conversion efficiency at a DC load on one module.
    pub fn efficiency_at(&self, dc_load: Power) -> f64 {
        let frac = (dc_load.as_watts() / self.rated_w).clamp(0.0, 1.0);
        if frac <= 0.0 {
            return self.eff_20 * 0.5; // deep idle: fans + standby dominate
        }
        if frac < 0.2 {
            // Efficiency collapses toward zero load.
            let t = frac / 0.2;
            self.eff_20 * (0.55 + 0.45 * t)
        } else if frac < 0.5 {
            let t = (frac - 0.2) / 0.3;
            self.eff_20 + (self.eff_50 - self.eff_20) * t
        } else {
            let t = (frac - 0.5) / 0.5;
            self.eff_50 + (self.eff_100 - self.eff_50) * t
        }
    }

    /// Wall (AC) power drawn by one module for a DC load.
    pub fn wall_power(&self, dc_load: Power) -> Power {
        let eff = self.efficiency_at(dc_load);
        if eff <= 0.0 {
            Power::ZERO
        } else {
            Power::watts(dc_load.as_watts() / eff + 3.0) // 3 W standby
        }
    }
}

/// A redundant pair of PSU modules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedundantPsu {
    /// The module model (both identical).
    pub module: PsuModel,
    /// Number of healthy modules (2 normally, 1 after a failure).
    pub healthy_modules: usize,
}

impl RedundantPsu {
    /// The cluster's 2 × 400 W configuration (§2.2: ~700 W usable with
    /// headroom margins).
    pub fn cluster_default() -> Self {
        Self {
            module: PsuModel::cluster_module(),
            healthy_modules: 2,
        }
    }

    /// Maximum DC load deliverable right now.
    pub fn capacity(&self) -> Power {
        Power::watts(self.module.rated_w * self.healthy_modules as f64 * 0.875)
    }

    /// Returns `true` if a DC load is within the surviving capacity.
    pub fn can_carry(&self, dc_load: Power) -> bool {
        dc_load <= self.capacity()
    }

    /// Total wall power for a DC load, shared equally across healthy
    /// modules, or `None` if the load exceeds capacity.
    pub fn wall_power(&self, dc_load: Power) -> Option<Power> {
        if self.healthy_modules == 0 || !self.can_carry(dc_load) {
            return None;
        }
        let share = dc_load / self.healthy_modules as f64;
        Some(self.module.wall_power(share) * self.healthy_modules as f64)
    }

    /// Marks one module failed.
    pub fn fail_module(&mut self) {
        self.healthy_modules = self.healthy_modules.saturating_sub(1);
    }

    /// Returns one failed module to service (brownout over), capped at the
    /// redundant pair.
    pub fn repair_module(&mut self) {
        self.healthy_modules = (self.healthy_modules + 1).min(2);
    }

    /// `true` when both modules of the pair are healthy.
    pub fn fully_redundant(&self) -> bool {
        self.healthy_modules >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_curve_is_u_shaped() {
        let psu = PsuModel::cluster_module();
        let low = psu.efficiency_at(Power::watts(20.0));
        let mid = psu.efficiency_at(Power::watts(200.0));
        let full = psu.efficiency_at(Power::watts(400.0));
        assert!(mid > low, "{mid} !> {low}");
        assert!(mid > full, "{mid} !> {full}");
        assert_eq!(mid, 0.92);
    }

    #[test]
    fn wall_power_exceeds_dc() {
        let psu = PsuModel::cluster_module();
        for w in [100.0, 200.0, 300.0, 400.0] {
            let wall = psu.wall_power(Power::watts(w)).as_watts();
            assert!(wall > w, "{wall} at {w}");
            assert!(wall < w * 1.25, "loss bounded: {wall} at {w}");
        }
        // Near idle the relative loss balloons — the U-shape's left edge.
        let light = psu.wall_power(Power::watts(20.0)).as_watts();
        assert!(light / 20.0 > 1.5, "idle loss should dominate: {light}");
    }

    #[test]
    fn redundant_pair_carries_cluster_peak() {
        // The 589 W Table 4 peak fits the redundant pair with margin.
        let pair = RedundantPsu::cluster_default();
        assert!(pair.can_carry(Power::watts(socc_hw_peak())));
        assert!((pair.capacity().as_watts() - 700.0).abs() < 1.0);
    }

    fn socc_hw_peak() -> f64 {
        crate::calib::CLUSTER_AVG_PEAK_W
    }

    #[test]
    fn single_module_survival_is_tight() {
        let mut pair = RedundantPsu::cluster_default();
        pair.fail_module();
        // One module carries 350 W — below the 589 W peak: the orchestrator
        // must shed load after a PSU failure.
        assert!(!pair.can_carry(Power::watts(socc_hw_peak())));
        assert!(pair.can_carry(Power::watts(300.0)));
    }

    #[test]
    fn redundancy_improves_efficiency_at_mid_load() {
        // 360 W on two modules = 45% each (sweet spot); on one = 90%.
        let two = RedundantPsu::cluster_default();
        let mut one = RedundantPsu::cluster_default();
        one.fail_module();
        let load = Power::watts(320.0);
        let wall_two = two.wall_power(load).unwrap().as_watts();
        let wall_one = one.wall_power(load).unwrap().as_watts();
        // Two modules pay double standby but run at better efficiency;
        // near full single-module load the difference is small either way.
        assert!(
            (wall_two - wall_one).abs() < 20.0,
            "{wall_two} vs {wall_one}"
        );
    }

    #[test]
    fn repair_restores_the_pair_and_caps_there() {
        let mut pair = RedundantPsu::cluster_default();
        assert!(pair.fully_redundant());
        pair.fail_module();
        assert!(!pair.fully_redundant());
        pair.repair_module();
        assert!(pair.fully_redundant());
        pair.repair_module(); // no third module exists
        assert_eq!(pair.healthy_modules, 2);
    }

    #[test]
    fn overload_returns_none() {
        let pair = RedundantPsu::cluster_default();
        assert!(pair.wall_power(Power::watts(900.0)).is_none());
        let mut dead = pair;
        dead.fail_module();
        dead.fail_module();
        assert!(dead.wall_power(Power::watts(10.0)).is_none());
    }
}
