//! CPU models: mobile big.LITTLE complexes and server many-core parts.

use serde::{Deserialize, Serialize};
use socc_sim::units::{Frequency, Power};

use crate::power::{LoadPowerModel, PowerState, Utilization};

/// A homogeneous cluster of CPU cores (e.g. the prime/gold/silver tiers of a
/// Kryo 585, or all cores of a server part).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreCluster {
    /// Human-readable tier name ("prime", "gold", "silver", …).
    pub name: String,
    /// Number of cores in the tier.
    pub count: usize,
    /// Maximum clock of the tier.
    pub max_freq: Frequency,
    /// Single-core performance in Geekbench-5-like points at max clock.
    pub perf_per_core: f64,
}

impl CoreCluster {
    /// Creates a tier.
    pub fn new(name: &str, count: usize, ghz: f64, perf_per_core: f64) -> Self {
        Self {
            name: name.to_string(),
            count,
            max_freq: Frequency::ghz(ghz),
            perf_per_core,
        }
    }

    /// Raw aggregate performance of the tier (no scaling losses).
    pub fn raw_perf(&self) -> f64 {
        self.count as f64 * self.perf_per_core
    }
}

/// A CPU complex: one or more core tiers plus a power model.
///
/// Two throughput figures matter and differ by workload:
/// - [`multicore_perf`](Self::multicore_perf): sustained all-core throughput
///   under shared-resource contention and (for phones) thermal limits, used
///   for Geekbench-style micro-benchmarks (Table 2);
/// - [`transcode_capacity`](Self::transcode_capacity): throughput on many
///   independent transcode processes, which scale closer to linearly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuModel {
    /// Marketing name of the part.
    pub name: String,
    /// Core tiers.
    pub clusters: Vec<CoreCluster>,
    /// Multicore scaling efficiency in `(0, 1]` applied to the raw per-tier
    /// sum for all-core benchmark workloads.
    pub multicore_efficiency: f64,
    /// Capacity in transcode perf-units (pu); see `socc_hw::calib`.
    pub transcode_pu: f64,
    /// Power model for the whole complex.
    pub power_model: LoadPowerModel,
}

impl CpuModel {
    /// Total core count across tiers.
    pub fn core_count(&self) -> usize {
        self.clusters.iter().map(|c| c.count).sum()
    }

    /// Single-core performance: the fastest tier's per-core score.
    pub fn single_core_perf(&self) -> f64 {
        self.clusters
            .iter()
            .map(|c| c.perf_per_core)
            .fold(0.0, f64::max)
    }

    /// Sustained all-core performance with contention losses applied.
    pub fn multicore_perf(&self) -> f64 {
        self.clusters.iter().map(CoreCluster::raw_perf).sum::<f64>() * self.multicore_efficiency
    }

    /// Transcode capacity in perf-units.
    pub fn transcode_capacity(&self) -> f64 {
        self.transcode_pu
    }

    /// Electrical power at a given state and utilization.
    pub fn power(&self, state: PowerState, util: Utilization) -> Power {
        self.power_model.power(state, util)
    }

    /// Workload (idle-excluded) power at a utilization.
    pub fn workload_power(&self, util: Utilization) -> Power {
        self.power_model.workload_power(util)
    }

    /// The Kryo 585 complex of a Snapdragon 865 (Table 1).
    ///
    /// Tier layout: 1× Cortex-A77 prime @ 2.84 GHz, 3× A77 gold @ 2.42 GHz,
    /// 4× A55 silver @ 1.80 GHz. Per-core score anchored at Table 2's 911;
    /// multicore efficiency calibrated so `multicore_perf` matches Table 2's
    /// per-SoC 3,235 (194,100 / 60).
    pub fn kryo_585() -> Self {
        let clusters = vec![
            CoreCluster::new("prime", 1, 2.84, 911.0),
            CoreCluster::new("gold", 3, 2.42, 776.0),
            CoreCluster::new("silver", 4, 1.80, 433.0),
        ];
        let raw: f64 = clusters.iter().map(CoreCluster::raw_perf).sum();
        Self {
            name: "Qualcomm Kryo 585".to_string(),
            clusters,
            multicore_efficiency: crate::calib::SOC_CPU_TRANSCODE_PU / raw,
            transcode_pu: crate::calib::SOC_CPU_TRANSCODE_PU,
            power_model: LoadPowerModel::new(
                crate::calib::SOC_CPU_POWER.0,
                crate::calib::SOC_CPU_POWER.1,
                crate::calib::SOC_CPU_POWER.2,
            ),
        }
    }

    /// An 8-core Docker container slice of the Intel Xeon Gold 5218R host
    /// (§3 "Setups").
    pub fn xeon_5218r_container() -> Self {
        let clusters = vec![CoreCluster::new("core", 8, 4.0, 840.0)];
        Self {
            name: "Intel Xeon Gold 5218R (8-core container)".to_string(),
            clusters,
            // Independent containers see little cross-container contention.
            multicore_efficiency: 0.92,
            transcode_pu: crate::calib::INTEL_CONTAINER_TRANSCODE_PU,
            power_model: LoadPowerModel::new(
                crate::calib::INTEL_CONTAINER_POWER.0,
                crate::calib::INTEL_CONTAINER_POWER.1,
                crate::calib::INTEL_CONTAINER_POWER.2,
            ),
        }
    }

    /// The whole dual-socket Xeon Gold 5218R host (40 physical cores).
    pub fn xeon_5218r_host() -> Self {
        let clusters = vec![CoreCluster::new("core", 40, 4.0, 840.0)];
        let raw: f64 = clusters.iter().map(CoreCluster::raw_perf).sum();
        Self {
            name: "Intel Xeon Gold 5218R".to_string(),
            clusters,
            // Table 2: whole-server CPU score 15,450 vs 40 × 840 raw.
            multicore_efficiency: 15_450.0 / raw,
            transcode_pu: crate::calib::INTEL_CONTAINER_TRANSCODE_PU
                * crate::calib::INTEL_CONTAINER_COUNT as f64,
            power_model: LoadPowerModel::new(
                crate::calib::INTEL_CONTAINER_POWER.0 * crate::calib::INTEL_CONTAINER_COUNT as f64,
                crate::calib::INTEL_CONTAINER_POWER.1 * crate::calib::INTEL_CONTAINER_COUNT as f64,
                crate::calib::INTEL_CONTAINER_POWER.2 * crate::calib::INTEL_CONTAINER_COUNT as f64,
            ),
        }
    }

    /// AWS Graviton 2 (m6g.metal, 64 cores) — Table 2 comparison point.
    pub fn graviton2() -> Self {
        let clusters = vec![CoreCluster::new("core", 64, 2.5, 762.0)];
        let raw: f64 = clusters.iter().map(CoreCluster::raw_perf).sum();
        Self {
            name: "AWS Graviton 2".to_string(),
            clusters,
            multicore_efficiency: 36_091.0 / raw,
            transcode_pu: 36_091.0,
            power_model: LoadPowerModel::new(30.0, 10.0, 110.0),
        }
    }

    /// AWS Graviton 3 (m7g.metal, 64 cores) — Table 2 comparison point.
    pub fn graviton3() -> Self {
        let clusters = vec![CoreCluster::new("core", 64, 2.6, 1121.0)];
        let raw: f64 = clusters.iter().map(CoreCluster::raw_perf).sum();
        Self {
            name: "AWS Graviton 3".to_string(),
            clusters,
            multicore_efficiency: 51_379.0 / raw,
            transcode_pu: 51_379.0,
            power_model: LoadPowerModel::new(30.0, 10.0, 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kryo_matches_table2_anchors() {
        let cpu = CpuModel::kryo_585();
        assert_eq!(cpu.core_count(), 8);
        assert_eq!(cpu.single_core_perf(), 911.0);
        assert!((cpu.multicore_perf() - 3235.0).abs() < 1.0);
    }

    #[test]
    fn xeon_host_matches_table2() {
        let cpu = CpuModel::xeon_5218r_host();
        assert_eq!(cpu.core_count(), 40);
        assert!((cpu.multicore_perf() - 15_450.0).abs() < 1.0);
    }

    #[test]
    fn intel_container_is_about_twice_a_soc() {
        let soc = CpuModel::kryo_585();
        let intel = CpuModel::xeon_5218r_container();
        let ratio = intel.transcode_capacity() / soc.transcode_capacity();
        assert!((1.9..=2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn graviton3_outperforms_graviton2() {
        assert!(CpuModel::graviton3().multicore_perf() > CpuModel::graviton2().multicore_perf());
        assert!(
            CpuModel::graviton3().single_core_perf() > CpuModel::graviton2().single_core_perf()
        );
    }

    #[test]
    fn soc_full_load_workload_power_near_6_6w() {
        let cpu = CpuModel::kryo_585();
        let p = cpu.workload_power(Utilization::FULL).as_watts();
        assert!((6.0..=7.0).contains(&p), "power {p}");
    }

    #[test]
    fn power_zero_when_off() {
        let cpu = CpuModel::kryo_585();
        assert_eq!(cpu.power(PowerState::Off, Utilization::FULL), Power::ZERO);
    }
}
