//! Mobile DSP / NPU models (Qualcomm Hexagon).
//!
//! The paper's most striking energy result comes from the Hexagon DSP:
//! "the energy efficiency of SoC DSPs is 42× higher than that of the Intel
//! CPU … attributed to the fact that SoC DSPs are designed for low-power
//! data processing, operating at frequencies of ≤ 500 MHz" (§5.2).

use serde::{Deserialize, Serialize};
use socc_sim::units::{Frequency, Power};

use crate::power::{LoadPowerModel, PowerState, Utilization};

/// Numeric formats a DSP can execute natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DspPrecision {
    /// Fixed-point INT8 only (tensor accelerator generations before FP16
    /// support landed).
    Int8Only,
    /// INT8 plus floating-point support (§7: "the recent incorporation of
    /// support for floating-point calculations on Qualcomm's flagship
    /// Hexagon DSPs").
    Int8AndFloat,
}

/// A Hexagon-class DSP with its tensor accelerator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DspModel {
    /// Marketing name.
    pub name: String,
    /// Peak INT8 throughput in GOP/s.
    pub peak_int8_gops: f64,
    /// Clock of the scalar/vector core.
    pub clock: Frequency,
    /// Supported precisions.
    pub precision: DspPrecision,
    /// Power model.
    pub power_model: LoadPowerModel,
}

impl DspModel {
    /// Returns `true` if the DSP can run FP32/FP16 graphs.
    pub fn supports_float(&self) -> bool {
        self.precision == DspPrecision::Int8AndFloat
    }

    /// Electrical power at a state and utilization.
    pub fn power(&self, state: PowerState, util: Utilization) -> Power {
        self.power_model.power(state, util)
    }

    /// Workload (idle-excluded) power.
    pub fn workload_power(&self, util: Utilization) -> Power {
        self.power_model.workload_power(util)
    }

    /// The Hexagon 698 of a Snapdragon 865.
    pub fn hexagon_698() -> Self {
        Self {
            name: "Qualcomm Hexagon 698".to_string(),
            peak_int8_gops: 15_000.0,
            clock: Frequency::mhz(500.0),
            precision: DspPrecision::Int8Only,
            power_model: LoadPowerModel::new(0.05, 0.05, crate::calib::DL_SOC_DSP_POWER_W - 0.05),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hexagon_is_sub_watt_class() {
        let dsp = DspModel::hexagon_698();
        let p = dsp.workload_power(Utilization::FULL).as_watts();
        assert!((0.5..=1.0).contains(&p), "power {p}");
    }

    #[test]
    fn hexagon_clock_at_most_500mhz() {
        // §5.2: "operating at frequencies of ≤ 500MHz".
        assert!(DspModel::hexagon_698().clock.as_ghz() <= 0.5);
    }

    #[test]
    fn sd865_dsp_is_int8_only() {
        assert!(!DspModel::hexagon_698().supports_float());
    }

    #[test]
    fn off_state_draws_nothing() {
        let dsp = DspModel::hexagon_698();
        assert_eq!(dsp.power(PowerState::Off, Utilization::FULL), Power::ZERO);
    }
}
