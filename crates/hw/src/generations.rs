//! SoC generation registry for the longitudinal study (§7, Table 6, Fig. 14).
//!
//! The paper measures six high-end Snapdragon generations (2017–2022) on
//! DL serving and live transcoding. Each generation here carries speed
//! multipliers *relative to the Snapdragon 865* (the SoC Cluster's chip),
//! calibrated from the ratios reported in §7.

use serde::{Deserialize, Serialize};

/// The six Snapdragon generations of the longitudinal study (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SocGeneration {
    /// Snapdragon 835 (2017, Xiaomi 6).
    Sd835,
    /// Snapdragon 845 (2018, Xiaomi 8).
    Sd845,
    /// Snapdragon 855 (2019, Meizu 16T).
    Sd855,
    /// Snapdragon 865 (2020, Meizu 17) — the SoC Cluster chip.
    Sd865,
    /// Snapdragon 888 (2021, Xiaomi 11 Pro).
    Sd888,
    /// Snapdragon 8+ Gen 1 (2022, Xiaomi 12S).
    Sd8Gen1Plus,
}

impl SocGeneration {
    /// All generations in release order.
    pub const ALL: [SocGeneration; 6] = [
        SocGeneration::Sd835,
        SocGeneration::Sd845,
        SocGeneration::Sd855,
        SocGeneration::Sd865,
        SocGeneration::Sd888,
        SocGeneration::Sd8Gen1Plus,
    ];

    /// Marketing name.
    pub fn name(self) -> &'static str {
        match self {
            SocGeneration::Sd835 => "Snapdragon 835",
            SocGeneration::Sd845 => "Snapdragon 845",
            SocGeneration::Sd855 => "Snapdragon 855",
            SocGeneration::Sd865 => "Snapdragon 865",
            SocGeneration::Sd888 => "Snapdragon 888",
            SocGeneration::Sd8Gen1Plus => "Snapdragon 8+ Gen 1",
        }
    }

    /// Release year.
    pub fn release_year(self) -> u32 {
        match self {
            SocGeneration::Sd835 => 2017,
            SocGeneration::Sd845 => 2018,
            SocGeneration::Sd855 => 2019,
            SocGeneration::Sd865 => 2020,
            SocGeneration::Sd888 => 2021,
            SocGeneration::Sd8Gen1Plus => 2022,
        }
    }

    /// DL-inference CPU speed relative to the SD865.
    ///
    /// Anchors (§7): 4.8× total CPU latency reduction from 2017 to 2022.
    pub fn dl_cpu_speed(self) -> f64 {
        match self {
            SocGeneration::Sd835 => 0.42,
            SocGeneration::Sd845 => 0.53,
            SocGeneration::Sd855 => 0.70,
            SocGeneration::Sd865 => 1.00,
            SocGeneration::Sd888 => 1.40,
            SocGeneration::Sd8Gen1Plus => 2.02, // 0.42 × 4.8
        }
    }

    /// DL-inference GPU speed relative to the SD865.
    ///
    /// Anchors (§7): 3.2× total GPU latency reduction from 2017 to 2022.
    pub fn dl_gpu_speed(self) -> f64 {
        match self {
            SocGeneration::Sd835 => 0.55,
            SocGeneration::Sd845 => 0.66,
            SocGeneration::Sd855 => 0.80,
            SocGeneration::Sd865 => 1.00,
            SocGeneration::Sd888 => 1.30,
            SocGeneration::Sd8Gen1Plus => 1.76, // 0.55 × 3.2
        }
    }

    /// DL-inference DSP speed relative to the SD865, or `None` if the
    /// generation's DSP cannot run the quantized serving workload.
    ///
    /// Anchors (§7): 8.4× DSP latency reduction from the SD845 to the
    /// SD8+Gen1 ("a significant performance boost in SoC DSPs").
    pub fn dl_dsp_speed(self) -> Option<f64> {
        match self {
            SocGeneration::Sd835 => None, // Hexagon 682 pre-dates usable tensor offload
            SocGeneration::Sd845 => Some(0.45),
            SocGeneration::Sd855 => Some(0.65),
            SocGeneration::Sd865 => Some(1.00),
            SocGeneration::Sd888 => Some(1.90),
            SocGeneration::Sd8Gen1Plus => Some(3.78), // 0.45 × 8.4
        }
    }

    /// Live-transcoding CPU (libx264) speed relative to the SD865.
    ///
    /// Anchors (§7): SD865 V4 throughput is 1.42×/1.82×/2.3× that of the
    /// 855/845/835, and the 8+Gen1 is 1.8× the SD865.
    pub fn video_cpu_speed(self) -> f64 {
        match self {
            SocGeneration::Sd835 => 1.0 / 2.30,
            SocGeneration::Sd845 => 1.0 / 1.82,
            SocGeneration::Sd855 => 1.0 / 1.42,
            SocGeneration::Sd865 => 1.00,
            SocGeneration::Sd888 => 1.35,
            SocGeneration::Sd8Gen1Plus => 1.80,
        }
    }

    /// Live-transcoding hardware-codec speed relative to the SD865.
    ///
    /// Anchors (§7): the SD865 codec is 3.8× (V4) and 3.24× (V5) faster
    /// than the SD835's; intermediate generations interpolated.
    pub fn video_hw_speed(self) -> f64 {
        match self {
            SocGeneration::Sd835 => 1.0 / 3.52, // geomean of 3.8 and 3.24
            SocGeneration::Sd845 => 0.42,
            SocGeneration::Sd855 => 0.65,
            SocGeneration::Sd865 => 1.00,
            SocGeneration::Sd888 => 1.30,
            SocGeneration::Sd8Gen1Plus => 1.70,
        }
    }

    /// Whether this generation's DSP supports floating point (§7: added on
    /// Qualcomm's flagship Hexagon DSPs from the 8 Gen 2 era; the 8+Gen1
    /// already supports FP16 via HTP).
    pub fn dsp_supports_float(self) -> bool {
        matches!(self, SocGeneration::Sd8Gen1Plus)
    }

    /// DSP batch-8 throughput gain over batch-1 (§7: "the latest Snapdragon
    /// 8+Gen1 phone achieved 1.7× higher throughput on its DSP when setting
    /// the batch size to 8").
    pub fn dsp_batch8_gain(self) -> f64 {
        match self {
            SocGeneration::Sd8Gen1Plus => 1.7,
            _ => 1.15,
        }
    }
}

/// A phone used in the longitudinal study (Table 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device marketing name.
    pub device: &'static str,
    /// SoC generation.
    pub soc: SocGeneration,
    /// RAM in GB.
    pub ram_gb: f64,
    /// Android version string.
    pub os: &'static str,
    /// Release date string as printed in Table 6.
    pub release: &'static str,
}

/// The six phones of Table 6, newest first (as in the paper).
pub fn longitudinal_devices() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec {
            device: "Xiaomi 12 S",
            soc: SocGeneration::Sd8Gen1Plus,
            ram_gb: 12.0,
            os: "Android 12",
            release: "May 2022",
        },
        DeviceSpec {
            device: "Xiaomi 11 Pro",
            soc: SocGeneration::Sd888,
            ram_gb: 8.0,
            os: "Android 11",
            release: "Jun. 2021",
        },
        DeviceSpec {
            device: "Meizu 17",
            soc: SocGeneration::Sd865,
            ram_gb: 8.0,
            os: "Android 10",
            release: "Mar. 2020",
        },
        DeviceSpec {
            device: "Meizu 16T",
            soc: SocGeneration::Sd855,
            ram_gb: 6.0,
            os: "Android 9",
            release: "Mar. 2019",
        },
        DeviceSpec {
            device: "Xiaomi 8",
            soc: SocGeneration::Sd845,
            ram_gb: 6.0,
            os: "Android 8.1",
            release: "Feb. 2018",
        },
        DeviceSpec {
            device: "Xiaomi 6",
            soc: SocGeneration::Sd835,
            ram_gb: 6.0,
            os: "Android 7.1.1",
            release: "Mar. 2017",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speeds_monotonically_improve() {
        let mut prev_cpu = 0.0;
        let mut prev_gpu = 0.0;
        for g in SocGeneration::ALL {
            assert!(g.dl_cpu_speed() > prev_cpu, "{:?}", g);
            assert!(g.dl_gpu_speed() > prev_gpu, "{:?}", g);
            prev_cpu = g.dl_cpu_speed();
            prev_gpu = g.dl_gpu_speed();
        }
    }

    #[test]
    fn paper_ratio_anchors_hold() {
        // §7: 4.8× CPU and 3.2× GPU reduction from 2017 to 2022.
        let cpu_gain =
            SocGeneration::Sd8Gen1Plus.dl_cpu_speed() / SocGeneration::Sd835.dl_cpu_speed();
        assert!((cpu_gain - 4.8).abs() < 0.05, "cpu gain {cpu_gain}");
        let gpu_gain =
            SocGeneration::Sd8Gen1Plus.dl_gpu_speed() / SocGeneration::Sd835.dl_gpu_speed();
        assert!((gpu_gain - 3.2).abs() < 0.05, "gpu gain {gpu_gain}");
        // §7: 8.4× DSP reduction from the 845.
        let dsp_gain = SocGeneration::Sd8Gen1Plus.dl_dsp_speed().unwrap()
            / SocGeneration::Sd845.dl_dsp_speed().unwrap();
        assert!((dsp_gain - 8.4).abs() < 0.05, "dsp gain {dsp_gain}");
    }

    #[test]
    fn video_cpu_anchors_hold() {
        // §7: SD865 V4 throughput = 1.42×/1.82×/2.3× of 855/845/835.
        let s865 = SocGeneration::Sd865.video_cpu_speed();
        assert!((s865 / SocGeneration::Sd855.video_cpu_speed() - 1.42).abs() < 0.02);
        assert!((s865 / SocGeneration::Sd845.video_cpu_speed() - 1.82).abs() < 0.02);
        assert!((s865 / SocGeneration::Sd835.video_cpu_speed() - 2.30).abs() < 0.02);
        assert!((SocGeneration::Sd8Gen1Plus.video_cpu_speed() - 1.8).abs() < 0.02);
    }

    #[test]
    fn sd835_dsp_unavailable() {
        assert!(SocGeneration::Sd835.dl_dsp_speed().is_none());
    }

    #[test]
    fn table6_registry_complete() {
        let devices = longitudinal_devices();
        assert_eq!(devices.len(), 6);
        // Newest first, years strictly decreasing.
        let years: Vec<u32> = devices.iter().map(|d| d.soc.release_year()).collect();
        assert!(years.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(devices[0].device, "Xiaomi 12 S");
        assert_eq!(devices[5].os, "Android 7.1.1");
    }

    #[test]
    fn batch8_gain_anchor() {
        assert_eq!(SocGeneration::Sd8Gen1Plus.dsp_batch8_gain(), 1.7);
    }
}
