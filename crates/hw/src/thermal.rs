//! Lumped-parameter (RC) thermal model and fan control.
//!
//! The SoC Cluster cools 60 SoCs in 2U with eight fans (§2.2). Each thermal
//! node follows `C·dT/dt = P - (T - T_amb)/R(airflow)`: heat capacity `C`
//! integrates dissipated power, thermal resistance `R` falls as the fans
//! spin up. The BMC reads node temperatures and drives the fan duty cycle.

use serde::{Deserialize, Serialize};
use socc_sim::time::SimDuration;
use socc_sim::units::Power;

/// One lumped thermal node (an SoC package, the ESB, …).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalNode {
    /// Ambient (inlet air) temperature in °C.
    pub ambient_c: f64,
    /// Thermal resistance junction→air at zero airflow, °C/W.
    pub r_still_c_per_w: f64,
    /// Thermal resistance at full airflow, °C/W.
    pub r_forced_c_per_w: f64,
    /// Heat capacity, J/°C.
    pub capacity_j_per_c: f64,
    /// Junction temperature where the part throttles.
    pub throttle_c: f64,
    temperature_c: f64,
}

impl ThermalNode {
    /// Creates a node in equilibrium with ambient air.
    pub fn new(
        ambient_c: f64,
        r_still: f64,
        r_forced: f64,
        capacity: f64,
        throttle_c: f64,
    ) -> Self {
        Self {
            ambient_c,
            r_still_c_per_w: r_still,
            r_forced_c_per_w: r_forced,
            capacity_j_per_c: capacity,
            throttle_c,
            temperature_c: ambient_c,
        }
    }

    /// A Snapdragon 865 package in the cluster airflow path.
    pub fn soc_package(ambient_c: f64) -> Self {
        Self::new(ambient_c, 8.0, 2.2, 18.0, 95.0)
    }

    /// Current junction temperature in °C.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Returns `true` if the part is at or above its throttle point.
    pub fn is_throttling(&self) -> bool {
        self.temperature_c >= self.throttle_c
    }

    /// Effective thermal resistance at a fan duty cycle in `[0, 1]`.
    fn resistance(&self, fan_duty: f64) -> f64 {
        let duty = fan_duty.clamp(0.0, 1.0);
        self.r_still_c_per_w + (self.r_forced_c_per_w - self.r_still_c_per_w) * duty
    }

    /// Steady-state temperature under constant power and fan duty.
    pub fn steady_state_c(&self, power: Power, fan_duty: f64) -> f64 {
        self.ambient_c + power.as_watts() * self.resistance(fan_duty)
    }

    /// Advances the node by `dt` under constant dissipation and fan duty,
    /// using the exact exponential solution of the RC equation.
    pub fn step(&mut self, dt: SimDuration, power: Power, fan_duty: f64) {
        let r = self.resistance(fan_duty);
        let t_inf = self.ambient_c + power.as_watts() * r;
        let tau = r * self.capacity_j_per_c;
        let alpha = (-dt.as_secs_f64() / tau).exp();
        self.temperature_c = t_inf + (self.temperature_c - t_inf) * alpha;
    }
}

/// Proportional fan controller with hysteresis-free duty mapping.
///
/// Duty rises linearly from `min_duty` at `target_c` to 1.0 at `max_c`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FanController {
    /// Temperature at which fans start ramping.
    pub target_c: f64,
    /// Temperature at which fans reach full speed.
    pub max_c: f64,
    /// Minimum duty cycle (fans never fully stop in a 2U chassis).
    pub min_duty: f64,
    /// Electrical power of the fan wall at full duty.
    pub full_power: Power,
}

impl FanController {
    /// The SoC Cluster's eight-fan wall (§2.2).
    pub fn cluster_default() -> Self {
        Self {
            target_c: 45.0,
            max_c: 85.0,
            min_duty: 0.25,
            full_power: Power::watts(48.0),
        }
    }

    /// Duty cycle for the hottest observed node temperature.
    pub fn duty_for(&self, hottest_c: f64) -> f64 {
        if hottest_c <= self.target_c {
            return self.min_duty;
        }
        let frac = (hottest_c - self.target_c) / (self.max_c - self.target_c);
        (self.min_duty + (1.0 - self.min_duty) * frac).clamp(self.min_duty, 1.0)
    }

    /// Fan electrical power at a duty cycle (cubic fan-affinity law).
    pub fn power_at(&self, duty: f64) -> Power {
        let d = duty.clamp(0.0, 1.0);
        self.full_power * d.powi(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_warms_toward_steady_state() {
        let mut node = ThermalNode::soc_package(25.0);
        let p = Power::watts(8.0);
        let target = node.steady_state_c(p, 1.0);
        for _ in 0..10_000 {
            node.step(SimDuration::from_millis(100), p, 1.0);
        }
        assert!((node.temperature_c() - target).abs() < 0.1);
    }

    #[test]
    fn more_airflow_runs_cooler() {
        let node = ThermalNode::soc_package(25.0);
        let p = Power::watts(8.0);
        assert!(node.steady_state_c(p, 1.0) < node.steady_state_c(p, 0.0));
    }

    #[test]
    fn full_fan_keeps_soc_below_throttle() {
        // A fully loaded SoC (~8.6 W total) must not throttle with fans on.
        let node = ThermalNode::soc_package(30.0);
        let steady = node.steady_state_c(Power::watts(8.6), 1.0);
        assert!(steady < node.throttle_c, "steady {steady}");
    }

    #[test]
    fn still_air_would_throttle() {
        // Sanity: without airflow a loaded SoC exceeds its limit — the fan
        // wall is load-bearing.
        let node = ThermalNode::soc_package(30.0);
        assert!(node.steady_state_c(Power::watts(8.6), 0.0) > node.throttle_c);
    }

    #[test]
    fn fan_duty_ramp() {
        let fc = FanController::cluster_default();
        assert_eq!(fc.duty_for(20.0), fc.min_duty);
        assert_eq!(fc.duty_for(200.0), 1.0);
        let mid = fc.duty_for((fc.target_c + fc.max_c) / 2.0);
        assert!(mid > fc.min_duty && mid < 1.0);
    }

    #[test]
    fn fan_power_is_cubic() {
        let fc = FanController::cluster_default();
        let half = fc.power_at(0.5).as_watts();
        let full = fc.power_at(1.0).as_watts();
        assert!((half / full - 0.125).abs() < 1e-9);
    }

    #[test]
    fn cooling_step_is_exact_exponential() {
        let mut node = ThermalNode::new(25.0, 2.0, 1.0, 10.0, 90.0);
        // Heat to a known temperature first.
        node.step(SimDuration::from_secs(1000), Power::watts(20.0), 0.0);
        let hot = node.temperature_c();
        // One big cooling step equals many small ones (exactness check).
        let mut a = node.clone();
        a.step(SimDuration::from_secs(10), Power::ZERO, 1.0);
        let mut b = node;
        for _ in 0..1000 {
            b.step(SimDuration::from_millis(10), Power::ZERO, 1.0);
        }
        assert!((a.temperature_c() - b.temperature_c()).abs() < 1e-6);
        assert!(a.temperature_c() < hot);
    }
}
