//! Platform specifications (Table 1) assembling component models.

use serde::{Deserialize, Serialize};

use crate::codec::HwCodecModel;
use crate::cpu::CpuModel;
use crate::dsp::DspModel;
use crate::gpu::GpuModel;
use crate::memory::{MemoryModel, StorageModel};

/// Full specification of one mobile SoC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SocSpec {
    /// Marketing name (e.g. "Qualcomm Snapdragon 865").
    pub name: String,
    /// CPU complex.
    pub cpu: CpuModel,
    /// Integrated GPU.
    pub gpu: GpuModel,
    /// DSP / NPU.
    pub dsp: DspModel,
    /// Hardware video codec.
    pub codec: HwCodecModel,
    /// DRAM.
    pub memory: MemoryModel,
    /// Flash storage.
    pub storage: StorageModel,
    /// Operating system string (Table 1: "Android 10").
    pub os: String,
    /// Integrated Ethernet capacity in bits/s (Table 1: 1 GE).
    pub ethernet_bps: f64,
}

impl SocSpec {
    /// The Qualcomm Snapdragon 865 as integrated in the SoC Cluster
    /// (Table 1, individual-SoC column).
    pub fn snapdragon_865() -> Self {
        Self {
            name: "Qualcomm Snapdragon 865".to_string(),
            cpu: CpuModel::kryo_585(),
            gpu: GpuModel::adreno_650(),
            dsp: DspModel::hexagon_698(),
            codec: HwCodecModel::venus_sd865(),
            memory: MemoryModel::lpddr5_12gb(),
            storage: StorageModel::ufs_256gb(),
            os: "Android 10".to_string(),
            ethernet_bps: 1.0e9,
        }
    }

    /// Returns `true` if a VM/container subscription of `(cores, mem_gb,
    /// storage_gb)` fits within this SoC's resources (used for Fig. 1's
    /// "fits in a mobile SoC" analysis).
    pub fn fits_subscription(&self, cores: u32, mem_gb: f64, storage_gb: f64) -> bool {
        cores as usize <= self.cpu.core_count()
            && mem_gb <= self.memory.capacity_gb
            && storage_gb <= self.storage.capacity_gb
    }
}

/// Form factor and platform summary of a whole server (Table 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Server marketing name.
    pub name: String,
    /// Rack units occupied.
    pub rack_units: u32,
    /// Human-readable CPU description.
    pub cpu_desc: String,
    /// Human-readable GPU description.
    pub gpu_desc: String,
    /// Total DRAM description.
    pub memory_desc: String,
    /// Total storage description.
    pub storage_desc: String,
    /// OS description.
    pub os_desc: String,
    /// Network description.
    pub network_desc: String,
}

impl ServerSpec {
    /// Table 1, SoC Cluster whole-server column.
    pub fn soc_cluster() -> Self {
        Self {
            name: "SoC Cluster".to_string(),
            rack_units: 2,
            cpu_desc: "60x Qualcomm Kryo 585".to_string(),
            gpu_desc: "60x Qualcomm Adreno 650".to_string(),
            memory_desc: "720GB LPDDR5".to_string(),
            storage_desc: "15.36TB Flash".to_string(),
            os_desc: "Android 10 (per SoC)".to_string(),
            network_desc: "2x 10GE SFP+ Port".to_string(),
        }
    }

    /// Table 1, traditional edge server column.
    pub fn traditional_edge() -> Self {
        Self {
            name: "Traditional Edge Server".to_string(),
            rack_units: 4,
            cpu_desc: "Intel Xeon Gold 5218R Processor".to_string(),
            gpu_desc: "8x NVIDIA A40 PCIe 48GB".to_string(),
            memory_desc: "768GB DDR4".to_string(),
            storage_desc: "1.92TB SSD, 30TB HDD".to_string(),
            os_desc: "Ubuntu 18.04 LTS".to_string(),
            network_desc: "2x 1GE RJ45, 2x 10GE RJ45".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd865_matches_table1() {
        let soc = SocSpec::snapdragon_865();
        assert_eq!(soc.cpu.core_count(), 8);
        assert_eq!(soc.memory.capacity_gb, 12.0);
        assert_eq!(soc.storage.capacity_gb, 256.0);
        assert_eq!(soc.os, "Android 10");
        assert_eq!(soc.ethernet_bps, 1.0e9);
    }

    #[test]
    fn subscription_fit_boundaries() {
        let soc = SocSpec::snapdragon_865();
        assert!(soc.fits_subscription(8, 12.0, 256.0));
        assert!(!soc.fits_subscription(9, 12.0, 256.0));
        assert!(!soc.fits_subscription(8, 12.1, 256.0));
        assert!(!soc.fits_subscription(8, 12.0, 257.0));
        assert!(soc.fits_subscription(1, 0.5, 10.0));
    }

    #[test]
    fn form_factors_match_table1() {
        assert_eq!(ServerSpec::soc_cluster().rack_units, 2);
        assert_eq!(ServerSpec::traditional_edge().rack_units, 4);
    }
}
