//! Geekbench-5-style micro-benchmark model (Table 2).
//!
//! The model separates *per-core* capability from *whole-server* scaling:
//! whole-server score = per-core score × core count × per-benchmark scaling
//! efficiency. The scaling efficiencies are calibrated from Table 2 — the
//! SoC Cluster scales almost linearly (60 independent SoCs share nothing)
//! while monolithic servers lose up to half their raw throughput to shared
//! caches, memory bandwidth and the benchmark's coordination overhead.

use serde::{Deserialize, Serialize};

/// The micro-benchmarks reported in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MicroBenchmark {
    /// Geekbench 5 overall CPU score.
    CpuScore,
    /// Integer sub-score.
    IntegerScore,
    /// Floating-point sub-score.
    FloatingScore,
    /// Text compression (MB/s).
    TextCompress,
    /// SQLite queries (Krows/s).
    SqliteQuery,
    /// PDF rendering (Mpixels/s).
    PdfRender,
}

impl MicroBenchmark {
    /// All benchmarks in Table 2 row order.
    pub const ALL: [MicroBenchmark; 6] = [
        MicroBenchmark::CpuScore,
        MicroBenchmark::IntegerScore,
        MicroBenchmark::FloatingScore,
        MicroBenchmark::TextCompress,
        MicroBenchmark::SqliteQuery,
        MicroBenchmark::PdfRender,
    ];

    /// Row label as printed in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            MicroBenchmark::CpuScore => "CPU Score",
            MicroBenchmark::IntegerScore => "Integer Score",
            MicroBenchmark::FloatingScore => "Floating Score",
            MicroBenchmark::TextCompress => "Text Compress",
            MicroBenchmark::SqliteQuery => "SQLite Query",
            MicroBenchmark::PdfRender => "PDF Render",
        }
    }
}

/// The four platforms of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchPlatform {
    /// The SoC Cluster ("Ours").
    SocCluster,
    /// The traditional edge server ("Trad.").
    Traditional,
    /// AWS Graviton 2 (m6g.metal, 64 cores).
    Graviton2,
    /// AWS Graviton 3 (m7g.metal, 64 cores).
    Graviton3,
}

impl BenchPlatform {
    /// All platforms in Table 2 column order.
    pub const ALL: [BenchPlatform; 4] = [
        BenchPlatform::SocCluster,
        BenchPlatform::Traditional,
        BenchPlatform::Graviton2,
        BenchPlatform::Graviton3,
    ];

    /// Column label as printed in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            BenchPlatform::SocCluster => "Ours",
            BenchPlatform::Traditional => "Trad.",
            BenchPlatform::Graviton2 => "G2",
            BenchPlatform::Graviton3 => "G3",
        }
    }

    /// Number of scaling units: SoCs for the cluster, cores for the rest.
    fn scale_units(self) -> f64 {
        match self {
            BenchPlatform::SocCluster => 60.0,
            BenchPlatform::Traditional => 40.0,
            BenchPlatform::Graviton2 | BenchPlatform::Graviton3 => 64.0,
        }
    }

    /// Per-core score for a benchmark (Table 2, "Per-core Performance").
    pub fn per_core(self, bench: MicroBenchmark) -> f64 {
        use BenchPlatform::*;
        use MicroBenchmark::*;
        match (self, bench) {
            (SocCluster, CpuScore) => 911.0,
            (SocCluster, IntegerScore) => 842.0,
            (SocCluster, FloatingScore) => 948.0,
            (SocCluster, TextCompress) => 4.4,
            (SocCluster, SqliteQuery) => 257.0,
            (SocCluster, PdfRender) => 52.0,
            (Traditional, CpuScore) => 840.0,
            (Traditional, IntegerScore) => 800.0,
            (Traditional, FloatingScore) => 886.0,
            (Traditional, TextCompress) => 4.1,
            (Traditional, SqliteQuery) => 249.0,
            (Traditional, PdfRender) => 41.0,
            (Graviton2, CpuScore) => 762.0,
            (Graviton2, IntegerScore) => 735.0,
            (Graviton2, FloatingScore) => 790.0,
            (Graviton2, TextCompress) => 4.2,
            (Graviton2, SqliteQuery) => 208.0,
            (Graviton2, PdfRender) => 37.0,
            (Graviton3, CpuScore) => 1121.0,
            (Graviton3, IntegerScore) => 1039.0,
            (Graviton3, FloatingScore) => 1214.0,
            (Graviton3, TextCompress) => 4.9,
            (Graviton3, SqliteQuery) => 279.0,
            (Graviton3, PdfRender) => 66.0,
        }
    }

    /// Measured whole-server score (Table 2, "Whole Server Performance").
    pub fn whole_server_measured(self, bench: MicroBenchmark) -> f64 {
        use BenchPlatform::*;
        use MicroBenchmark::*;
        match (self, bench) {
            (SocCluster, CpuScore) => 194_100.0,
            (SocCluster, IntegerScore) => 184_500.0,
            (SocCluster, FloatingScore) => 191_820.0,
            (SocCluster, TextCompress) => 906.0,
            (SocCluster, SqliteQuery) => 59_958.0,
            (SocCluster, PdfRender) => 12_552.0,
            (Traditional, CpuScore) => 15_450.0,
            (Traditional, IntegerScore) => 16_224.0,
            (Traditional, FloatingScore) => 15_793.0,
            (Traditional, TextCompress) => 135.0,
            (Traditional, SqliteQuery) => 9_240.0,
            (Traditional, PdfRender) => 710.0,
            (Graviton2, CpuScore) => 36_091.0,
            (Graviton2, IntegerScore) => 36_653.0,
            (Graviton2, FloatingScore) => 35_813.0,
            (Graviton2, TextCompress) => 195.0,
            (Graviton2, SqliteQuery) => 12_200.0,
            (Graviton2, PdfRender) => 2_140.0,
            (Graviton3, CpuScore) => 51_379.0,
            (Graviton3, IntegerScore) => 50_695.0,
            (Graviton3, FloatingScore) => 49_885.0,
            (Graviton3, TextCompress) => 206.0,
            (Graviton3, SqliteQuery) => 16_200.0,
            (Graviton3, PdfRender) => 3_960.0,
        }
    }

    /// Per-benchmark scaling efficiency in `(0, 1]`, calibrated from
    /// Table 2 (`measured / (per_core × scale_units × per_unit_factor)`).
    ///
    /// For the SoC Cluster, the per-unit factor is the SoC's 8 cores'
    /// effective multicore factor; for the rest, the unit is one core.
    pub fn scaling_efficiency(self, bench: MicroBenchmark) -> f64 {
        let raw = match self {
            // Each SoC contributes its whole 8-core complex; the effective
            // multicore factor of a phone SoC is ~3.55 prime-core
            // equivalents (thermals + little cores).
            BenchPlatform::SocCluster => self.per_core(bench) * 60.0 * 4.0,
            _ => self.per_core(bench) * self.scale_units(),
        };
        self.whole_server_measured(bench) / raw
    }

    /// Model-predicted whole-server score (exactly reproduces Table 2 by
    /// construction; exists so other configurations can be extrapolated).
    pub fn whole_server_modeled(self, bench: MicroBenchmark) -> f64 {
        let per_unit = match self {
            BenchPlatform::SocCluster => self.per_core(bench) * 4.0,
            _ => self.per_core(bench),
        };
        per_unit * self.scale_units() * self.scaling_efficiency(bench)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reproduces_table2() {
        for p in BenchPlatform::ALL {
            for b in MicroBenchmark::ALL {
                let measured = p.whole_server_measured(b);
                let modeled = p.whole_server_modeled(b);
                assert!(
                    (modeled - measured).abs() / measured < 1e-9,
                    "{p:?} {b:?}: {modeled} vs {measured}"
                );
            }
        }
    }

    #[test]
    fn cluster_beats_graviton3_by_3_8x_on_cpu_score() {
        // §2.3: "3.8× higher CPU core score … relative to the latest AWS
        // Graviton 3 cloud instance".
        let ratio = BenchPlatform::SocCluster.whole_server_measured(MicroBenchmark::CpuScore)
            / BenchPlatform::Graviton3.whole_server_measured(MicroBenchmark::CpuScore);
        assert!((3.7..=3.9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cluster_pdf_render_3_2x_of_graviton3() {
        // §2.3: "3.2× faster PDF rendering speed".
        let ratio = BenchPlatform::SocCluster.whole_server_measured(MicroBenchmark::PdfRender)
            / BenchPlatform::Graviton3.whole_server_measured(MicroBenchmark::PdfRender);
        assert!((3.1..=3.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn per_core_soc_close_to_xeon() {
        // §2.3: "the per-core performance of SoC Cluster aligns closely
        // with that of the Intel Xeon CPU".
        let soc = BenchPlatform::SocCluster.per_core(MicroBenchmark::CpuScore);
        let xeon = BenchPlatform::Traditional.per_core(MicroBenchmark::CpuScore);
        assert!((soc / xeon - 1.0).abs() < 0.15);
        // …and outperforms Graviton 2.
        assert!(soc > BenchPlatform::Graviton2.per_core(MicroBenchmark::CpuScore));
    }

    #[test]
    fn scaling_efficiencies_are_sane() {
        for p in BenchPlatform::ALL {
            for b in MicroBenchmark::ALL {
                let eff = p.scaling_efficiency(b);
                assert!(eff > 0.0 && eff <= 1.05, "{p:?} {b:?} eff {eff}");
            }
        }
    }

    #[test]
    fn monolithic_servers_scale_worse_than_cluster() {
        let cluster = BenchPlatform::SocCluster.scaling_efficiency(MicroBenchmark::CpuScore);
        let trad = BenchPlatform::Traditional.scaling_efficiency(MicroBenchmark::CpuScore);
        assert!(cluster > trad, "cluster {cluster} vs traditional {trad}");
    }
}
