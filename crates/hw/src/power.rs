//! Power states and load-dependent power models.
//!
//! The paper's headline claim is that a cluster of mobile SoCs scales power
//! *proportionally* with load (§4.1, Fig. 7, Fig. 12) while monolithic
//! server parts pay a large activation penalty (the NVIDIA GPU "stays in a
//! high-power mode" on low-entropy videos). [`LoadPowerModel`] captures both
//! behaviours with three parameters: an idle floor, an activation step paid
//! as soon as *any* work is present, and a dynamic term linear in
//! utilization.

use serde::{Deserialize, Serialize};
use socc_sim::units::Power;

/// Operating power state of a component or a whole SoC.
///
/// State transitions are driven by the orchestrator's power-state manager;
/// the hardware model only prices each state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Powered off: consumes nothing, serves nothing. Waking takes the
    /// longest (full OS boot on a mobile SoC).
    Off,
    /// Deep sleep: RAM retained, everything else gated.
    Sleep,
    /// Idle but awake: OS running, no workload.
    Idle,
    /// Actively serving work.
    Active,
}

impl PowerState {
    /// Returns `true` if the component can accept work without a wake-up.
    pub fn is_serving(self) -> bool {
        matches!(self, PowerState::Active | PowerState::Idle)
    }
}

/// Fraction of a component's capacity that is busy, clamped to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Utilization(f64);

impl Utilization {
    /// Completely idle.
    pub const ZERO: Self = Self(0.0);

    /// Fully busy.
    pub const FULL: Self = Self(1.0);

    /// Creates a utilization, clamping to `[0, 1]` (NaN becomes 0).
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            Self(0.0)
        } else {
            Self(v.clamp(0.0, 1.0))
        }
    }

    /// Creates a utilization from used/total capacity, saturating at 1.
    pub fn from_ratio(used: f64, total: f64) -> Self {
        if total <= 0.0 {
            Self(0.0)
        } else {
            Self::new(used / total)
        }
    }

    /// The fraction as a plain `f64` in `[0, 1]`.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns `true` when no capacity is in use.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

/// A three-term load-to-power model.
///
/// `power(util) = idle + [util > 0] * activation + util * dynamic`
///
/// - `idle`: drawn whenever the component is powered on (even with no work);
/// - `activation`: the step paid as soon as any work runs — small for mobile
///   parts, large for discrete server GPUs that jump to a high-clock state;
/// - `dynamic`: the load-proportional term at full utilization.
///
/// *Workload power* (what the paper reports, §3 "Our report on workload
/// power consumption excludes idle power") is `power(util) - idle`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPowerModel {
    /// Power drawn when powered on but completely idle.
    pub idle: Power,
    /// Step drawn as soon as utilization is non-zero.
    pub activation: Power,
    /// Additional power at 100% utilization, scaled linearly with load.
    pub dynamic: Power,
}

impl LoadPowerModel {
    /// Creates a model from watt values.
    pub fn new(idle_w: f64, activation_w: f64, dynamic_w: f64) -> Self {
        Self {
            idle: Power::watts(idle_w),
            activation: Power::watts(activation_w),
            dynamic: Power::watts(dynamic_w),
        }
    }

    /// A perfectly proportional model with no idle or activation cost.
    pub fn proportional(dynamic_w: f64) -> Self {
        Self::new(0.0, 0.0, dynamic_w)
    }

    /// Total electrical power at the given state and utilization.
    pub fn power(&self, state: PowerState, util: Utilization) -> Power {
        match state {
            PowerState::Off => Power::ZERO,
            PowerState::Sleep => self.idle * 0.08,
            PowerState::Idle => self.idle,
            PowerState::Active => {
                if util.is_zero() {
                    self.idle
                } else {
                    self.idle + self.activation + self.dynamic * util.get()
                }
            }
        }
    }

    /// Workload power: total power minus the idle floor (never negative).
    ///
    /// This matches the paper's measurement convention.
    pub fn workload_power(&self, util: Utilization) -> Power {
        if util.is_zero() {
            Power::ZERO
        } else {
            self.activation + self.dynamic * util.get()
        }
    }

    /// Power at full load in the active state.
    pub fn peak(&self) -> Power {
        self.power(PowerState::Active, Utilization::FULL)
    }

    /// Energy-proportionality index over a load sweep: 1.0 means power at
    /// load `u` is exactly `u * peak_workload`, 0 means flat power.
    ///
    /// Computed as `1 - wasted_area / ideal_area` over the workload power
    /// curve (activation makes the curve convex from above, wasting energy
    /// at partial load).
    pub fn proportionality_index(&self) -> f64 {
        let peak = self.workload_power(Utilization::FULL).as_watts();
        if peak == 0.0 {
            return 1.0;
        }
        // Integrate workload_power(u) du analytically: activation + dynamic/2.
        let area = self.activation.as_watts() + self.dynamic.as_watts() / 2.0;
        let ideal = peak / 2.0;
        (1.0 - (area - ideal) / ideal).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_clamps() {
        assert_eq!(Utilization::new(1.5).get(), 1.0);
        assert_eq!(Utilization::new(-0.5).get(), 0.0);
        assert_eq!(Utilization::new(f64::NAN).get(), 0.0);
        assert_eq!(Utilization::from_ratio(5.0, 10.0).get(), 0.5);
        assert_eq!(Utilization::from_ratio(5.0, 0.0).get(), 0.0);
    }

    #[test]
    fn power_by_state() {
        let m = LoadPowerModel::new(2.0, 1.0, 6.0);
        assert_eq!(m.power(PowerState::Off, Utilization::FULL), Power::ZERO);
        assert_eq!(
            m.power(PowerState::Idle, Utilization::FULL),
            Power::watts(2.0)
        );
        assert_eq!(
            m.power(PowerState::Active, Utilization::ZERO),
            Power::watts(2.0)
        );
        assert_eq!(
            m.power(PowerState::Active, Utilization::FULL),
            Power::watts(9.0)
        );
        assert!(m.power(PowerState::Sleep, Utilization::ZERO) < Power::watts(0.5));
    }

    #[test]
    fn workload_power_excludes_idle() {
        let m = LoadPowerModel::new(2.0, 1.0, 6.0);
        assert_eq!(m.workload_power(Utilization::ZERO), Power::ZERO);
        assert_eq!(m.workload_power(Utilization::FULL), Power::watts(7.0));
        assert_eq!(m.workload_power(Utilization::new(0.5)), Power::watts(4.0));
    }

    #[test]
    fn proportional_model_has_index_one() {
        let m = LoadPowerModel::proportional(10.0);
        assert!((m.proportionality_index() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn activation_hurts_proportionality() {
        let flat = LoadPowerModel::new(0.0, 10.0, 0.1); // nearly flat curve
        let prop = LoadPowerModel::new(0.0, 0.5, 10.0);
        assert!(flat.proportionality_index() < 0.2);
        assert!(prop.proportionality_index() > 0.9);
    }

    #[test]
    fn serving_states() {
        assert!(PowerState::Active.is_serving());
        assert!(PowerState::Idle.is_serving());
        assert!(!PowerState::Sleep.is_serving());
        assert!(!PowerState::Off.is_serving());
    }

    #[test]
    fn peak_is_monotone_upper_bound() {
        let m = LoadPowerModel::new(2.0, 1.0, 6.0);
        for i in 0..=10 {
            let u = Utilization::new(i as f64 / 10.0);
            assert!(m.power(PowerState::Active, u) <= m.peak());
        }
    }
}
