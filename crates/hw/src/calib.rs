//! Calibration anchors taken from the paper.
//!
//! Every constant here cites the paper section/table/figure it comes from.
//! The rest of the workspace derives its behaviour from these anchors, so
//! that the reproduction harness regenerates the paper's tables and figures
//! from a single source of truth.
//!
//! Paper: *More is Different: Prototyping and Analyzing a New Form of Edge
//! Server with Massive Mobile SoCs*, USENIX ATC 2024.

/// Number of mobile SoCs in the prototyped 2U SoC Cluster (§2.2, Table 1).
pub const CLUSTER_SOC_COUNT: usize = 60;

/// Number of carrier PCBs, five SoCs each (§2.2, Fig. 2).
pub const CLUSTER_PCB_COUNT: usize = 12;

/// SoCs carried by each PCB (§2.2).
pub const SOCS_PER_PCB: usize = 5;

/// Uplink capacity of one PCB switch board in bits/s (§2.2, Table 3).
pub const PCB_UPLINK_BPS: f64 = 1.0e9;

/// External capacity of the Ethernet Switch Board: dual SFP+, 20 Gbps (§2.2).
pub const ESB_CAPACITY_BPS: f64 = 20.0e9;

/// Measured inter-SoC round-trip time (§2.3 "approximately 0.44 ms").
pub const INTER_SOC_RTT_MS: f64 = 0.44;

/// Measured inter-SoC TCP goodput on the 1 GbE fabric (§2.3): 903 Mbps.
pub const INTER_SOC_TCP_MBPS: f64 = 903.0;

/// Measured inter-SoC UDP goodput (§2.3): 895 Mbps.
pub const INTER_SOC_UDP_MBPS: f64 = 895.0;

/// Maximum power the redundant supplies can deliver (§2.2): ~700 W.
pub const CLUSTER_PSU_LIMIT_W: f64 = 700.0;

/// Per-SoC DRAM (Table 1): 12 GB LPDDR5.
pub const SOC_DRAM_GB: f64 = 12.0;

/// Per-SoC flash (Table 1): 256 GB UFS.
pub const SOC_FLASH_GB: f64 = 256.0;

/// SoC CPU core count (Table 1, Kryo 585).
pub const SOC_CPU_CORES: usize = 8;

// ---------------------------------------------------------------------------
// Whole-server power anchors (Table 4, "Avg. peak power consumption" while
// live-transcoding V5 at full load).
// ---------------------------------------------------------------------------

/// SoC Cluster average peak power (Table 4): 589 W.
pub const CLUSTER_AVG_PEAK_W: f64 = 589.0;

/// Traditional edge server with 8× A40 average peak power (Table 4): 1,231 W.
pub const EDGE_GPU_AVG_PEAK_W: f64 = 1231.0;

/// Traditional edge server without GPUs average peak power (Table 4): 633 W.
pub const EDGE_CPU_AVG_PEAK_W: f64 = 633.0;

// ---------------------------------------------------------------------------
// Transcoding capacity anchors (Table 3). Capacity is expressed in abstract
// "perf units" (pu) where one Snapdragon 865 CPU complex provides
// `SOC_CPU_TRANSCODE_PU`. The per-video stream costs in `socc-video` are
// derived from the Table 3 max-stream columns against this capacity.
// ---------------------------------------------------------------------------

/// Transcode perf units of one SoC's 8-core Kryo 585 complex.
///
/// Normalized from Table 2: whole-cluster GB5 CPU score 194,100 / 60 SoCs.
pub const SOC_CPU_TRANSCODE_PU: f64 = 3235.0;

/// Transcode perf units of one 8-core Intel Xeon Gold 5218R container.
///
/// Back-derived from Table 5 live TpC rows: the Intel container sustains
/// ≈2.0× the live streams of one SoC across V1–V6.
pub const INTEL_CONTAINER_TRANSCODE_PU: f64 = 6470.0;

/// Docker containers carved out of the Xeon host (§3 "Setups": 80 hardware
/// threads partitioned into 10 separate 8-core containers).
pub const INTEL_CONTAINER_COUNT: usize = 10;

// ---------------------------------------------------------------------------
// Video workload power anchors (§4.1, Fig. 6/7; derived in DESIGN.md).
// Values parameterize `LoadPowerModel { idle, activation, dynamic }`.
// ---------------------------------------------------------------------------

/// SoC CPU complex: idle 2.0 W, activation 0.8 W, dynamic 5.8 W.
///
/// Full-load workload power 6.6 W/SoC reproduces the 589 W cluster peak
/// (Table 4) and the SoC-vs-Intel live TpE band of 2.58–3.21× (§4.1).
pub const SOC_CPU_POWER: (f64, f64, f64) = (2.0, 0.8, 5.8);

/// One 8-core Intel container slice: idle 4.0 W, activation 1.5 W,
/// dynamic 38.5 W (full-load workload power 40 W/container).
pub const INTEL_CONTAINER_POWER: (f64, f64, f64) = (4.0, 1.5, 38.5);

/// One NVIDIA A40 used for NVENC transcoding: idle 30 W, activation 52 W
/// (the "high-power mode with high clock frequencies" of §4.1),
/// dynamic 48 W.
pub const A40_TRANSCODE_POWER: (f64, f64, f64) = (30.0, 52.0, 48.0);

/// SoC hardware codec (Venus): idle 0.05 W, activation 0.15 W, dynamic 1.6 W.
///
/// Sized so HW-codec TpE is ≈2.5× SoC-CPU on low-entropy videos and
/// 4.7–5.5× on high-entropy ones (§4.2, Fig. 8b).
pub const SOC_HW_CODEC_POWER: (f64, f64, f64) = (0.05, 0.15, 1.6);

// ---------------------------------------------------------------------------
// DL serving anchors (§5, Fig. 11, Table 7). Latencies in milliseconds at
// batch size 1 unless stated.
// ---------------------------------------------------------------------------

/// ResNet-50 FP32 on the SoC CPU via TFLite (Table 7): 81.2 ms.
pub const DL_SOC_CPU_R50_FP32_MS: f64 = 81.2;

/// ResNet-50 FP32 on the SoC GPU via TFLite-GPU (Table 7): 32.5 ms.
pub const DL_SOC_GPU_R50_FP32_MS: f64 = 32.5;

/// ResNet-50 INT8 on the SoC DSP (§1/§5.1: 8.8 ms; Table 7 physical: 11.0).
pub const DL_SOC_DSP_R50_INT8_MS: f64 = 8.8;

/// ResNet-152 FP32 on the SoC CPU (Table 7): 258.3 ms.
pub const DL_SOC_CPU_R152_FP32_MS: f64 = 258.3;

/// ResNet-152 FP32 on the SoC GPU (Table 7): 100.9 ms.
pub const DL_SOC_GPU_R152_FP32_MS: f64 = 100.9;

/// ResNet-152 INT8 on the SoC DSP (Table 7 virtualized: 20.4; §5.1 quotes
/// the 20.4–269 ms SoC latency range for ResNet-152).
pub const DL_SOC_DSP_R152_INT8_MS: f64 = 21.0;

/// YOLOv5x FP32 on the SoC CPU (Table 7): 1121.3 ms.
pub const DL_SOC_CPU_YOLO_FP32_MS: f64 = 1121.3;

/// YOLOv5x FP32 on the SoC GPU (Table 7): 620.6 ms.
pub const DL_SOC_GPU_YOLO_FP32_MS: f64 = 620.6;

/// Workload power of the SoC GPU while running DL inference.
///
/// Back-derived from §5.2: ≈18 samples/J on ResNet-50 FP32 at 30.8 fps.
pub const DL_SOC_GPU_POWER_W: f64 = 1.71;

/// Workload power of the SoC DSP while running INT8 inference.
///
/// Back-derived from §5.2: DSP ResNet-152 INT8 is 42× the Intel CPU's
/// samples/J ("operating at frequencies ≤ 500 MHz").
pub const DL_SOC_DSP_POWER_W: f64 = 0.75;

/// Workload power of the SoC CPU complex during TFLite inference.
pub const DL_SOC_CPU_POWER_W: f64 = 3.5;

/// Intel 8-core container, TVM FP32 ResNet-50 latency.
///
/// Back-derived from Table 5 (TpC 0.579 × $1,410 ≈ 830 fps server-wide).
pub const DL_INTEL_R50_FP32_MS: f64 = 12.0;

/// Intel container TVM workload power during inference.
pub const DL_INTEL_POWER_W: f64 = 33.0;

/// NVIDIA A40, TensorRT ResNet-50 FP32, batch 64: per-batch latency.
///
/// Back-derived from Table 5 (TpC 14.631 × $1,410 / 8 GPUs ≈ 2,580 fps).
pub const DL_A40_R50_FP32_BS64_MS: f64 = 24.8;

/// NVIDIA A40 batch-1 framework+PCIe overhead (§5.1: "approximately 8 ms
/// for a INT8-based ResNet-50"; FP32 batch-1 is dominated by this term).
pub const DL_A40_OVERHEAD_MS: f64 = 6.5;

/// NVIDIA A40 workload power during full-batch inference.
pub const DL_A40_POWER_W: f64 = 250.0;

/// NVIDIA A100 workload power during full-batch inference.
pub const DL_A100_POWER_W: f64 = 300.0;

/// NVIDIA A100, TensorRT ResNet-50 FP32, batch 64: per-batch latency.
///
/// Back-derived from §5.2: SoC GPU is 1.15× the A100's samples/J.
pub const DL_A100_R50_FP32_BS64_MS: f64 = 13.6;

// ---------------------------------------------------------------------------
// Collaborative inference anchors (§5.3, Fig. 13).
// ---------------------------------------------------------------------------

/// MNN single-SoC ResNet-50 compute time in the collaborative setup: 80 ms.
pub const COLLAB_R50_1SOC_COMPUTE_MS: f64 = 80.0;

/// MNN five-SoC ResNet-50 compute time: 34 ms (a 2.35× reduction).
pub const COLLAB_R50_5SOC_COMPUTE_MS: f64 = 34.0;

/// Communication share of total latency at 5 SoCs, unpipelined: 41.5%.
pub const COLLAB_COMM_SHARE_5SOC: f64 = 0.415;

/// Communication share at 5 SoCs with compute/communication pipelining: 22.9%.
pub const COLLAB_COMM_SHARE_5SOC_PIPELINED: f64 = 0.229;

/// End-to-end speedup from 1 → 5 SoCs (unpipelined): 1.38×.
pub const COLLAB_SPEEDUP_5SOC: f64 = 1.38;

// ---------------------------------------------------------------------------
// Virtualization overhead anchors (Table 7, §8).
// ---------------------------------------------------------------------------

/// Extra memory utilization of a containerized-Android SoC, in percentage
/// points (Table 7: e.g. 32.3% → 37.7% on ResNet-50/CPU).
pub const VIRT_MEMORY_OVERHEAD_PP: f64 = 5.3;

/// GPU utilization ceiling on virtualized SoCs (Table 7: 73.9% → 71.3%,
/// 82.5% → 77.1%; "prevents GPU workloads from achieving the same high
/// level of GPU usage").
pub const VIRT_GPU_UTIL_FACTOR: f64 = 0.945;

/// Latency slowdown of GPU workloads under virtualization on large models
/// (Table 7: YOLOv5x 620.6 → 683.7 ms ≈ 10%).
pub const VIRT_GPU_LATENCY_FACTOR: f64 = 1.10;

/// Latency factor for CPU/DSP workloads under virtualization (Table 7 shows
/// differences within noise; slightly faster than 1.0 in several rows).
pub const VIRT_CPU_LATENCY_FACTOR: f64 = 1.00;
