//! Dynamic voltage and frequency scaling: operating-point tables and
//! governors.
//!
//! Mobile SoCs owe much of their energy proportionality (§4.1) to DVFS:
//! power scales roughly with `f · V²` and voltage falls with frequency, so
//! running slower is super-linearly cheaper. This module models the
//! operating-point (OPP) tables of the Kryo 585 tiers and the standard
//! Linux cpufreq governors, letting experiments quantify race-to-idle
//! versus pace-to-load policies on transcode-like work.

use serde::{Deserialize, Serialize};
use socc_sim::time::SimDuration;
use socc_sim::units::{Energy, Frequency, Power};

/// One operating performance point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core clock.
    pub freq: Frequency,
    /// Supply voltage in volts.
    pub voltage: f64,
}

impl OperatingPoint {
    /// Creates an OPP.
    pub fn new(ghz: f64, voltage: f64) -> Self {
        Self {
            freq: Frequency::ghz(ghz),
            voltage,
        }
    }
}

/// An OPP table plus the dynamic-power coefficient of the core cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DvfsDomain {
    /// Domain name ("prime", "gold", "silver").
    pub name: String,
    /// Available OPPs, ascending by frequency.
    pub opps: Vec<OperatingPoint>,
    /// Effective switched capacitance in nF: `P_dyn = c · f · V²`.
    pub capacitance_nf: f64,
    /// Leakage power at the highest voltage, in watts (scales with V).
    pub leakage_w: f64,
}

impl DvfsDomain {
    /// The prime-core domain of a Kryo 585 (1× Cortex-A77 @ 2.84 GHz).
    ///
    /// Calibrated so full-speed dynamic power ≈ 2.1 W, matching the share
    /// of the complex's 6.6 W full-load workload power carried by the
    /// prime core.
    pub fn kryo585_prime() -> Self {
        Self {
            name: "prime".to_string(),
            opps: vec![
                OperatingPoint::new(0.71, 0.55),
                OperatingPoint::new(1.06, 0.60),
                OperatingPoint::new(1.42, 0.65),
                OperatingPoint::new(1.78, 0.72),
                OperatingPoint::new(2.13, 0.80),
                OperatingPoint::new(2.49, 0.88),
                OperatingPoint::new(2.84, 0.96),
            ],
            capacitance_nf: 0.80,
            leakage_w: 0.12,
        }
    }

    /// The gold-core domain (3× Cortex-A77 @ 2.42 GHz), per-core figures.
    pub fn kryo585_gold() -> Self {
        Self {
            name: "gold".to_string(),
            opps: vec![
                OperatingPoint::new(0.71, 0.55),
                OperatingPoint::new(1.17, 0.62),
                OperatingPoint::new(1.61, 0.69),
                OperatingPoint::new(2.02, 0.78),
                OperatingPoint::new(2.42, 0.87),
            ],
            capacitance_nf: 0.72,
            leakage_w: 0.09,
        }
    }

    /// The silver-core domain (4× Cortex-A55 @ 1.80 GHz), per-core figures.
    pub fn kryo585_silver() -> Self {
        Self {
            name: "silver".to_string(),
            opps: vec![
                OperatingPoint::new(0.58, 0.52),
                OperatingPoint::new(0.96, 0.56),
                OperatingPoint::new(1.38, 0.62),
                OperatingPoint::new(1.80, 0.70),
            ],
            capacitance_nf: 0.18,
            leakage_w: 0.03,
        }
    }

    /// Highest OPP.
    pub fn max_opp(&self) -> OperatingPoint {
        *self.opps.last().expect("non-empty OPP table")
    }

    /// Lowest OPP.
    pub fn min_opp(&self) -> OperatingPoint {
        self.opps[0]
    }

    /// Dynamic + leakage power at an OPP when fully busy.
    pub fn power_at(&self, opp: OperatingPoint) -> Power {
        let dynamic = self.capacitance_nf * 1e-9 * opp.freq.get() * opp.voltage * opp.voltage;
        let leakage = self.leakage_w * opp.voltage / self.max_opp().voltage;
        Power::watts(dynamic + leakage)
    }

    /// The lowest OPP whose frequency is at least `target` (or the max OPP
    /// if nothing suffices).
    pub fn opp_for(&self, target: Frequency) -> OperatingPoint {
        for &opp in &self.opps {
            if opp.freq >= target {
                return opp;
            }
        }
        self.max_opp()
    }

    /// The highest OPP whose full-load power fits within `budget`, or
    /// `None` when even the lowest OPP exceeds it. This is the brownout
    /// derating walk: a PSU rail failure shrinks the per-core power budget
    /// and the governor caps itself to the best OPP still affordable.
    pub fn opp_under_power(&self, budget: Power) -> Option<OperatingPoint> {
        self.opps
            .iter()
            .rev()
            .copied()
            .find(|&opp| self.power_at(opp) <= budget)
    }

    /// Fraction of full-speed throughput retained when capped to the
    /// highest OPP affordable under `budget` (frequency ratio; zero when
    /// no OPP fits). Because power is superlinear in frequency, the
    /// retained throughput fraction always exceeds the power fraction.
    pub fn throughput_cap_under_power(&self, budget: Power) -> f64 {
        self.opp_under_power(budget)
            .map_or(0.0, |opp| opp.freq.get() / self.max_opp().freq.get())
    }

    /// Energy to execute `cycles` of work under a governor, including idle
    /// leakage for the remainder of the `deadline` window.
    pub fn energy_for(
        &self,
        cycles: f64,
        deadline: SimDuration,
        governor: Governor,
    ) -> Option<EnergyReport> {
        let opp = match governor {
            Governor::Performance => self.max_opp(),
            Governor::Powersave => self.min_opp(),
            Governor::PaceToDeadline => {
                let needed = Frequency::hz(cycles / deadline.as_secs_f64());
                self.opp_for(needed)
            }
        };
        let busy_secs = cycles / opp.freq.get();
        if busy_secs > deadline.as_secs_f64() * (1.0 + 1e-9) {
            return None; // misses the deadline
        }
        let busy = SimDuration::from_secs_f64(busy_secs);
        let idle = deadline.saturating_sub(busy);
        // Idle leakage at the lowest voltage (cpuidle drops V quickly).
        let idle_power =
            Power::watts(self.leakage_w * self.min_opp().voltage / self.max_opp().voltage);
        Some(EnergyReport {
            opp,
            busy,
            energy: self.power_at(opp) * busy + idle_power * idle,
        })
    }
}

/// cpufreq-style governors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Governor {
    /// Pin to the maximum OPP, race to idle.
    Performance,
    /// Pin to the minimum OPP.
    Powersave,
    /// Pick the slowest OPP that still meets the deadline (schedutil-like).
    PaceToDeadline,
}

/// Outcome of running a work quantum under a governor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// OPP chosen.
    pub opp: OperatingPoint,
    /// Busy time.
    pub busy: SimDuration,
    /// Total energy over the deadline window.
    pub energy: Energy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opp_tables_ascend() {
        for domain in [
            DvfsDomain::kryo585_prime(),
            DvfsDomain::kryo585_gold(),
            DvfsDomain::kryo585_silver(),
        ] {
            for pair in domain.opps.windows(2) {
                assert!(pair[1].freq > pair[0].freq, "{}", domain.name);
                assert!(pair[1].voltage >= pair[0].voltage, "{}", domain.name);
            }
        }
    }

    #[test]
    fn prime_full_speed_power_near_2w() {
        let prime = DvfsDomain::kryo585_prime();
        let p = prime.power_at(prime.max_opp()).as_watts();
        assert!((1.7..=2.6).contains(&p), "power {p}");
    }

    #[test]
    fn power_superlinear_in_frequency() {
        // Halving frequency should cut power by much more than half.
        let prime = DvfsDomain::kryo585_prime();
        let full = prime.power_at(prime.max_opp()).as_watts();
        let half = prime
            .power_at(prime.opp_for(Frequency::ghz(1.42)))
            .as_watts();
        assert!(half < 0.4 * full, "half {half} vs full {full}");
    }

    #[test]
    fn pacing_beats_racing_for_slack_workloads() {
        // A transcode frame that needs 30% of peak throughput: pacing wins.
        let prime = DvfsDomain::kryo585_prime();
        let deadline = SimDuration::from_millis(33); // one 30 fps frame
        let cycles = 2.84e9 * 0.3 * deadline.as_secs_f64();
        let race = prime
            .energy_for(cycles, deadline, Governor::Performance)
            .unwrap();
        let pace = prime
            .energy_for(cycles, deadline, Governor::PaceToDeadline)
            .unwrap();
        assert!(
            pace.energy < race.energy,
            "pace {:?} vs race {:?}",
            pace.energy,
            race.energy
        );
        assert!(pace.opp.freq < race.opp.freq);
    }

    #[test]
    fn powersave_misses_tight_deadlines() {
        let prime = DvfsDomain::kryo585_prime();
        let deadline = SimDuration::from_millis(10);
        let cycles = 2.84e9 * 0.9 * deadline.as_secs_f64(); // needs 90% of peak
        assert!(prime
            .energy_for(cycles, deadline, Governor::Powersave)
            .is_none());
        assert!(prime
            .energy_for(cycles, deadline, Governor::Performance)
            .is_some());
    }

    #[test]
    fn pace_picks_sufficient_opp() {
        let gold = DvfsDomain::kryo585_gold();
        let deadline = SimDuration::from_millis(100);
        let cycles = 1.5e9 * deadline.as_secs_f64(); // needs ≥1.5 GHz
        let report = gold
            .energy_for(cycles, deadline, Governor::PaceToDeadline)
            .unwrap();
        assert!(report.opp.freq >= Frequency::ghz(1.5));
        assert!(report.opp.freq < gold.max_opp().freq);
    }

    #[test]
    fn brownout_cap_keeps_superlinear_throughput() {
        // Half the power budget retains well over half the throughput —
        // the superlinearity that makes brownout derating preferable to
        // killing SoCs outright.
        let prime = DvfsDomain::kryo585_prime();
        let full = prime.power_at(prime.max_opp());
        let frac = prime.throughput_cap_under_power(full * 0.5);
        assert!(frac > 0.6, "throughput fraction {frac}");
        assert!(frac < 1.0, "a halved budget cannot keep full speed");
        // A full budget keeps full speed; a vanishing budget keeps none.
        assert_eq!(prime.throughput_cap_under_power(full), 1.0);
        assert_eq!(prime.throughput_cap_under_power(Power::watts(0.01)), 0.0);
        assert!(prime.opp_under_power(Power::watts(0.01)).is_none());
    }

    #[test]
    fn silver_cores_are_far_cheaper() {
        let silver = DvfsDomain::kryo585_silver();
        let prime = DvfsDomain::kryo585_prime();
        assert!(
            silver.power_at(silver.max_opp()).as_watts()
                < 0.3 * prime.power_at(prime.max_opp()).as_watts()
        );
    }
}
