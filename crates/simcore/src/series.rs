//! Time-series recording for figures and energy accounting.

use crate::time::{SimDuration, SimTime};
use crate::units::{Energy, Power};

/// An append-only series of `(time, value)` samples.
///
/// Samples must be appended in non-decreasing time order. The series supports
/// step-function integration (used for energy accounting: integrate a power
/// series over time) and fixed-interval resampling (used to print figure
/// series).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last appended sample.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "TimeSeries samples must be time-ordered");
        }
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Value at time `t` under step-function (sample-and-hold) semantics:
    /// the most recent sample at or before `t`, or `None` before the first.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Integrates the step function over `[from, to]`.
    ///
    /// Regions before the first sample integrate as zero. The value unit is
    /// `sample-unit × seconds`.
    pub fn integrate(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from || self.points.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut cursor = from;
        // Walk segment boundaries strictly inside (from, to).
        for window in self.points.windows(2) {
            let (t0, v0) = window[0];
            let t1 = window[1].0;
            let seg_start = t0.max(cursor);
            let seg_end = t1.min(to);
            if seg_end > seg_start {
                acc += v0 * (seg_end - seg_start).as_secs_f64();
                cursor = seg_end;
            }
            if cursor >= to {
                return acc;
            }
        }
        // Tail: last sample holds to the end of the window.
        let (t_last, v_last) = *self.points.last().expect("non-empty");
        let seg_start = t_last.max(cursor);
        if to > seg_start {
            acc += v_last * (to - seg_start).as_secs_f64();
        }
        acc
    }

    /// Mean of the step function over `[from, to]`.
    pub fn time_average(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.saturating_since(from).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.integrate(from, to) / span
        }
    }

    /// Resamples the step function at fixed `interval` over `[from, to]`,
    /// returning the held value at each tick (zero before the first sample).
    pub fn resample(
        &self,
        from: SimTime,
        to: SimTime,
        interval: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!interval.is_zero(), "resample interval must be positive");
        let mut out = Vec::new();
        let mut t = from;
        while t <= to {
            out.push((t, self.value_at(t).unwrap_or(0.0)));
            t += interval;
        }
        out
    }

    /// Largest sample value (ignoring hold semantics), or `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Smallest sample value, or `None` when empty.
    pub fn min_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }
}

/// Accumulates energy from a piecewise-constant power draw.
///
/// Call [`set_power`](Self::set_power) whenever the draw changes; the meter
/// integrates the previous level over the elapsed interval.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    last_time: SimTime,
    current: Power,
    accumulated: Energy,
}

impl EnergyMeter {
    /// Creates a meter starting at `t0` with the given initial draw.
    pub fn new(t0: SimTime, initial: Power) -> Self {
        Self {
            last_time: t0,
            current: initial,
            accumulated: Energy::ZERO,
        }
    }

    /// Records that the power level changed to `p` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous update.
    pub fn set_power(&mut self, t: SimTime, p: Power) {
        self.accumulated += self.current * t.since(self.last_time);
        self.last_time = t;
        self.current = p;
    }

    /// Energy consumed up to time `t` (which must not precede the last update).
    pub fn energy_at(&self, t: SimTime) -> Energy {
        self.accumulated + self.current * t.since(self.last_time)
    }

    /// The current power level.
    pub fn power(&self) -> Power {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn value_at_holds_last_sample() {
        let mut ts = TimeSeries::new();
        ts.push(s(1), 10.0);
        ts.push(s(3), 20.0);
        assert_eq!(ts.value_at(s(0)), None);
        assert_eq!(ts.value_at(s(1)), Some(10.0));
        assert_eq!(ts.value_at(s(2)), Some(10.0));
        assert_eq!(ts.value_at(s(5)), Some(20.0));
    }

    #[test]
    fn integrate_step_function() {
        let mut ts = TimeSeries::new();
        ts.push(s(0), 2.0);
        ts.push(s(10), 4.0);
        // 10s at 2 + 5s at 4 = 40.
        assert!((ts.integrate(s(0), s(15)) - 40.0).abs() < 1e-9);
        // Window before first sample contributes zero.
        let mut ts2 = TimeSeries::new();
        ts2.push(s(5), 1.0);
        assert!((ts2.integrate(s(0), s(10)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_partial_windows() {
        let mut ts = TimeSeries::new();
        ts.push(s(0), 1.0);
        ts.push(s(2), 3.0);
        ts.push(s(4), 5.0);
        // [1, 3]: 1s at 1 + 1s at 3 = 4.
        assert!((ts.integrate(s(1), s(3)) - 4.0).abs() < 1e-9);
        assert_eq!(ts.integrate(s(3), s(3)), 0.0);
    }

    #[test]
    fn time_average_over_window() {
        let mut ts = TimeSeries::new();
        ts.push(s(0), 10.0);
        ts.push(s(5), 0.0);
        assert!((ts.time_average(s(0), s(10)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn resample_emits_fixed_ticks() {
        let mut ts = TimeSeries::new();
        ts.push(s(1), 7.0);
        let samples = ts.resample(s(0), s(2), SimDuration::from_secs(1));
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].1, 0.0);
        assert_eq!(samples[1].1, 7.0);
        assert_eq!(samples[2].1, 7.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(s(2), 1.0);
        ts.push(s(1), 1.0);
    }

    #[test]
    fn min_max_values() {
        let mut ts = TimeSeries::new();
        ts.push(s(0), 3.0);
        ts.push(s(1), -1.0);
        ts.push(s(2), 9.0);
        assert_eq!(ts.max_value(), Some(9.0));
        assert_eq!(ts.min_value(), Some(-1.0));
    }

    #[test]
    fn energy_meter_integrates_levels() {
        let mut m = EnergyMeter::new(s(0), Power::watts(10.0));
        m.set_power(s(10), Power::watts(20.0));
        let e = m.energy_at(s(15));
        assert!((e.as_joules() - (100.0 + 100.0)).abs() < 1e-9);
        assert_eq!(m.power().as_watts(), 20.0);
    }
}
