//! Plain-text table rendering for experiment reports.
//!
//! The reproduction harness prints each paper table/figure as an aligned
//! ASCII table; this module keeps that formatting logic in one place.

use core::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use socc_sim::report::Table;
///
/// let mut t = Table::new(["video", "streams/W"]);
/// t.row(["V1", "2.36"]);
/// let out = t.render();
/// assert!(out.contains("video"));
/// assert!(out.contains("V1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string (first column left-aligned, the rest
    /// right-aligned, which suits label + numeric layouts).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "== {title} ==");
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(line, "{cell:<width$}", width = widths[i]);
                } else {
                    let _ = write!(line, "{cell:>width$}", width = widths[i]);
                }
            }
            line
        };
        let _ = writeln!(out, "{}", render_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row));
        }
        out
    }
}

/// Formats a float with `digits` decimal places.
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a ratio like `3.21x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a value as a percentage like `53.4%`.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a dollar amount like `$1,042`.
pub fn dollars(v: f64) -> String {
    let rounded = v.round() as i64;
    let negative = rounded < 0;
    let digits = rounded.abs().to_string();
    let mut grouped = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(c);
    }
    if negative {
        format!("-${grouped}")
    } else {
        format!("${grouped}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]).with_title("demo");
        t.row(["a", "1"]);
        t.row(["long-name", "22"]);
        let out = t.render();
        assert!(out.starts_with("== demo =="));
        let lines: Vec<&str> = out.lines().collect();
        // Header, separator, two rows, plus title.
        assert_eq!(lines.len(), 5);
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.row_count(), 1);
        let out = t.render();
        assert!(out.contains('x'));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(ratio(2.5), "2.50x");
        assert_eq!(pct(0.534), "53.4%");
    }

    #[test]
    fn dollar_grouping() {
        assert_eq!(dollars(1042.4), "$1,042");
        assert_eq!(dollars(35.0), "$35");
        assert_eq!(dollars(48236.0), "$48,236");
        assert_eq!(dollars(-1500.0), "-$1,500");
        assert_eq!(dollars(1234567.0), "$1,234,567");
    }
}
