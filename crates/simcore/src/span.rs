//! Typed, sim-time-aware structured events and spans.
//!
//! This module replaces free-form string tracing on the simulator's hot
//! paths with a bounded, allocation-free event log:
//!
//! - [`EventKind`] is a closed set of `Copy` payloads (placement,
//!   migration, fault, DVFS transition, flow start/finish, …) — no heap,
//!   no formatting at record time;
//! - [`Scope`] tags the emitting subsystem and doubles as a bitmask
//!   filter, so a log can keep only the scopes a test cares about;
//! - [`EventLog`] is a fixed-capacity ring buffer: recording into a
//!   pre-sized log never allocates, and a disabled log costs one branch;
//! - exporters render the retained window as JSONL
//!   ([`EventLog::to_jsonl`]), as a Chrome `trace_event` document
//!   ([`EventLog::to_chrome_trace`]) loadable in `chrome://tracing` /
//!   Perfetto, or as a stable digest ([`EventLog::digest`]) for
//!   golden-trace regression tests.
//!
//! Spans ([`EventLog::begin_span`] / [`EventLog::end_span`]) bracket an
//! activity in sim time; they export as `B`/`E` pairs in the Chrome trace.

use core::fmt;
use std::fmt::Write as _;

use crate::time::SimTime;

/// Subsystem that emitted an event. Doubles as a filter bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Scope {
    /// Admission and placement decisions.
    Placement = 0,
    /// SoC power-state transitions (wake, sleep, off, restore).
    Power = 1,
    /// Ground-truth fault injection (single-SoC and domain-level).
    Fault = 2,
    /// Heartbeat detection and BMC classification.
    Detector = 3,
    /// Remediation: retries, migrations, shedding, repairs.
    Recovery = 4,
    /// Flow-level network simulator.
    Net = 5,
    /// DL serving.
    Serving = 6,
    /// Video transcode sessions.
    Video = 7,
    /// Energy accounting (ledger conservation checkpoints).
    Energy = 8,
    /// Fleet-level control plane: cross-site routing and WAN faults.
    Fleet = 9,
}

impl Scope {
    /// Every scope, in tag order.
    pub const ALL: [Scope; 10] = [
        Scope::Placement,
        Scope::Power,
        Scope::Fault,
        Scope::Detector,
        Scope::Recovery,
        Scope::Net,
        Scope::Serving,
        Scope::Video,
        Scope::Energy,
        Scope::Fleet,
    ];

    /// The scope's bit in an [`EventLog`] filter mask.
    pub const fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Stable lower-case name (used by every exporter).
    pub const fn name(self) -> &'static str {
        match self {
            Scope::Placement => "placement",
            Scope::Power => "power",
            Scope::Fault => "fault",
            Scope::Detector => "detector",
            Scope::Recovery => "recovery",
            Scope::Net => "net",
            Scope::Serving => "serving",
            Scope::Video => "video",
            Scope::Energy => "energy",
            Scope::Fleet => "fleet",
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A field value attached to a typed event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (ids, indices, counts).
    U64(u64),
    /// A static label (fault kind, detected class, span name).
    Label(&'static str),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::Label(s) => f.write_str(s),
        }
    }
}

/// One named field of an event: `(name, value)`.
pub type Field = (&'static str, FieldValue);

/// Typed event payloads. Every variant is `Copy` and heap-free, so
/// recording one is a handful of register moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A workload was admitted and placed on a SoC.
    Placed {
        /// Workload id.
        workload: u64,
        /// Target SoC slot.
        soc: u32,
    },
    /// A workload finished (explicitly or at its archive deadline).
    Finished {
        /// Workload id.
        workload: u64,
        /// SoC it ran on.
        soc: u32,
    },
    /// A sleeping/idle SoC was woken to take work.
    Wake {
        /// SoC slot.
        soc: u32,
    },
    /// An idle SoC was put to sleep.
    Sleep {
        /// SoC slot.
        soc: u32,
    },
    /// A SoC was decommissioned (fault or BMC power-off).
    SocOff {
        /// SoC slot.
        soc: u32,
    },
    /// A previously failed SoC returned to service.
    SocRestored {
        /// SoC slot.
        soc: u32,
    },
    /// Ground truth: a fault struck a SoC.
    FaultInjected {
        /// Victim SoC.
        soc: u32,
        /// Fault kind label (`flash`, `soc_hang`, …).
        kind: &'static str,
    },
    /// Ground truth: a correlated domain fault fired.
    DomainFaultInjected {
        /// Domain label (`board_down`, `partition`, `brownout`).
        domain: &'static str,
        /// Domain index (board, port group or rail).
        index: u32,
    },
    /// The heartbeat detector declared a SoC failed.
    FaultDetected {
        /// Silent SoC.
        soc: u32,
    },
    /// BMC out-of-band probing classified a detected failure.
    FaultClassified {
        /// Classified SoC.
        soc: u32,
        /// Detected class label (`crash`, `hang`, …).
        class: &'static str,
    },
    /// A displaced workload's re-placement was deferred with backoff.
    RetryScheduled {
        /// Original workload id.
        workload: u64,
        /// Attempt number (1 = immediate post-detection try).
        attempt: u32,
    },
    /// A displaced workload was successfully re-placed.
    Migrated {
        /// Original workload id.
        workload: u64,
        /// New SoC slot.
        soc: u32,
    },
    /// A workload was deliberately evicted to make room.
    WorkloadShed {
        /// Original workload id.
        workload: u64,
    },
    /// A workload could not be re-placed anywhere.
    WorkloadLost {
        /// Original workload id.
        workload: u64,
    },
    /// A workload was dropped at migration time (no recovery loop).
    WorkloadDropped {
        /// Workload id.
        workload: u64,
    },
    /// DVFS throughput was capped (PSU brownout derating).
    DvfsCapped {
        /// Retained throughput in permille of nominal.
        permille: u32,
    },
    /// A PSU rail browned out.
    BrownoutStarted {
        /// Rail index.
        rail: u32,
    },
    /// A browned-out PSU rail recovered.
    BrownoutEnded {
        /// Rail index.
        rail: u32,
    },
    /// An ESB port group went dark.
    PartitionStarted {
        /// Port-group index.
        group: u32,
    },
    /// A dark ESB port group healed.
    PartitionHealed {
        /// Port-group index.
        group: u32,
    },
    /// A BMC power cycle was issued for a hung SoC.
    PowerCycleIssued {
        /// SoC slot.
        soc: u32,
    },
    /// A thermally tripped SoC entered its cooldown.
    CooldownStarted {
        /// SoC slot.
        soc: u32,
    },
    /// A lost access link entered repair.
    LinkRepairStarted {
        /// SoC slot whose links are repairing.
        soc: u32,
    },
    /// A long-lived stream attached to the fabric.
    FlowStarted {
        /// Stream id.
        flow: u64,
    },
    /// A long-lived stream detached.
    FlowFinished {
        /// Stream id.
        flow: u64,
    },
    /// A finite transfer started.
    TransferStarted {
        /// Transfer id.
        transfer: u64,
    },
    /// A finite transfer drained.
    TransferFinished {
        /// Transfer id.
        transfer: u64,
    },
    /// A fabric link failed.
    LinkFailed {
        /// Link id.
        link: u32,
    },
    /// A fabric link was repaired.
    LinkRepaired {
        /// Link id.
        link: u32,
    },
    /// A packet was dropped at a full port buffer (packet mode).
    PacketDropped {
        /// Link id of the congested port.
        link: u32,
    },
    /// A packet was ECN-marked at an over-threshold port (packet mode).
    EcnMarked {
        /// Link id of the marking port.
        link: u32,
    },
    /// A sender halved its congestion window (packet mode).
    CwndReduced {
        /// Flow id.
        flow: u64,
    },
    /// Evacuation admission was paced by fabric backpressure.
    EvacuationPaced {
        /// Transfers held back in this pacing decision.
        held: u64,
    },
    /// A site's WAN uplink partitioned from the fleet control plane.
    SiteUnreachable {
        /// Site index.
        site: u32,
    },
    /// A partitioned site's WAN uplink healed.
    SiteHealed {
        /// Site index.
        site: u32,
    },
    /// Sessions the fleet placer routed to a site in one sync window.
    SessionsRouted {
        /// Target site index.
        site: u32,
        /// Sessions routed this window.
        count: u32,
    },
    /// Sessions diverted away from their home site (partition or no
    /// capacity) in one sync window.
    SessionsRerouted {
        /// Home site the sessions were diverted from.
        site: u32,
        /// Sessions rerouted this window.
        count: u32,
    },
    /// A site lost utility power: every PSU rail dark, all SoCs down.
    SiteBlackout {
        /// Site index.
        site: u32,
    },
    /// A blacked-out site's power returned; SoCs restored to service.
    SitePowerRestored {
        /// Site index.
        site: u32,
    },
    /// A site lost one PSU rail: every board's DVFS derated until the
    /// rail returns.
    SiteBrownout {
        /// Site index.
        site: u32,
        /// Throughput fraction the site keeps, permille.
        permille: u32,
    },
    /// A browned-out site's rail returned; full capacity restored.
    SiteBrownoutEnded {
        /// Site index.
        site: u32,
    },
    /// A regional WAN storm partitioned every site in one region.
    RegionStorm {
        /// Region index.
        region: u32,
    },
    /// Live inter-site migrations that landed at a host site in one sync
    /// window.
    SessionsMigrated {
        /// Host site the sessions resumed at.
        site: u32,
        /// Migrations completed this window.
        count: u32,
    },
    /// A transcode session was planned.
    SessionPlanned {
        /// Frames the session covers.
        frames: u64,
    },
    /// A DL serving operating point was evaluated.
    ServeEvaluated {
        /// Offered load in milli-fps.
        fps_milli: u64,
    },
    /// Opening edge of a span.
    SpanBegin {
        /// Span id (pairs with the matching [`EventKind::SpanEnd`]).
        span: u32,
        /// Span name.
        name: &'static str,
    },
    /// Closing edge of a span.
    SpanEnd {
        /// Span id.
        span: u32,
        /// Span name.
        name: &'static str,
    },
}

impl EventKind {
    /// Stable lower-case event name (used by every exporter).
    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::Placed { .. } => "placed",
            EventKind::Finished { .. } => "finished",
            EventKind::Wake { .. } => "wake",
            EventKind::Sleep { .. } => "sleep",
            EventKind::SocOff { .. } => "soc_off",
            EventKind::SocRestored { .. } => "soc_restored",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::DomainFaultInjected { .. } => "domain_fault",
            EventKind::FaultDetected { .. } => "fault_detected",
            EventKind::FaultClassified { .. } => "fault_classified",
            EventKind::RetryScheduled { .. } => "retry_scheduled",
            EventKind::Migrated { .. } => "migrated",
            EventKind::WorkloadShed { .. } => "workload_shed",
            EventKind::WorkloadLost { .. } => "workload_lost",
            EventKind::WorkloadDropped { .. } => "workload_dropped",
            EventKind::DvfsCapped { .. } => "dvfs_capped",
            EventKind::BrownoutStarted { .. } => "brownout_started",
            EventKind::BrownoutEnded { .. } => "brownout_ended",
            EventKind::PartitionStarted { .. } => "partition_started",
            EventKind::PartitionHealed { .. } => "partition_healed",
            EventKind::PowerCycleIssued { .. } => "power_cycle_issued",
            EventKind::CooldownStarted { .. } => "cooldown_started",
            EventKind::LinkRepairStarted { .. } => "link_repair_started",
            EventKind::FlowStarted { .. } => "flow_started",
            EventKind::FlowFinished { .. } => "flow_finished",
            EventKind::TransferStarted { .. } => "transfer_started",
            EventKind::TransferFinished { .. } => "transfer_finished",
            EventKind::LinkFailed { .. } => "link_failed",
            EventKind::LinkRepaired { .. } => "link_repaired",
            EventKind::PacketDropped { .. } => "packet_dropped",
            EventKind::EcnMarked { .. } => "ecn_marked",
            EventKind::CwndReduced { .. } => "cwnd_reduced",
            EventKind::EvacuationPaced { .. } => "evacuation_paced",
            EventKind::SiteUnreachable { .. } => "site_unreachable",
            EventKind::SiteHealed { .. } => "site_healed",
            EventKind::SessionsRouted { .. } => "sessions_routed",
            EventKind::SessionsRerouted { .. } => "sessions_rerouted",
            EventKind::SiteBlackout { .. } => "site_blackout",
            EventKind::SitePowerRestored { .. } => "site_power_restored",
            EventKind::SiteBrownout { .. } => "site_brownout",
            EventKind::SiteBrownoutEnded { .. } => "site_brownout_ended",
            EventKind::RegionStorm { .. } => "region_storm",
            EventKind::SessionsMigrated { .. } => "sessions_migrated",
            EventKind::SessionPlanned { .. } => "session_planned",
            EventKind::ServeEvaluated { .. } => "serve_evaluated",
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
        }
    }

    /// The event's fields as up-to-two `(name, value)` pairs, in a fixed
    /// order. Exporters iterate this so the JSONL, Chrome and digest views
    /// cannot drift apart.
    pub fn fields(&self) -> [Option<Field>; 2] {
        use FieldValue::{Label, U64};
        match *self {
            EventKind::Placed { workload, soc }
            | EventKind::Finished { workload, soc }
            | EventKind::Migrated { workload, soc } => {
                Some([("workload", U64(workload)), ("soc", U64(u64::from(soc)))])
            }
            EventKind::Wake { soc }
            | EventKind::Sleep { soc }
            | EventKind::SocOff { soc }
            | EventKind::SocRestored { soc }
            | EventKind::FaultDetected { soc }
            | EventKind::PowerCycleIssued { soc }
            | EventKind::CooldownStarted { soc }
            | EventKind::LinkRepairStarted { soc } => {
                return [Some(("soc", U64(u64::from(soc)))), None]
            }
            EventKind::FaultInjected { soc, kind } => {
                Some([("soc", U64(u64::from(soc))), ("kind", Label(kind))])
            }
            EventKind::DomainFaultInjected { domain, index } => {
                Some([("domain", Label(domain)), ("index", U64(u64::from(index)))])
            }
            EventKind::FaultClassified { soc, class } => {
                Some([("soc", U64(u64::from(soc))), ("class", Label(class))])
            }
            EventKind::RetryScheduled { workload, attempt } => Some([
                ("workload", U64(workload)),
                ("attempt", U64(u64::from(attempt))),
            ]),
            EventKind::WorkloadShed { workload }
            | EventKind::WorkloadLost { workload }
            | EventKind::WorkloadDropped { workload } => {
                return [Some(("workload", U64(workload))), None]
            }
            EventKind::DvfsCapped { permille } => {
                return [Some(("permille", U64(u64::from(permille)))), None]
            }
            EventKind::BrownoutStarted { rail } | EventKind::BrownoutEnded { rail } => {
                return [Some(("rail", U64(u64::from(rail)))), None]
            }
            EventKind::PartitionStarted { group } | EventKind::PartitionHealed { group } => {
                return [Some(("group", U64(u64::from(group)))), None]
            }
            EventKind::FlowStarted { flow } | EventKind::FlowFinished { flow } => {
                return [Some(("flow", U64(flow))), None]
            }
            EventKind::TransferStarted { transfer } | EventKind::TransferFinished { transfer } => {
                return [Some(("transfer", U64(transfer))), None]
            }
            EventKind::LinkFailed { link }
            | EventKind::LinkRepaired { link }
            | EventKind::PacketDropped { link }
            | EventKind::EcnMarked { link } => return [Some(("link", U64(u64::from(link)))), None],
            EventKind::CwndReduced { flow } => return [Some(("flow", U64(flow))), None],
            EventKind::EvacuationPaced { held } => return [Some(("held", U64(held))), None],
            EventKind::SiteUnreachable { site }
            | EventKind::SiteHealed { site }
            | EventKind::SiteBlackout { site }
            | EventKind::SitePowerRestored { site }
            | EventKind::SiteBrownoutEnded { site } => {
                return [Some(("site", U64(u64::from(site)))), None]
            }
            EventKind::SiteBrownout { site, permille } => Some([
                ("site", U64(u64::from(site))),
                ("permille", U64(u64::from(permille))),
            ]),
            EventKind::RegionStorm { region } => {
                return [Some(("region", U64(u64::from(region)))), None]
            }
            EventKind::SessionsRouted { site, count }
            | EventKind::SessionsRerouted { site, count }
            | EventKind::SessionsMigrated { site, count } => Some([
                ("site", U64(u64::from(site))),
                ("count", U64(u64::from(count))),
            ]),
            EventKind::SessionPlanned { frames } => return [Some(("frames", U64(frames))), None],
            EventKind::ServeEvaluated { fps_milli } => {
                return [Some(("fps_milli", U64(fps_milli))), None]
            }
            EventKind::SpanBegin { span, name } | EventKind::SpanEnd { span, name } => {
                Some([("span", U64(u64::from(span))), ("name", Label(name))])
            }
        }
        .map_or([None, None], |[a, b]| [Some(a), Some(b)])
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())?;
        for (name, value) in self.fields().into_iter().flatten() {
            write!(f, " {name}={value}")?;
        }
        Ok(())
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Sim-time instant of the event.
    pub at: SimTime,
    /// Monotone sequence number (total order, survives ring eviction).
    pub seq: u64,
    /// Emitting subsystem.
    pub scope: Scope,
    /// Typed payload.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>14.6}s] {:<9} {}",
            self.at.as_secs_f64(),
            self.scope.name(),
            self.kind
        )
    }
}

/// Identifies a span opened by [`EventLog::begin_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u32);

impl SpanId {
    /// Raw span number.
    pub const fn get(self) -> u32 {
        self.0
    }
}

/// Default ring capacity used by [`EventLog::disabled`].
const DEFAULT_CAPACITY: usize = 1024;

/// A bounded, filterable, allocation-free typed event log.
///
/// The ring is fully pre-allocated at construction: [`EventLog::record`]
/// on an enabled log is a mask check plus one slot write, and on a
/// disabled log a single branch. Oldest events are evicted first once the
/// ring is full; [`EventLog::dropped`] counts evictions.
#[derive(Debug, Clone)]
pub struct EventLog {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest retained event once the ring has wrapped.
    start: usize,
    enabled: bool,
    mask: u32,
    dropped: u64,
    seq: u64,
    next_span: u32,
}

impl EventLog {
    /// Creates an enabled log retaining at most `capacity` events, with
    /// every scope admitted. The ring is pre-allocated here so recording
    /// never touches the heap.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            start: 0,
            enabled: true,
            mask: u32::MAX,
            dropped: 0,
            seq: 0,
            next_span: 0,
        }
    }

    /// Creates a disabled log (recording is a no-op until
    /// [`EventLog::set_enabled`] turns it on).
    pub fn disabled() -> Self {
        let mut log = Self::new(DEFAULT_CAPACITY);
        log.enabled = false;
        log
    }

    /// Turns recording on or off. Disabling keeps retained events.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is currently on.
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Restricts recording to the given scopes (events from other scopes
    /// are skipped before touching the ring).
    pub fn set_scopes(&mut self, scopes: &[Scope]) {
        self.mask = scopes.iter().fold(0, |m, s| m | s.bit());
    }

    /// Admits every scope again.
    pub fn all_scopes(&mut self) {
        self.mask = u32::MAX;
    }

    /// Records one event. Allocation-free; a disabled log or filtered
    /// scope costs one branch.
    #[inline]
    pub fn record(&mut self, at: SimTime, scope: Scope, kind: EventKind) {
        if !self.enabled || self.mask & scope.bit() == 0 {
            return;
        }
        let e = Event {
            at,
            seq: self.seq,
            scope,
            kind,
        };
        self.seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.start] = e;
            self.start += 1;
            if self.start == self.capacity {
                self.start = 0;
            }
            self.dropped += 1;
        }
    }

    /// Opens a span and returns its id. Span ids are handed out even when
    /// the log is disabled so instrumented code needs no branches.
    pub fn begin_span(&mut self, at: SimTime, scope: Scope, name: &'static str) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span = self.next_span.wrapping_add(1);
        self.record(at, scope, EventKind::SpanBegin { span: id.0, name });
        id
    }

    /// Closes a span opened by [`EventLog::begin_span`].
    pub fn end_span(&mut self, at: SimTime, scope: Scope, id: SpanId, name: &'static str) {
        self.record(at, scope, EventKind::SpanEnd { span: id.0, name });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted by the capacity bound.
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + evicted).
    pub const fn recorded(&self) -> u64 {
        self.seq
    }

    /// Forgets retained events (the sequence counter keeps running).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// Iterates retained events oldest-first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }

    /// Retained events from one scope, oldest-first.
    pub fn in_scope(&self, scope: Scope) -> impl Iterator<Item = &Event> {
        self.events().filter(move |e| e.scope == scope)
    }

    /// Renders the retained window as human-readable lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let _ = writeln!(out, "{e}");
        }
        out
    }

    /// Renders the retained window as JSON Lines: one object per event
    /// with `t_ns`, `seq`, `scope`, `event` and the typed fields.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let _ = write!(
                out,
                "{{\"t_ns\":{},\"seq\":{},\"scope\":\"{}\",\"event\":\"{}\"",
                e.at.as_nanos(),
                e.seq,
                e.scope.name(),
                e.kind.name()
            );
            for (name, value) in e.kind.fields().into_iter().flatten() {
                match value {
                    FieldValue::U64(v) => {
                        let _ = write!(out, ",\"{name}\":{v}");
                    }
                    FieldValue::Label(s) => {
                        let _ = write!(out, ",\"{name}\":\"{s}\"");
                    }
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders the retained window in Chrome `trace_event` format
    /// (loadable in `chrome://tracing` or Perfetto). Instant events use
    /// phase `i`; spans export as `B`/`E` pairs. Sim-time nanoseconds map
    /// to trace microseconds; each scope gets its own named thread row.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for scope in Scope::ALL {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                scope as u8,
                scope.name()
            );
        }
        for e in self.events() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let ts_us = e.at.as_nanos() as f64 / 1e3;
            let (name, phase): (&str, &str) = match e.kind {
                EventKind::SpanBegin { name, .. } => (name, "B"),
                EventKind::SpanEnd { name, .. } => (name, "E"),
                _ => (e.kind.name(), "i"),
            };
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"{phase}\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{}",
                e.scope as u8
            );
            if phase == "i" {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"args\":{");
            let mut first_field = true;
            for (fname, value) in e.kind.fields().into_iter().flatten() {
                if !first_field {
                    out.push(',');
                }
                first_field = false;
                match value {
                    FieldValue::U64(v) => {
                        let _ = write!(out, "\"{fname}\":{v}");
                    }
                    FieldValue::Label(s) => {
                        let _ = write!(out, "\"{fname}\":\"{s}\"");
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// A normalized, order-sensitive FNV-1a digest of the retained window:
    /// time, scope, event name and fields — but not sequence numbers, so
    /// clearing or re-recording an identical window digests identically.
    /// Golden-trace tests snapshot this to catch event reordering.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut line = String::new();
        for e in self.events() {
            line.clear();
            let _ = write!(line, "{} {} {}", e.at.as_nanos(), e.scope.name(), e.kind);
            for b in line.as_bytes() {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            hash ^= u64::from(b'\n');
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// [`EventLog::digest`] as fixed-width hex.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_in_order() {
        let mut log = EventLog::new(16);
        log.record(
            t(1),
            Scope::Placement,
            EventKind::Placed {
                workload: 7,
                soc: 3,
            },
        );
        log.record(
            t(2),
            Scope::Fault,
            EventKind::FaultInjected {
                soc: 3,
                kind: "flash",
            },
        );
        assert_eq!(log.len(), 2);
        let kinds: Vec<&'static str> = log.events().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, vec!["placed", "fault_injected"]);
        assert_eq!(log.events().next().unwrap().seq, 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::new(3);
        for i in 0..5 {
            log.record(t(i), Scope::Power, EventKind::Wake { soc: i as u32 });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.recorded(), 5);
        let first = log.events().next().unwrap();
        assert_eq!(first.kind, EventKind::Wake { soc: 2 });
        // Oldest-first order survives the wrap.
        let socs: Vec<u32> = log
            .events()
            .map(|e| match e.kind {
                EventKind::Wake { soc } => soc,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(socs, vec![2, 3, 4]);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        log.record(t(1), Scope::Net, EventKind::FlowStarted { flow: 1 });
        assert!(log.is_empty());
        log.set_enabled(true);
        log.record(t(2), Scope::Net, EventKind::FlowStarted { flow: 2 });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn scope_mask_filters() {
        let mut log = EventLog::new(16);
        log.set_scopes(&[Scope::Fault, Scope::Recovery]);
        log.record(
            t(1),
            Scope::Placement,
            EventKind::Placed {
                workload: 1,
                soc: 0,
            },
        );
        log.record(t(2), Scope::Fault, EventKind::FaultDetected { soc: 0 });
        log.record(
            t(3),
            Scope::Recovery,
            EventKind::Migrated {
                workload: 1,
                soc: 4,
            },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.in_scope(Scope::Fault).count(), 1);
        log.all_scopes();
        log.record(
            t(4),
            Scope::Placement,
            EventKind::Placed {
                workload: 2,
                soc: 0,
            },
        );
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn spans_pair_begin_and_end() {
        let mut log = EventLog::new(16);
        let s = log.begin_span(t(1), Scope::Serving, "slo_search");
        log.end_span(t(5), Scope::Serving, s, "slo_search");
        let events: Vec<&Event> = log.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].kind,
            EventKind::SpanBegin {
                span: s.get(),
                name: "slo_search"
            }
        );
        assert_eq!(
            events[1].kind,
            EventKind::SpanEnd {
                span: s.get(),
                name: "slo_search"
            }
        );
    }

    #[test]
    fn jsonl_has_one_object_per_event() {
        let mut log = EventLog::new(16);
        log.record(
            t(1),
            Scope::Fault,
            EventKind::FaultInjected {
                soc: 2,
                kind: "flash",
            },
        );
        log.record(
            t(2),
            Scope::Recovery,
            EventKind::Migrated {
                workload: 9,
                soc: 5,
            },
        );
        let doc = log.to_jsonl();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"fault_injected\""));
        assert!(lines[0].contains("\"kind\":\"flash\""));
        assert!(lines[1].contains("\"workload\":9"));
        for l in lines {
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }

    #[test]
    fn chrome_trace_is_balanced_and_typed() {
        let mut log = EventLog::new(16);
        let s = log.begin_span(t(1), Scope::Video, "plan");
        log.record(
            t(2),
            Scope::Video,
            EventKind::SessionPlanned { frames: 100 },
        );
        log.end_span(t(3), Scope::Video, s, "plan");
        let doc = log.to_chrome_trace();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"B\""));
        assert!(doc.contains("\"ph\":\"E\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"name\":\"video\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let build = |swap: bool| {
            let mut log = EventLog::new(16);
            let a = (t(1), Scope::Fault, EventKind::FaultDetected { soc: 1 });
            let b = (
                t(1),
                Scope::Recovery,
                EventKind::Migrated {
                    workload: 3,
                    soc: 2,
                },
            );
            let (x, y) = if swap { (b, a) } else { (a, b) };
            log.record(x.0, x.1, x.2);
            log.record(y.0, y.1, y.2);
            log.digest()
        };
        assert_eq!(build(false), build(false));
        assert_ne!(build(false), build(true));
        assert_eq!(EventLog::new(4).digest(), EventLog::new(8).digest());
    }

    #[test]
    fn digest_ignores_sequence_numbers() {
        let mut a = EventLog::new(4);
        a.record(t(1), Scope::Net, EventKind::FlowStarted { flow: 1 });
        let mut b = EventLog::new(4);
        b.record(t(0), Scope::Net, EventKind::FlowFinished { flow: 9 });
        b.clear();
        b.record(t(1), Scope::Net, EventKind::FlowStarted { flow: 1 });
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn display_renders_fields() {
        let e = Event {
            at: t(3),
            seq: 0,
            scope: Scope::Detector,
            kind: EventKind::FaultClassified {
                soc: 7,
                class: "hang",
            },
        };
        let s = e.to_string();
        assert!(s.contains("detector"));
        assert!(s.contains("fault_classified soc=7 class=hang"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = EventLog::new(0);
    }
}
