//! Simulated time.
//!
//! [`SimTime`] is an absolute instant on the simulation clock and
//! [`SimDuration`] a span between instants. Both are backed by a `u64`
//! nanosecond count, which gives deterministic integer arithmetic (no
//! floating-point drift in the event queue) while still covering ~584 years
//! of simulated time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second.
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A span of simulated time with nanosecond resolution.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration {
    nanos: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: Self = Self { nanos: 0 };

    /// The largest representable duration.
    pub const MAX: Self = Self { nanos: u64::MAX };

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self { nanos }
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self {
            nanos: micros * 1_000,
        }
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self {
            nanos: millis * 1_000_000,
        }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            nanos: secs * NANOS_PER_SEC,
        }
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        Self::from_secs(mins * 60)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        Self::from_secs(hours * 3600)
    }

    /// Creates a duration from fractional seconds, saturating at the
    /// representable range and flooring negatives/NaN to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return Self::ZERO;
        }
        let nanos = secs * NANOS_PER_SEC as f64;
        if nanos >= u64::MAX as f64 {
            Self::MAX
        } else {
            Self {
                nanos: nanos.round() as u64,
            }
        }
    }

    /// Creates a duration from fractional milliseconds (negatives clamp to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Returns the duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// Returns the duration as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Returns `true` for the zero duration.
    pub const fn is_zero(self) -> bool {
        self.nanos == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Self) -> Self {
        if self.nanos >= other.nanos {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Self) -> Self {
        if self.nanos <= other.nanos {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            nanos: self
                .nanos
                .checked_add(rhs.nanos)
                .expect("SimDuration overflow"),
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self {
            nanos: self
                .nanos
                .checked_sub(rhs.nanos)
                .expect("SimDuration underflow"),
        }
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Mul<u32> for SimDuration {
    type Output = Self;
    fn mul(self, rhs: u32) -> Self {
        Self {
            nanos: self
                .nanos
                .checked_mul(rhs as u64)
                .expect("SimDuration overflow"),
        }
    }
}

impl Div<f64> for SimDuration {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self::from_secs_f64(self.as_secs_f64() / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.as_secs_f64() / rhs.as_secs_f64()
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 3600.0 {
            write!(f, "{:.2} h", s / 3600.0)
        } else if s >= 1.0 {
            write!(f, "{s:.3} s")
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else {
            write!(f, "{:.3} us", s * 1e6)
        }
    }
}

/// An absolute instant on the simulation clock, measured from the start of
/// the simulation.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime {
    nanos: u64,
}

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: Self = Self { nanos: 0 };

    /// The farthest representable instant.
    pub const MAX: Self = Self { nanos: u64::MAX };

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self { nanos }
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            nanos: secs * NANOS_PER_SEC,
        }
    }

    /// Creates an instant from fractional seconds since the epoch.
    pub fn from_secs_f64(secs: f64) -> Self {
        Self {
            nanos: SimDuration::from_secs_f64(secs).as_nanos(),
        }
    }

    /// Returns nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Returns fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / NANOS_PER_SEC as f64
    }

    /// Returns fractional hours since the epoch.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Duration elapsed since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.nanos <= self.nanos,
            "SimTime::since: earlier instant is in the future"
        );
        SimDuration {
            nanos: self.nanos - earlier.nanos,
        }
    }

    /// Duration elapsed since an earlier instant, or zero if `earlier` is
    /// actually later.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(earlier.nanos),
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = Self;
    fn add(self, rhs: SimDuration) -> Self {
        Self {
            nanos: self
                .nanos
                .checked_add(rhs.as_nanos())
                .expect("SimTime overflow"),
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = Self;
    fn sub(self, rhs: SimDuration) -> Self {
        Self {
            nanos: self
                .nanos
                .checked_sub(rhs.as_nanos())
                .expect("SimTime underflow"),
        }
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn fractional_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-6);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert!((t.as_secs_f64() - 10.5).abs() < 1e-9);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn since_panics_on_future() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn saturating_since_floors_at_zero() {
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10) * 0.5;
        assert_eq!(d, SimDuration::from_secs(5));
        assert_eq!(
            SimDuration::from_secs(10) / 4.0,
            SimDuration::from_millis(2500)
        );
        assert_eq!(SimDuration::from_secs(6) / SimDuration::from_secs(2), 3.0);
    }

    #[test]
    fn ordering_is_total_on_integers() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_nanos(5) > SimDuration::from_nanos(4));
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000 ms");
        assert_eq!(format!("{}", SimDuration::from_secs(7200)), "2.00 h");
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7.000 us");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=3).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }
}
