//! Lightweight metric primitives: counters, gauges and log-bucketed
//! histograms, plus a registry for telemetry export.

use core::fmt;
use std::collections::BTreeMap;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A gauge holding the latest observed value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the stored value.
    pub fn set(&mut self, v: f64) {
        self.value = v;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// A histogram with logarithmically spaced buckets.
///
/// Designed for latency-like positive quantities spanning several orders of
/// magnitude. Each decade is divided into `buckets_per_decade` geometric
/// sub-buckets; quantile estimates use the bucket upper bound, giving a
/// bounded relative error of `10^(1/buckets_per_decade) - 1`.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    min_value: f64,
    buckets_per_decade: usize,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    sum: f64,
    max_seen: f64,
}

impl LogHistogram {
    /// Creates a histogram covering `[min_value, min_value * 10^decades)`.
    ///
    /// # Panics
    ///
    /// Panics if `min_value <= 0`, `decades == 0` or `buckets_per_decade == 0`.
    pub fn new(min_value: f64, decades: usize, buckets_per_decade: usize) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(decades > 0 && buckets_per_decade > 0);
        Self {
            min_value,
            buckets_per_decade,
            counts: vec![0; decades * buckets_per_decade],
            underflow: 0,
            total: 0,
            sum: 0.0,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// A sensible default for latencies in milliseconds: 1 µs .. 1000 s.
    pub fn for_latency_ms() -> Self {
        Self::new(1e-3, 9, 20)
    }

    fn bucket_index(&self, v: f64) -> Option<usize> {
        if v < self.min_value {
            return None;
        }
        let idx = ((v / self.min_value).log10() * self.buckets_per_decade as f64).floor() as usize;
        Some(idx.min(self.counts.len() - 1))
    }

    /// Clears all recorded observations while keeping the bucket layout and
    /// its allocation, so a histogram can be recycled across runs (e.g. the
    /// SLO-bisection iterations of a serving sweep) without touching the
    /// heap.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.underflow = 0;
        self.total = 0;
        self.sum = 0.0;
        self.max_seen = f64::NEG_INFINITY;
    }

    /// Records one observation. Non-finite or negative values are counted in
    /// the underflow bucket so they remain visible without poisoning sums.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        if !v.is_finite() || v < 0.0 {
            self.underflow += 1;
            return;
        }
        self.sum += v;
        self.max_seen = self.max_seen.max(v);
        match self.bucket_index(v) {
            Some(i) => self.counts[i] += 1,
            None => self.underflow += 1,
        }
    }

    /// Total number of recorded observations (including underflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all finite, non-negative observations.
    pub fn mean(&self) -> f64 {
        let n = self.total - self.underflow;
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// Largest observation seen (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// Quantile estimate (`q` in `[0, 1]`), or `None` when empty.
    ///
    /// Underflow observations count as smaller than everything.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(0.0);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper =
                    self.min_value * 10f64.powf((i + 1) as f64 / self.buckets_per_decade as f64);
                return Some(upper.min(self.max_seen));
            }
        }
        Some(self.max_seen)
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p99={:.3} max={:.3}",
            self.count(),
            self.mean(),
            self.quantile(0.5).unwrap_or(0.0),
            self.quantile(0.99).unwrap_or(0.0),
            if self.max_seen.is_finite() {
                self.max_seen
            } else {
                0.0
            }
        )
    }
}

/// A string-keyed registry of metrics for telemetry snapshots.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        self.gauges.entry(name.to_string()).or_default()
    }

    /// Returns the histogram registered under `name`, creating a
    /// latency-shaped one ([`LogHistogram::for_latency_ms`]) on first use.
    pub fn histogram(&mut self, name: &str) -> &mut LogHistogram {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(LogHistogram::for_latency_ms)
    }

    /// Reads a histogram, if one has been registered under `name`.
    pub fn histogram_ref(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Iterates all `(name, histogram)` pairs in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Reads a counter value (zero if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// Reads a gauge value (zero if absent).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.gauges.get(name).map_or(0.0, Gauge::get)
    }

    /// Reads a gauge, if one has been registered under `name`. Unlike
    /// [`MetricRegistry::gauge_value`] this distinguishes "never set"
    /// from "set to zero", which max-tracking callers need to seed
    /// correctly from negative first samples.
    pub fn gauge_ref(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// Iterates all `(name, value)` counter pairs in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Iterates all `(name, value)` gauge pairs in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_mean_and_count() {
        let mut h = LogHistogram::for_latency_ms();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-9);
        assert_eq!(h.max(), 30.0);
    }

    #[test]
    fn histogram_quantile_bounded_error() {
        let mut h = LogHistogram::new(1.0, 6, 50);
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let rel_err = 10f64.powf(1.0 / 50.0) - 1.0;
        assert!((p50 - 500.0).abs() / 500.0 <= rel_err + 1e-6, "p50={p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 990.0).abs() / 990.0 <= rel_err + 1e-6, "p99={p99}");
    }

    #[test]
    fn histogram_handles_garbage() {
        let mut h = LogHistogram::for_latency_ms();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 5.0);
        // Underflow observations sit below everything.
        assert_eq!(h.quantile(0.1).unwrap(), 0.0);
    }

    #[test]
    fn histogram_reset_clears_counts_in_place() {
        let mut h = LogHistogram::for_latency_ms();
        for v in [1.0, 10.0, 100.0] {
            h.record(v);
        }
        h.record(f64::NAN);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        h.record(7.0);
        assert_eq!(h.count(), 1);
        assert!((h.mean() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = LogHistogram::for_latency_ms();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_clamps_overflow_to_top_bucket() {
        let mut h = LogHistogram::new(1.0, 2, 10); // covers [1, 100)
        h.record(1e9);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0).unwrap() <= 1e9);
    }

    #[test]
    fn registry_round_trip() {
        let mut r = MetricRegistry::new();
        r.counter("requests").add(3);
        r.gauge("power_w").set(42.0);
        assert_eq!(r.counter_value("requests"), 3);
        assert_eq!(r.gauge_value("power_w"), 42.0);
        assert_eq!(r.counter_value("absent"), 0);
        assert_eq!(r.counters().count(), 1);
        assert_eq!(r.gauges().count(), 1);
    }

    #[test]
    fn registry_histograms() {
        let mut r = MetricRegistry::new();
        r.histogram("mttr_ms").record(12.0);
        r.histogram("mttr_ms").record(24.0);
        let h = r.histogram_ref("mttr_ms").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.mean() - 18.0).abs() < 1e-9);
        assert!(r.histogram_ref("absent").is_none());
        assert_eq!(r.histograms().count(), 1);
    }
}
