//! Structured simulation trace: a bounded, filterable event log.
//!
//! Experiments and the orchestrator record what happened (placements,
//! migrations, power transitions) so tests and post-mortems can replay the
//! causal chain without println-debugging. The log is a ring buffer —
//! long simulations keep the most recent window.
//!
//! This module keeps free-form, formatted string messages for ad-hoc
//! experiment logging. Hot-path instrumentation (orchestrator, recovery
//! engine, network simulator) uses the typed, allocation-free
//! [`crate::span`] event log instead — prefer that for anything a test
//! needs to assert on.

use core::fmt;

use crate::time::SimTime;

/// Severity of a trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Fine-grained progress.
    Debug,
    /// Normal state changes.
    Info,
    /// Something degraded (rejection, migration).
    Warn,
    /// Something failed (fault, drop).
    Error,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        };
        write!(f, "{s}")
    }
}

/// One trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// When it happened.
    pub at: SimTime,
    /// Severity.
    pub level: Level,
    /// Subsystem tag ("orchestrator", "bmc", "net", …).
    pub scope: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6}s] {:>5} {}: {}",
            self.at.as_secs_f64(),
            self.level,
            self.scope,
            self.message
        )
    }
}

/// A bounded trace log.
#[derive(Debug, Clone)]
pub struct Trace {
    entries: std::collections::VecDeque<Entry>,
    capacity: usize,
    min_level: Level,
    dropped: u64,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` entries at or above
    /// `min_level`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, min_level: Level) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            entries: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            min_level,
            dropped: 0,
        }
    }

    /// A 4,096-entry Info-level trace.
    pub fn default_info() -> Self {
        Self::new(4096, Level::Info)
    }

    /// Records an entry (filtered by level; oldest entries evicted first).
    pub fn record(
        &mut self,
        at: SimTime,
        level: Level,
        scope: &'static str,
        message: impl Into<String>,
    ) {
        if level < self.min_level {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(Entry {
            at,
            level,
            scope,
            message: message.into(),
        });
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained entries oldest-first.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// Retained entries in a scope.
    pub fn in_scope<'a>(&'a self, scope: &'a str) -> impl Iterator<Item = &'a Entry> {
        self.entries.iter().filter(move |e| e.scope == scope)
    }

    /// Retained entries at or above a level.
    pub fn at_least(&self, level: Level) -> impl Iterator<Item = &Entry> {
        self.entries.iter().filter(move |e| e.level >= level)
    }

    /// Renders the retained log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_in_order_and_filters_level() {
        let mut tr = Trace::new(10, Level::Info);
        tr.record(t(1), Level::Debug, "x", "ignored");
        tr.record(t(2), Level::Info, "x", "kept");
        tr.record(t(3), Level::Error, "y", "bad");
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.at_least(Level::Error).count(), 1);
        assert_eq!(tr.in_scope("x").count(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut tr = Trace::new(3, Level::Debug);
        for i in 0..5 {
            tr.record(t(i), Level::Info, "s", format!("m{i}"));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let first = tr.entries().next().unwrap();
        assert_eq!(first.message, "m2");
    }

    #[test]
    fn render_contains_timestamps() {
        let mut tr = Trace::default_info();
        tr.record(t(7), Level::Warn, "net", "link down");
        let s = tr.render();
        assert!(s.contains("7.000000s"));
        assert!(s.contains("WARN"));
        assert!(s.contains("link down"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Trace::new(0, Level::Debug);
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Error > Level::Warn);
        assert!(Level::Warn > Level::Info);
        assert!(Level::Info > Level::Debug);
    }
}
