//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] orders events by `(time, sequence)` where the sequence
//! number is assigned at scheduling time, so two events scheduled for the
//! same instant always pop in the order they were scheduled. This makes
//! simulations bit-for-bit reproducible regardless of heap internals.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A handle that identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use socc_sim::event::EventQueue;
/// use socc_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "early"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    /// Sequence numbers currently pending (scheduled, not yet delivered or
    /// cancelled). `len()` is exactly `live.len()` — no arithmetic on the
    /// heap/cancelled sizes, which can disagree when a fired event id is
    /// cancelled.
    live: std::collections::HashSet<u64>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            live: std::collections::HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the last popped event,
    /// or zero if nothing has been popped yet.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error in the caller.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`now`](Self::now).
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule an event in the past ({time} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
        self.live.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. this call actually removed it from future delivery).
    /// Cancelling an event that already fired (or was already cancelled) is a
    /// no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id.0) {
            // Lazy deletion: mark now, skip at pop time.
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.live.remove(&ev.seq);
            debug_assert!(ev.time >= self.now, "event queue time went backwards");
            self.now = ev.time;
            return Some((ev.time, ev.payload));
        }
        None
    }

    /// Pops *every* event sharing the earliest pending timestamp into `out`
    /// (in schedule order), advancing the clock to that timestamp. Returns
    /// the batch timestamp, or `None` if the queue is empty. `out` is
    /// cleared first, so a caller-owned buffer can be reused across events
    /// without allocating.
    pub fn pop_batch_into(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        out.clear();
        let (t, first) = self.pop()?;
        out.push(first);
        while self.peek_time() == Some(t) {
            let (_, e) = self.pop().expect("peeked event exists");
            out.push(e);
        }
        Some(t)
    }

    /// Returns the timestamp of the earliest pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.heap.peek() {
            if self.cancelled.contains(&ev.seq) {
                let seq = ev.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(ev.time);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(4), ());
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_twice_returns_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn cancel_after_fire_keeps_len_exact() {
        // Regression: cancelling an already-fired id used to land in the
        // cancelled set, making `heap.len() - cancelled.len()` wrap.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(a), "event already fired");
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_groups_same_instant_events() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        q.schedule(t2, 10);
        q.schedule(t1, 1);
        let cancelled = q.schedule(t1, 2);
        q.schedule(t1, 3);
        q.cancel(cancelled);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch_into(&mut batch), Some(t1));
        assert_eq!(batch, vec![1, 3]);
        assert_eq!(q.now(), t1);
        assert_eq!(q.pop_batch_into(&mut batch), Some(t2));
        assert_eq!(batch, vec![10], "buffer cleared between batches");
        assert_eq!(q.pop_batch_into(&mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDuration::from_secs(1), 2);
        q.schedule(t + SimDuration::from_secs(2), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
