//! Physical unit newtypes used throughout the workspace.
//!
//! All experiment code manipulates power, energy, data sizes and data rates.
//! Newtypes keep the dimensional analysis honest: multiplying [`Power`] by a
//! [`SimDuration`] yields [`Energy`], dividing a
//! [`DataSize`] by a [`DataRate`] yields a duration, and so on. Every type is
//! a thin wrapper over `f64` (or `u64` for time) and is `Copy`.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::time::SimDuration;

macro_rules! scalar_unit {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero value.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new value from the raw magnitude in base units.
            pub const fn new(v: f64) -> Self {
                Self(v)
            }

            /// Returns the raw magnitude in base units.
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the maximum of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the minimum of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps to the `[lo, hi]` interval.
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the magnitude is finite (not NaN/inf).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

scalar_unit!(
    /// Electrical power in watts.
    Power,
    "W"
);

scalar_unit!(
    /// Energy in joules.
    Energy,
    "J"
);

scalar_unit!(
    /// Data size in bits.
    ///
    /// Bits (not bytes) are the base unit because link capacities and video
    /// bitrates — the dominant uses in this workspace — are naturally
    /// expressed in bits per second.
    DataSize,
    "bit"
);

scalar_unit!(
    /// Data rate in bits per second.
    DataRate,
    "bit/s"
);

scalar_unit!(
    /// Clock frequency in hertz.
    Frequency,
    "Hz"
);

impl Power {
    /// Creates a power value from watts.
    pub const fn watts(w: f64) -> Self {
        Self::new(w)
    }

    /// Creates a power value from milliwatts.
    pub fn milliwatts(mw: f64) -> Self {
        Self::new(mw / 1e3)
    }

    /// Returns the magnitude in watts.
    pub const fn as_watts(self) -> f64 {
        self.get()
    }

    /// Returns the magnitude in kilowatts.
    pub fn as_kilowatts(self) -> f64 {
        self.get() / 1e3
    }
}

impl Energy {
    /// Creates an energy value from joules.
    pub const fn joules(j: f64) -> Self {
        Self::new(j)
    }

    /// Creates an energy value from kilowatt-hours.
    pub fn kilowatt_hours(kwh: f64) -> Self {
        Self::new(kwh * 3.6e6)
    }

    /// Returns the magnitude in joules.
    pub const fn as_joules(self) -> f64 {
        self.get()
    }

    /// Returns the magnitude in kilowatt-hours.
    pub fn as_kilowatt_hours(self) -> f64 {
        self.get() / 3.6e6
    }
}

impl DataSize {
    /// Creates a size from bits.
    pub const fn bits(b: f64) -> Self {
        Self::new(b)
    }

    /// Creates a size from bytes.
    pub fn bytes(b: f64) -> Self {
        Self::new(b * 8.0)
    }

    /// Creates a size from kilobytes (10^3 bytes).
    pub fn kilobytes(kb: f64) -> Self {
        Self::bytes(kb * 1e3)
    }

    /// Creates a size from megabytes (10^6 bytes).
    pub fn megabytes(mb: f64) -> Self {
        Self::bytes(mb * 1e6)
    }

    /// Creates a size from megabits.
    pub fn megabits(mb: f64) -> Self {
        Self::new(mb * 1e6)
    }

    /// Returns the magnitude in bits.
    pub const fn as_bits(self) -> f64 {
        self.get()
    }

    /// Returns the magnitude in bytes.
    pub fn as_bytes(self) -> f64 {
        self.get() / 8.0
    }

    /// Returns the magnitude in megabytes.
    pub fn as_megabytes(self) -> f64 {
        self.as_bytes() / 1e6
    }
}

impl DataRate {
    /// Creates a rate from bits per second.
    pub const fn bps(v: f64) -> Self {
        Self::new(v)
    }

    /// Creates a rate from kilobits per second.
    pub fn kbps(v: f64) -> Self {
        Self::new(v * 1e3)
    }

    /// Creates a rate from megabits per second.
    pub fn mbps(v: f64) -> Self {
        Self::new(v * 1e6)
    }

    /// Creates a rate from gigabits per second.
    pub fn gbps(v: f64) -> Self {
        Self::new(v * 1e9)
    }

    /// Returns the magnitude in bits per second.
    pub const fn as_bps(self) -> f64 {
        self.get()
    }

    /// Returns the magnitude in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.get() / 1e6
    }

    /// Returns the magnitude in gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.get() / 1e9
    }
}

impl Frequency {
    /// Creates a frequency from hertz.
    pub const fn hz(v: f64) -> Self {
        Self::new(v)
    }

    /// Creates a frequency from megahertz.
    pub fn mhz(v: f64) -> Self {
        Self::new(v * 1e6)
    }

    /// Creates a frequency from gigahertz.
    pub fn ghz(v: f64) -> Self {
        Self::new(v * 1e9)
    }

    /// Returns the magnitude in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.get() / 1e9
    }
}

impl Mul<SimDuration> for Power {
    type Output = Energy;
    /// Power sustained over a duration accumulates energy.
    fn mul(self, rhs: SimDuration) -> Energy {
        Energy::joules(self.as_watts() * rhs.as_secs_f64())
    }
}

impl Mul<Power> for SimDuration {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl Div<SimDuration> for Energy {
    type Output = Power;
    /// Average power over an interval.
    fn div(self, rhs: SimDuration) -> Power {
        Power::watts(self.as_joules() / rhs.as_secs_f64())
    }
}

impl Mul<SimDuration> for DataRate {
    type Output = DataSize;
    /// Data transferred at a constant rate over a duration.
    fn mul(self, rhs: SimDuration) -> DataSize {
        DataSize::bits(self.as_bps() * rhs.as_secs_f64())
    }
}

impl Div<DataRate> for DataSize {
    type Output = SimDuration;
    /// Time to move `self` at rate `rhs`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the resulting duration is negative or NaN.
    fn div(self, rhs: DataRate) -> SimDuration {
        SimDuration::from_secs_f64(self.as_bits() / rhs.as_bps())
    }
}

impl Div<SimDuration> for DataSize {
    type Output = DataRate;
    /// Average rate needed to move `self` within a duration.
    fn div(self, rhs: SimDuration) -> DataRate {
        DataRate::bps(self.as_bits() / rhs.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn power_times_duration_is_energy() {
        let e = Power::watts(10.0) * SimDuration::from_secs(30);
        assert_eq!(e.as_joules(), 300.0);
    }

    #[test]
    fn energy_kwh_roundtrip() {
        let e = Energy::kilowatt_hours(1.5);
        assert!((e.as_kilowatt_hours() - 1.5).abs() < 1e-12);
        assert_eq!(e.as_joules(), 1.5 * 3.6e6);
    }

    #[test]
    fn datasize_over_rate_is_duration() {
        let d = DataSize::megabits(100.0) / DataRate::mbps(50.0);
        assert!((d.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rate_times_duration_is_size() {
        let s = DataRate::gbps(1.0) * SimDuration::from_millis(500);
        assert!((s.as_bits() - 5e8).abs() < 1.0);
    }

    #[test]
    fn like_ratio_is_dimensionless() {
        assert_eq!(Power::watts(10.0) / Power::watts(2.5), 4.0);
    }

    #[test]
    fn bytes_bits_conversions() {
        assert_eq!(DataSize::bytes(2.0).as_bits(), 16.0);
        assert_eq!(DataSize::megabytes(1.0).as_bytes(), 1e6);
    }

    #[test]
    fn ordering_and_clamp() {
        let p = Power::watts(5.0).clamp(Power::watts(1.0), Power::watts(4.0));
        assert_eq!(p.as_watts(), 4.0);
        assert!(Power::watts(1.0) < Power::watts(2.0));
    }

    #[test]
    fn sum_iterates() {
        let total: Power = (1..=4).map(|i| Power::watts(i as f64)).sum();
        assert_eq!(total.as_watts(), 10.0);
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.2}", Power::watts(1.2345)), "1.23 W");
        assert_eq!(format!("{:.1}", DataRate::mbps(1.0)), "1000000.0 bit/s");
    }

    #[test]
    fn average_power_from_energy() {
        let p = Energy::joules(600.0) / SimDuration::from_secs(60);
        assert_eq!(p.as_watts(), 10.0);
    }
}
