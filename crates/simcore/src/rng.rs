//! Deterministic random-number generation for simulations.
//!
//! All stochastic components draw from a [`SimRng`], a seedable generator
//! with support for *stream splitting*: deriving an independent child
//! generator for a named subsystem so that adding randomness to one module
//! does not perturb the draw sequence of another.

use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic, splittable random-number generator.
///
/// # Examples
///
/// ```
/// use socc_sim::rng::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_f64(), b.next_f64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator for the subsystem `label`.
    ///
    /// The child's stream depends on the parent seed state and the label but
    /// consuming it does not advance the parent, and two children with
    /// different labels are (statistically) independent.
    pub fn split(&self, label: &str) -> Self {
        // FNV-1a over the label mixed with a draw-free peek of parent state:
        // clone the parent so splitting does not advance it.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut parent = self.inner.clone();
        let base: u64 = parent.gen();
        Self {
            inner: SmallRng::seed_from_u64(base ^ h),
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.gen_range(lo..hi)
    }

    /// Exponential draw with the given rate (events per unit time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -u.ln() / rate
    }

    /// Standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with mean `mu` and standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.standard_normal()
    }

    /// Log-normal draw parameterized by the mean and sigma of the underlying
    /// normal distribution.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Poisson draw with mean `lambda` (Knuth's method for small lambda,
    /// normal approximation above 30).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson mean must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let v = self.normal(lambda, lambda.sqrt()).round();
            return v.max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.uniform_usize(0, slice.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples from any `rand` distribution.
    pub fn sample<T, D: Distribution<T>>(&mut self, dist: &D) -> T {
        dist.sample(&mut self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_f64(), b.next_f64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_f64() == b.next_f64()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_does_not_advance_parent() {
        let parent = SimRng::seed(99);
        let mut p1 = parent.clone();
        let _child = parent.split("net");
        let mut p2 = parent.clone();
        assert_eq!(p1.next_f64(), p2.next_f64());
    }

    #[test]
    fn split_streams_are_label_dependent() {
        let parent = SimRng::seed(5);
        let mut a = parent.split("alpha");
        let mut b = parent.split("beta");
        assert_ne!(a.next_f64(), b.next_f64());
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::seed(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::seed(12);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.08, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_mean_close_small_and_large() {
        let mut r = SimRng::seed(13);
        for lambda in [0.5, 4.0, 80.0] {
            let n = 10_000;
            let mean: f64 = (0..n).map(|_| r.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.08,
                "lambda {lambda} mean {mean}"
            );
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed(14);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SimRng::seed(15);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(16);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
