//! Descriptive statistics helpers shared by experiments and reports.

/// Running mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use socc_sim::stats::Running;
///
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (zero for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Linear interpolation percentile of an unsorted slice; `q` in `[0, 1]`.
///
/// Returns `None` for an empty slice or a non-finite `q`. Copies the input;
/// use [`percentile_mut`] to avoid the allocation when the slice may be
/// reordered in place.
///
/// # Panics
///
/// Panics if any value is NaN.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !q.is_finite() {
        return None;
    }
    let mut scratch: Vec<f64> = values.to_vec();
    percentile_mut(&mut scratch, q)
}

/// [`percentile`] without the defensive copy: selects the needed order
/// statistics in place (O(n) expected, via `select_nth_unstable_by`) and may
/// reorder `values` arbitrarily.
///
/// # Panics
///
/// Panics if any value is NaN.
pub fn percentile_mut(values: &mut [f64], q: f64) -> Option<f64> {
    if values.is_empty() || !q.is_finite() {
        return None;
    }
    // Selection may not compare every element, so check the NaN contract
    // up front (full sort used to catch it via partial_cmp).
    assert!(
        values.iter().all(|v| !v.is_nan()),
        "NaN in percentile input"
    );
    let q = q.clamp(0.0, 1.0);
    let pos = q * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let frac = pos - lo as f64;
    let (_, &mut lo_v, rest) = values.select_nth_unstable_by(lo, |a, b| {
        a.partial_cmp(b).expect("NaN in percentile input")
    });
    if frac == 0.0 {
        return Some(lo_v);
    }
    // hi == lo + 1: the smallest element of the right partition.
    let hi_v = rest.iter().copied().fold(f64::INFINITY, f64::min);
    Some(lo_v * (1.0 - frac) + hi_v * frac)
}

/// Geometric mean of strictly positive values.
///
/// Returns `None` when empty or when any value is non-positive.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; zero when empty.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Coefficient of determination (R²) of `predicted` against `observed`.
///
/// Returns `None` if the slices differ in length, are empty, or the observed
/// values have zero variance.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> Option<f64> {
    if observed.len() != predicted.len() || observed.is_empty() {
        return None;
    }
    let obs_mean = mean(observed);
    let ss_tot: f64 = observed.iter().map(|o| (o - obs_mean).powi(2)).sum();
    if ss_tot == 0.0 {
        return None;
    }
    let ss_res: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(o, p)| (o - p).powi(2))
        .sum();
    Some(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut r = Running::new();
        xs.iter().for_each(|&x| r.push(x));
        assert_eq!(r.mean(), 5.0);
        assert!((r.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert_eq!(r.count(), 8);
    }

    #[test]
    fn empty_running_is_safe() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile_mut(&mut [], 0.5), None);
    }

    #[test]
    fn percentile_mut_matches_sorting_path() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0, 2.5, -1.0, 9.5];
        for q in [0.0, 0.1, 0.25, 0.5, 0.77, 0.9, 0.99, 1.0] {
            let mut scratch = xs;
            let expected = {
                let mut sorted = xs;
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let pos = q * (sorted.len() - 1) as f64;
                let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
                let frac = pos - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            };
            let got = percentile_mut(&mut scratch, q).unwrap();
            assert!((got - expected).abs() < 1e-12, "q={q}: {got} vs {expected}");
        }
    }

    #[test]
    #[should_panic(expected = "NaN in percentile input")]
    fn percentile_still_panics_on_nan() {
        percentile(&[1.0, f64::NAN, 2.0], 0.5);
    }

    #[test]
    fn geomean_basic() {
        let g = geomean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn r_squared_perfect_fit() {
        let obs = [1.0, 2.0, 3.0];
        assert!((r_squared(&obs, &obs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_degenerate() {
        assert_eq!(r_squared(&[1.0, 1.0], &[1.0, 2.0]), None);
        assert_eq!(r_squared(&[1.0], &[1.0, 2.0]), None);
    }
}
