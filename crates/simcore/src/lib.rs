//! `socc-sim` — discrete-event simulation core for the SoC Cluster workspace.
//!
//! This crate provides the foundation every other `socc-*` crate builds on:
//!
//! - [`time`]: nanosecond-resolution [`SimTime`] /
//!   [`SimDuration`];
//! - [`event`]: a deterministic [`EventQueue`] with
//!   stable tie-breaking;
//! - [`rng`]: seedable, splittable randomness ([`SimRng`]);
//! - [`units`]: dimensional newtypes ([`Power`],
//!   [`Energy`], [`DataRate`], …);
//! - [`metrics`] / [`series`] / [`stats`]: telemetry primitives, time-series
//!   integration (energy accounting) and descriptive statistics;
//! - [`span`]: typed structured events and spans with bounded memory,
//!   scope filtering and JSONL / Chrome-trace exporters;
//! - [`report`]: aligned text tables for the reproduction harness.
//!
//! # Examples
//!
//! Energy accounting with a power meter:
//!
//! ```
//! use socc_sim::series::EnergyMeter;
//! use socc_sim::time::SimTime;
//! use socc_sim::units::Power;
//!
//! let mut meter = EnergyMeter::new(SimTime::ZERO, Power::watts(5.0));
//! meter.set_power(SimTime::from_secs(60), Power::watts(10.0));
//! let e = meter.energy_at(SimTime::from_secs(120));
//! assert_eq!(e.as_joules(), 5.0 * 60.0 + 10.0 * 60.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod report;
pub mod rng;
pub mod series;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;

pub use event::EventQueue;
pub use rng::SimRng;
pub use span::{Event, EventKind, EventLog, Scope, SpanId};
pub use time::{SimDuration, SimTime};
pub use units::{DataRate, DataSize, Energy, Frequency, Power};
