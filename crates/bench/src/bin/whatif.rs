//! Extension-study driver: the §8 what-ifs and operational analyses.
//!
//! Usage: `whatif <id>...` or `whatif all`. Ids: generations, fabric,
//! partitioning, tail, consolidation, sensitivity, gaming, dvfs.

use socc_bench::extensions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        extensions::ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match extensions::run(id) {
            Some(out) => {
                println!("################ {id} ################");
                println!("{out}");
            }
            None => {
                eprintln!("unknown study id: {id} (known: {:?})", extensions::ALL_IDS);
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
