//! Dense-series generator: fine-grained figure data as CSV on stdout.
//!
//! Usage:
//!   sweep fig12 \[points\] \[max_fps\]   — cluster vs A100 efficiency curve
//!   sweep gaming \[seeds\]             — sleep-savings ensemble across seeds
//!   sweep fig7 `<video-id>`          — per-stream TpE series to capacity

use socc_bench::sweep::{dense_fig12, gaming_ensemble};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    match args.first().map(String::as_str) {
        Some("fig12") => {
            let points = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
            let max_fps = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1800.0);
            println!("offered_fps,cluster_samples_per_joule,a100_samples_per_joule");
            for (load, cluster, a100) in dense_fig12(points, max_fps, workers) {
                println!("{load:.1},{cluster:.4},{a100:.4}");
            }
        }
        Some("gaming") => {
            let seeds = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16u64);
            println!("seed,sleep_savings");
            for (seed, savings) in gaming_ensemble(0..seeds, workers).iter().enumerate() {
                println!("{seed},{savings:.4}");
            }
        }
        Some("fig7") => {
            let id = args.get(1).map(String::as_str).unwrap_or("V4");
            let Some(video) = socc_video::vbench::by_id(id) else {
                eprintln!("unknown video id {id} (V1..V6)");
                std::process::exit(2);
            };
            println!("streams,soc_cpu_tpe,intel_tpe,a40_tpe");
            for p in socc_cluster::experiments::fig7_sweep(&video, 60) {
                println!("{},{:.4},{:.4},{:.4}", p.streams, p.soc_cpu, p.intel, p.a40);
            }
        }
        _ => {
            eprintln!("usage: sweep <fig12 [points] [max_fps] | gaming [seeds] | fig7 <video-id>>");
            std::process::exit(2);
        }
    }
}
