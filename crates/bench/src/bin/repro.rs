//! Reproduction driver: prints the paper's tables and figures.
//!
//! Usage: `repro <id>...` or `repro all`. Ids: fig1, tab1, tab2, fig5,
//! tab3, fig6..fig14, tab4..tab7.

use socc_bench::repro;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        repro::ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match repro::run(id) {
            Some(out) => {
                println!("################ {id} ################");
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment id: {id} (known: {:?})", repro::ALL_IDS);
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
