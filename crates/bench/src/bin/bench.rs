//! Perf-harness entry point.
//!
//! `bench --perf` runs the deterministic network-churn microbenchmark
//! twice — incremental allocator vs forced full recomputation — under a
//! counting global allocator, and writes the comparison as
//! `BENCH_net.json`:
//!
//! ```text
//! cargo run --release -p socc-bench --bin bench -- --perf \
//!     --flows 2000 --events 1000 --out BENCH_net.json
//! ```
//!
//! `--check BASELINE.json` additionally compares against a committed
//! baseline and exits non-zero if events/sec regressed by more than 30%,
//! if the incremental path stopped being ≥5× cheaper in waterfilling
//! work, or if the hot path allocated during the measured phase.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

use socc_bench::perf::{churn, comparison_json, PerfOptions};

/// Counts every heap allocation; the perf harness samples it around the
/// measured phase to prove the hot path is allocation-free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the only addition is a relaxed
// counter increment, which cannot violate the allocator contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

struct Args {
    perf: bool,
    flows: usize,
    events: usize,
    seed: u64,
    out: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        perf: false,
        flows: 2000,
        events: 1000,
        seed: 42,
        out: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--perf" => args.perf = true,
            "--flows" => {
                args.flows = value("--flows")?
                    .parse()
                    .map_err(|e| format!("--flows: {e}"))?
            }
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Pulls `"key": <number>` out of the JSON `section` object of `doc`.
/// Good enough for the harness's own output format; the workspace carries
/// no JSON parser by design.
fn extract(doc: &str, section: &str, key: &str) -> Option<f64> {
    let start = doc.find(&format!("\"{section}\""))?;
    let tail = &doc[start..];
    let kpos = tail.find(&format!("\"{key}\""))?;
    let after = &tail[kpos..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_perf(args: &Args) -> Result<(), String> {
    let incremental = churn(
        &PerfOptions {
            flows: args.flows,
            churn_events: args.events,
            seed: args.seed,
            force_full: false,
        },
        &alloc_count,
    );
    let full = churn(
        &PerfOptions {
            flows: args.flows,
            churn_events: args.events,
            seed: args.seed,
            force_full: true,
        },
        &alloc_count,
    );
    let doc = comparison_json(&incremental, &full);
    print!("{doc}");
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let base_eps = extract(&baseline, "incremental", "events_per_sec")
            .ok_or("baseline missing incremental events_per_sec")?;
        let ratio = extract(&doc, "net_churn", "waterfill_touch_ratio")
            .ok_or("run missing waterfill_touch_ratio")?;

        let mut failures = Vec::new();
        if incremental.events_per_sec < 0.7 * base_eps {
            failures.push(format!(
                "events/sec regressed >30%: {:.0} vs baseline {:.0}",
                incremental.events_per_sec, base_eps
            ));
        }
        if ratio < 5.0 {
            failures.push(format!(
                "incremental waterfilling no longer ≥5× cheaper (ratio {ratio:.2})"
            ));
        }
        if incremental.steady_state_allocs != 0 {
            failures.push(format!(
                "hot path allocated {} times during the measured phase",
                incremental.steady_state_allocs
            ));
        }
        if incremental.final_drift_bps > 1.0 {
            failures.push(format!(
                "incremental allocation drifted {} bps from the reference",
                incremental.final_drift_bps
            ));
        }
        if !failures.is_empty() {
            return Err(failures.join("; "));
        }
        eprintln!(
            "perf check ok: {:.0} events/sec (baseline {:.0}), {ratio:.1}x waterfill ratio, 0 hot-path allocs",
            incremental.events_per_sec, base_eps
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.perf {
        eprintln!("usage: bench --perf [--flows N] [--events N] [--seed N] [--out FILE] [--check BASELINE]");
        return ExitCode::FAILURE;
    }
    match run_perf(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
