//! Perf-harness entry point.
//!
//! `bench --perf` runs the deterministic network-churn microbenchmark
//! twice — incremental allocator vs forced full recomputation — under a
//! counting global allocator, and writes the comparison as
//! `BENCH_net.json`:
//!
//! ```text
//! cargo run --release -p socc-bench --bin bench -- --perf \
//!     --flows 2000 --events 1000 --out BENCH_net.json
//! ```
//!
//! `bench --serve` does the same for the DL-serving hot path: the
//! fig. 11/12 load grid plus per-combo SLO-rate searches, run once on the
//! analytic M/D/1 fast path and once on the pure event simulation, written
//! as `BENCH_serve.json`:
//!
//! ```text
//! cargo run --release -p socc-bench --bin bench -- --serve \
//!     --points 40 --out BENCH_serve.json
//! ```
//!
//! `bench --chaos` runs seeded chaos campaigns over the fault-tolerant
//! orchestration loop — correlated failure-domain schedules paired with
//! independent twins at equal per-SoC death AFR — checking the ledger,
//! placement-index, and no-lost-critical invariants after every step, and
//! writes `BENCH_chaos.json`. `--step K` replays one campaign pair and
//! prints its byte-identical outcome:
//!
//! ```text
//! cargo run --release -p socc-bench --bin bench -- --chaos \
//!     --campaigns 256 --seed 42 --out BENCH_chaos.json
//! cargo run --release -p socc-bench --bin bench -- --chaos --seed 42 --step 17
//! ```
//!
//! `bench --trace` measures what structured spans cost: a recording
//! microbenchmark under the counting allocator (both the enabled and the
//! disabled path must be allocation-free) plus the fault-loop end-to-end
//! scenario run spans-on vs spans-off, written as `BENCH_trace.json`.
//! `--chrome FILE` additionally exports the spans-on event log in Chrome
//! `trace_event` format for `about:tracing` / Perfetto:
//!
//! ```text
//! cargo run --release -p socc-bench --bin bench -- --trace \
//!     --out BENCH_trace.json --chrome trace.json
//! ```
//!
//! `bench --netval` cross-validates the packet-level fabric engine
//! against the max-min flow model: a sweep of randomized
//! topology × flow-set × churn scenarios run through both engines (each
//! survivor's packet-measured goodput must match the flow model's
//! prediction within the agreement tolerance), plus the goodput
//! calibration (the packet-derived factor must reproduce the paper's
//! ~903 Mbps anchor) and the incast pacing experiment (the unpaced
//! N-to-1 burst must drop; the paced storm must not, at bounded
//! completion inflation). Written as `BENCH_netval.json`:
//!
//! ```text
//! cargo run --release -p socc-bench --bin bench -- --netval \
//!     --cases 200 --seed 42 --out BENCH_netval.json
//! ```
//!
//! `bench --fleet` runs the 256-site fleet-day: every site replays its
//! phase-shifted Fig. 5 gaming trace under the sharded fleet simulator,
//! once per worker-thread count (1, 2, 8) on the work-stealing pool. The
//! result digest must be bit-identical across worker counts, and the
//! artifact records wall-clock and critical-path-modeled speedups plus
//! the barrier loop's allocation discipline, written as
//! `BENCH_fleet.json`:
//!
//! ```text
//! cargo run --release -p socc-bench --bin bench -- --fleet \
//!     --sites 256 --hours 24 --window 120 --out BENCH_fleet.json
//! ```
//!
//! `bench --fleetchaos` runs seeded fleet-level chaos campaigns over the
//! sharded fleet simulator: correlated site-tier schedules (a regional
//! WAN partition storm plus a concurrent full-site blackout and a rail
//! brownout) paired with independent twins at equal fault volume, with
//! live inter-site migration re-placing every displaced session. Session
//! accounting, dark-site power floors, per-site energy conservation and
//! digest determinism across worker counts are checked on every run, and
//! the result is written as `BENCH_fleetchaos.json`. `--step K` replays
//! one campaign pair and prints its byte-identical outcome:
//!
//! ```text
//! cargo run --release -p socc-bench --bin bench -- --fleetchaos \
//!     --campaigns 64 --seed 42 --out BENCH_fleetchaos.json
//! cargo run --release -p socc-bench --bin bench -- --fleetchaos --seed 42 --step 17
//! ```
//!
//! `bench --video` runs the production-scale live-transcoding farm day —
//! thousands of diurnal sessions with ABR churn and a board-down fault at
//! the 21:00 peak — once on the analytic steady-state fast path and once
//! as tick-level simulation over the identical schedule, cross-checks the
//! two (bit-identical placements, float-tolerance integrals), and writes
//! `BENCH_video.json` with per-session energy from the component ledger:
//!
//! ```text
//! cargo run --release -p socc-bench --bin bench -- --video \
//!     --hours 24 --peak 500 --out BENCH_video.json
//! ```
//!
//! `--check BASELINE.json` additionally compares against a committed
//! baseline and exits non-zero on regression: for `--perf`, if events/sec
//! dropped by more than 30%, the incremental path stopped being ≥5×
//! cheaper in waterfilling work, or the hot path allocated during the
//! measured phase; for `--serve`, if analytic points/sec dropped by more
//! than 30%, the analytic path stopped being ≥5× faster than simulation,
//! the analytic measured phase allocated, or the analytic-vs-simulation
//! p99 drift left its documented tolerance; for `--chaos`, if any
//! invariant was violated, correlated availability stopped sitting below
//! independent, or a per-class MTTR p50 regressed by more than 30%; for
//! `--trace`, if the spans-on overhead exceeds 10%, either recording path
//! allocated, or the captured event count/digest drifted from the
//! baseline; for `--netval`, if the calibrated goodput factor moved from
//! the baseline's or the worst agreement error grew by more than 2
//! points; for `--fleet`, if the digest drifted from a same-config
//! baseline or single-thread windows/sec dropped by more than 30%
//! (digest mismatch across worker counts, a modeled 8-worker speedup
//! below 4×, and a leaky coordination loop fail even without a
//! baseline); for `--fleetchaos`, if any invariant was violated, a
//! digest differed across worker counts, correlated availability stopped
//! sitting below independent, the live-migration rate fell under 90%, or
//! the sweep digest drifted from a same-config baseline; for `--video`,
//! if the analytic fast path stopped being ≥5×
//! faster than simulation, a quiet span allocated, the two modes
//! disagreed, the full-day fault struck fewer than 1000 live sessions, or
//! the farm digest / per-session energy drifted from a same-config
//! baseline.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

use socc_bench::chaos::{replay, report_json, run_chaos, ChaosOptions};
use socc_bench::fleet::{
    run_fleet_bench, FleetBenchOptions, MAX_COORD_ALLOCS_PER_WINDOW, MIN_SPEEDUP_8W,
};
use socc_bench::fleetchaos::{run_fleet_chaos, FleetChaosOptions, MIN_LIVE_MIGRATION_RATE};
use socc_bench::harness::extract_num as extract;
use socc_bench::netvalidate::{
    run_netval, NetvalOptions, AGREEMENT_TOLERANCE, CALIBRATION_TOLERANCE, MAX_PACING_INFLATION,
};
use socc_bench::perf::{churn, comparison_json, PerfOptions};
use socc_bench::serve::{serving, ServeOptions, P99_DRIFT_TOLERANCE};
use socc_bench::tracebench::{trace_overhead, TraceOptions, MAX_OVERHEAD_PCT};
use socc_bench::video::{run_video, VideoOptions, MIN_LIVE_AT_FAULT, MIN_SPEEDUP};

/// Counts every heap allocation; the perf harness samples it around the
/// measured phase to prove the hot path is allocation-free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the only addition is a relaxed
// counter increment, which cannot violate the allocator contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

struct Args {
    perf: bool,
    serve: bool,
    chaos: bool,
    trace: bool,
    netval: bool,
    fleet: bool,
    fleetchaos: bool,
    video: bool,
    sites: usize,
    socs: usize,
    peak: f64,
    hours: u64,
    window: u64,
    cases: usize,
    flows: usize,
    events: usize,
    points: usize,
    campaigns: usize,
    reps: usize,
    step: Option<usize>,
    seed: u64,
    out: Option<String>,
    check: Option<String>,
    chrome: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        perf: false,
        serve: false,
        chaos: false,
        trace: false,
        netval: false,
        fleet: false,
        fleetchaos: false,
        video: false,
        sites: 256,
        socs: socc_hw::calib::CLUSTER_SOC_COUNT,
        peak: 500.0,
        hours: 24,
        window: 120,
        cases: 200,
        flows: 2000,
        events: 1000,
        points: 40,
        campaigns: 256,
        reps: 9,
        step: None,
        seed: 42,
        out: None,
        check: None,
        chrome: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--perf" => args.perf = true,
            "--serve" => args.serve = true,
            "--chaos" => args.chaos = true,
            "--trace" => args.trace = true,
            "--netval" => args.netval = true,
            "--fleet" => args.fleet = true,
            "--fleetchaos" => args.fleetchaos = true,
            "--video" => args.video = true,
            "--socs" => {
                args.socs = value("--socs")?
                    .parse()
                    .map_err(|e| format!("--socs: {e}"))?
            }
            "--peak" => {
                args.peak = value("--peak")?
                    .parse()
                    .map_err(|e| format!("--peak: {e}"))?
            }
            "--sites" => {
                args.sites = value("--sites")?
                    .parse()
                    .map_err(|e| format!("--sites: {e}"))?
            }
            "--hours" => {
                args.hours = value("--hours")?
                    .parse()
                    .map_err(|e| format!("--hours: {e}"))?
            }
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?
            }
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--chrome" => args.chrome = Some(value("--chrome")?),
            "--campaigns" => {
                args.campaigns = value("--campaigns")?
                    .parse()
                    .map_err(|e| format!("--campaigns: {e}"))?
            }
            "--step" => {
                args.step = Some(
                    value("--step")?
                        .parse()
                        .map_err(|e| format!("--step: {e}"))?,
                )
            }
            "--points" => {
                args.points = value("--points")?
                    .parse()
                    .map_err(|e| format!("--points: {e}"))?
            }
            "--flows" => {
                args.flows = value("--flows")?
                    .parse()
                    .map_err(|e| format!("--flows: {e}"))?
            }
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn run_perf(args: &Args) -> Result<(), String> {
    let incremental = churn(
        &PerfOptions {
            flows: args.flows,
            churn_events: args.events,
            seed: args.seed,
            force_full: false,
        },
        &alloc_count,
    );
    let full = churn(
        &PerfOptions {
            flows: args.flows,
            churn_events: args.events,
            seed: args.seed,
            force_full: true,
        },
        &alloc_count,
    );
    let doc = comparison_json(&incremental, &full);
    print!("{doc}");
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let base_eps = extract(&baseline, "incremental", "events_per_sec")
            .ok_or("baseline missing incremental events_per_sec")?;
        let ratio = extract(&doc, "net_churn", "waterfill_touch_ratio")
            .ok_or("run missing waterfill_touch_ratio")?;

        let mut failures = Vec::new();
        if incremental.events_per_sec < 0.7 * base_eps {
            failures.push(format!(
                "events/sec regressed >30%: {:.0} vs baseline {:.0}",
                incremental.events_per_sec, base_eps
            ));
        }
        if ratio < 5.0 {
            failures.push(format!(
                "incremental waterfilling no longer ≥5× cheaper (ratio {ratio:.2})"
            ));
        }
        if incremental.steady_state_allocs != 0 {
            failures.push(format!(
                "hot path allocated {} times during the measured phase",
                incremental.steady_state_allocs
            ));
        }
        if incremental.final_drift_bps > 1.0 {
            failures.push(format!(
                "incremental allocation drifted {} bps from the reference",
                incremental.final_drift_bps
            ));
        }
        if !failures.is_empty() {
            return Err(failures.join("; "));
        }
        eprintln!(
            "perf check ok: {:.0} events/sec (baseline {:.0}), {ratio:.1}x waterfill ratio, 0 hot-path allocs",
            incremental.events_per_sec, base_eps
        );
    }
    Ok(())
}

fn run_serve(args: &Args) -> Result<(), String> {
    let mut opts = ServeOptions {
        points_per_engine: args.points,
        seed: args.seed,
        analytic: true,
        ..ServeOptions::default()
    };
    let analytic = serving(&opts, &alloc_count);
    opts.analytic = false;
    let simulation = serving(&opts, &alloc_count);
    let doc = socc_bench::serve::comparison_json(&analytic, &simulation);
    print!("{doc}");
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let base_pps = extract(&baseline, "analytic", "points_per_sec")
            .ok_or("baseline missing analytic points_per_sec")?;
        let speedup = extract(&doc, "dl_serving", "speedup").ok_or("run missing speedup")?;
        let drift_max =
            extract(&doc, "dl_serving", "p99_drift_max").ok_or("run missing p99_drift_max")?;

        let mut failures = Vec::new();
        if analytic.points_per_sec < 0.7 * base_pps {
            failures.push(format!(
                "analytic points/sec regressed >30%: {:.0} vs baseline {:.0}",
                analytic.points_per_sec, base_pps
            ));
        }
        if speedup < 5.0 {
            failures.push(format!(
                "analytic path no longer ≥5× faster than simulation (speedup {speedup:.2})"
            ));
        }
        if analytic.steady_state_allocs != 0 {
            failures.push(format!(
                "analytic hot path allocated {} times during the measured phase",
                analytic.steady_state_allocs
            ));
        }
        if drift_max > P99_DRIFT_TOLERANCE {
            failures.push(format!(
                "analytic-vs-simulation p99 drift {drift_max:.3} exceeds {P99_DRIFT_TOLERANCE}"
            ));
        }
        if !failures.is_empty() {
            return Err(failures.join("; "));
        }
        eprintln!(
            "serve check ok: {:.0} points/sec (baseline {:.0}), {speedup:.1}x over simulation, p99 drift {drift_max:.3}, 0 hot-path allocs",
            analytic.points_per_sec, base_pps
        );
    }
    Ok(())
}

/// MTTR classes the `--check` gate watches (must match the report).
const CHAOS_MTTR_CLASSES: [&str; 4] = ["crash", "hang", "thermal_trip", "link_loss"];

fn run_chaos_cmd(args: &Args) -> Result<(), String> {
    let opts = ChaosOptions {
        campaigns: args.campaigns,
        seed: args.seed,
        ..ChaosOptions::default()
    };
    if let Some(k) = args.step {
        // One-campaign repro: deterministic text, no wall-clock, no JSON.
        print!("{}", replay(&opts, k));
        return Ok(());
    }
    let report = run_chaos(&opts);
    let doc = report_json(&report);
    print!("{doc}");
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    let mut failures = Vec::new();
    for v in &report.violations {
        failures.push(format!(
            "invariant violation in campaign {}: {} ({})",
            v.campaign, v.detail, v.repro
        ));
    }
    if report.correlated_mean >= report.independent_mean {
        failures.push(format!(
            "correlated availability {:.4} not below independent {:.4} — the domain model lost its teeth",
            report.correlated_mean, report.independent_mean
        ));
    }
    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        for class in CHAOS_MTTR_CLASSES {
            let (Some(base_p50), Some(run_p50)) = (
                extract(&baseline, class, "p50_ms"),
                extract(&doc, class, "p50_ms"),
            ) else {
                continue;
            };
            if base_p50 > 0.0 && run_p50 > 1.3 * base_p50 {
                failures.push(format!(
                    "{class} MTTR p50 regressed >30%: {run_p50:.1} ms vs baseline {base_p50:.1} ms"
                ));
            }
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    eprintln!(
        "chaos check ok: {} campaigns, 0 violations, availability gap {:.4} (corr {:.4} < indep {:.4})",
        report.options.campaigns,
        report.independent_mean - report.correlated_mean,
        report.correlated_mean,
        report.independent_mean
    );
    Ok(())
}

fn run_trace(args: &Args) -> Result<(), String> {
    let opts = TraceOptions {
        reps: args.reps,
        seed: args.seed,
        ..TraceOptions::default()
    };
    let report = trace_overhead(&opts, &alloc_count);
    let doc = socc_bench::tracebench::report_json(&report);
    print!("{doc}");
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.chrome {
        let trace = socc_bench::tracebench::chrome_trace(&opts);
        std::fs::write(path, &trace).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    // Absolute gates — no baseline needed: spans must stay within the
    // documented overhead budget and both recording paths must be
    // allocation-free (the ring is sized at construction).
    let mut failures = Vec::new();
    if report.overhead_pct > MAX_OVERHEAD_PCT {
        failures.push(format!(
            "spans-on engine overhead {:.2}% exceeds {MAX_OVERHEAD_PCT}% budget",
            report.overhead_pct
        ));
    }
    if report.allocs_enabled != 0 {
        failures.push(format!(
            "enabled recording path allocated {} times",
            report.allocs_enabled
        ));
    }
    if report.allocs_disabled != 0 {
        failures.push(format!(
            "disabled recording path allocated {} times",
            report.allocs_disabled
        ));
    }
    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let base_events = extract(&baseline, "engine_overhead", "events_captured")
            .ok_or("baseline missing events_captured")?;
        if report.events_captured as f64 != base_events {
            failures.push(format!(
                "events captured changed: {} vs baseline {base_events:.0} — \
                 instrumentation drifted; refresh BENCH_trace.json deliberately",
                report.events_captured
            ));
        }
        if !baseline.contains(&format!("\"digest\": \"{}\"", report.digest_hex)) {
            failures.push(format!(
                "event-log digest {} differs from baseline — \
                 recorded content drifted; refresh BENCH_trace.json deliberately",
                report.digest_hex
            ));
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    eprintln!(
        "trace check ok: {:.2}% engine overhead (budget {MAX_OVERHEAD_PCT}%), {:.1} ns/event enabled, {:.1} ns/event disabled, 0 allocs both paths, {} events, digest {}",
        report.overhead_pct,
        report.ns_per_event_enabled,
        report.ns_per_event_disabled,
        report.events_captured,
        report.digest_hex
    );
    Ok(())
}

fn run_netval_cmd(args: &Args) -> Result<(), String> {
    let opts = NetvalOptions {
        cases: args.cases,
        seed: args.seed,
        ..NetvalOptions::default()
    };
    let report = run_netval(&opts);
    let doc = socc_bench::netvalidate::report_json(&report);
    print!("{doc}");
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    // Absolute gates — the cross-validation contract itself, independent
    // of any baseline.
    let mut failures = Vec::new();
    for f in &report.failures {
        failures.push(format!(
            "case {} (seed {}) disagreed: {}; minimal: {:?}; repro: {}",
            f.case, f.seed, f.detail, f.minimal, f.repro
        ));
    }
    if report.max_rel_err > AGREEMENT_TOLERANCE {
        failures.push(format!(
            "worst packet-vs-flow goodput error {:.3} exceeds ±{AGREEMENT_TOLERANCE}",
            report.max_rel_err
        ));
    }
    if report.calibration_rel_err > CALIBRATION_TOLERANCE {
        failures.push(format!(
            "calibrated goodput {:.1} Mbps misses the {:.0} Mbps anchor by {:.3} (> {CALIBRATION_TOLERANCE})",
            report.calibration.goodput.as_mbps(),
            socc_hw::calib::INTER_SOC_TCP_MBPS,
            report.calibration_rel_err
        ));
    }
    if report.incast_unpaced.drops == 0 {
        failures.push("unpaced incast burst no longer overflows the port buffer".to_string());
    }
    if report.incast_paced.drops >= report.incast_unpaced.drops {
        failures.push(format!(
            "pacing no longer reduces incast drops ({} paced vs {} unpaced)",
            report.incast_paced.drops, report.incast_unpaced.drops
        ));
    }
    let inflation = report.incast_paced.completion_ms / report.incast_unpaced.completion_ms;
    if inflation > MAX_PACING_INFLATION {
        failures.push(format!(
            "paced incast completion inflated {inflation:.2}x (> {MAX_PACING_INFLATION}x)"
        ));
    }

    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let base_factor = extract(&baseline, "calibration", "factor")
            .ok_or("baseline missing calibration factor")?;
        if (report.calibration.factor - base_factor).abs() > 1e-6 {
            failures.push(format!(
                "calibrated goodput factor drifted: {:.6} vs baseline {base_factor:.6} — \
                 the packet engine changed; refresh BENCH_netval.json deliberately",
                report.calibration.factor
            ));
        }
        let base_err = extract(&baseline, "agreement", "max_rel_err")
            .ok_or("baseline missing agreement max_rel_err")?;
        if report.max_rel_err > base_err + 0.02 {
            failures.push(format!(
                "worst agreement error grew: {:.3} vs baseline {base_err:.3} (+2pt budget)",
                report.max_rel_err
            ));
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    eprintln!(
        "netval check ok: {} cases / {} flows agree (worst err {:.3}, mean {:.3}), \
         calibration {:.1} Mbps (anchor err {:.3}), incast drops {} -> {} paced ({inflation:.2}x completion), {:.0} cases/sec",
        report.options.cases,
        report.flows_checked,
        report.max_rel_err,
        report.mean_rel_err,
        report.calibration.goodput.as_mbps(),
        report.calibration_rel_err,
        report.incast_unpaced.drops,
        report.incast_paced.drops,
        report.cases_per_sec
    );
    Ok(())
}

fn run_fleet_cmd(args: &Args) -> Result<(), String> {
    let opts = FleetBenchOptions {
        sites: args.sites,
        hours: args.hours,
        window_secs: args.window,
        seed: args.seed,
    };
    let report = run_fleet_bench(&opts, &alloc_count);
    let doc = socc_bench::fleet::report_json(&report);
    print!("{doc}");
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    // Absolute gates — the fleet simulator's own contract, independent of
    // any baseline: determinism across thread counts, the ISSUE 7 speedup
    // bar, and a coordination loop that reuses its buffers.
    let mut failures = Vec::new();
    if !report.digests_match() {
        let digests: Vec<&str> = report.runs.iter().map(|r| r.digest_hex.as_str()).collect();
        failures.push(format!(
            "result digest differs across worker counts ({digests:?}) — \
             conservative sync is leaking nondeterminism"
        ));
    }
    let modeled_8w = report.modeled_speedup(8);
    let wall_8w = report.wall_speedup(8);
    if modeled_8w < MIN_SPEEDUP_8W {
        failures.push(format!(
            "modeled 8-worker speedup {modeled_8w:.2}x below the {MIN_SPEEDUP_8W}x bar"
        ));
    }
    if report.host_cpus >= 8 && wall_8w < MIN_SPEEDUP_8W {
        failures.push(format!(
            "wall-clock 8-worker speedup {wall_8w:.2}x below the {MIN_SPEEDUP_8W}x bar \
             on a {}-core host",
            report.host_cpus
        ));
    }
    if let Some(one) = report.run_at(1) {
        if one.coord_allocs_per_window > MAX_COORD_ALLOCS_PER_WINDOW {
            failures.push(format!(
                "steady-state coordination allocated {:.1}/window (> {MAX_COORD_ALLOCS_PER_WINDOW}) — \
                 the barrier loop lost its buffer reuse",
                one.coord_allocs_per_window
            ));
        }
    }

    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        // The digest is only comparable when the baseline ran the same
        // scenario.
        let same_config = [
            ("sites", opts.sites as f64),
            ("hours", opts.hours as f64),
            ("window_secs", opts.window_secs as f64),
            ("seed", opts.seed as f64),
        ]
        .iter()
        .all(|&(key, v)| extract(&baseline, "config", key) == Some(v));
        if same_config {
            if !baseline.contains(&format!("\"digest\": \"{}\"", report.runs[0].digest_hex)) {
                failures.push(format!(
                    "fleet digest {} differs from baseline — simulated behaviour \
                     drifted; refresh BENCH_fleet.json deliberately",
                    report.runs[0].digest_hex
                ));
            }
        } else {
            eprintln!("fleet check: baseline config differs; skipping digest comparison");
        }
        if let (Some(base_wps), Some(one)) = (
            extract(&baseline, "w1", "windows_per_sec"),
            report.run_at(1),
        ) {
            if one.windows_per_sec < 0.7 * base_wps {
                failures.push(format!(
                    "single-thread windows/sec regressed >30%: {:.1} vs baseline {base_wps:.1}",
                    one.windows_per_sec
                ));
            }
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    eprintln!(
        "fleet check ok: {} sites x {} windows, digest {} identical at {:?} workers, \
         speedup {wall_8w:.2}x wall / {modeled_8w:.2}x modeled on {} cpus, \
         {:.1} coord allocs/window",
        report.options.sites,
        report.runs[0].windows,
        report.runs[0].digest_hex,
        socc_bench::fleet::WORKER_COUNTS,
        report.host_cpus,
        report.run_at(1).map_or(0.0, |r| r.coord_allocs_per_window),
    );
    Ok(())
}

fn run_fleetchaos_cmd(args: &Args) -> Result<(), String> {
    let opts = FleetChaosOptions {
        campaigns: args.campaigns,
        seed: args.seed,
        ..FleetChaosOptions::default()
    };
    if let Some(k) = args.step {
        // One-campaign repro: deterministic text, no wall-clock, no JSON.
        print!("{}", socc_bench::fleetchaos::replay(&opts, k));
        return Ok(());
    }
    let report = run_fleet_chaos(&opts);
    let doc = socc_bench::fleetchaos::report_json(&report);
    print!("{doc}");
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    // Absolute gates — the campaign contract itself, independent of any
    // baseline.
    let mut failures = Vec::new();
    for v in &report.violations {
        failures.push(format!(
            "invariant violation in campaign {}: {} (minimal schedule {} events; {})",
            v.campaign, v.detail, v.minimal_events, v.repro
        ));
    }
    if let Some(p) = report.outcomes.iter().find(|p| !p.digests_match()) {
        failures.push(format!(
            "campaign {} digest differs across worker counts: {:?}",
            p.index, p.worker_digests
        ));
    }
    if report.correlated_mean >= report.independent_mean {
        failures.push(format!(
            "correlated availability {:.4} not below independent {:.4} — \
             the site-tier domain model lost its teeth",
            report.correlated_mean, report.independent_mean
        ));
    }
    let rate = report.live_migration_rate();
    if rate < MIN_LIVE_MIGRATION_RATE {
        failures.push(format!(
            "only {:.1}% of displaced sessions live-migrated (< {:.0}%)",
            rate * 100.0,
            MIN_LIVE_MIGRATION_RATE * 100.0
        ));
    }

    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let same_config = [
            ("campaigns", opts.campaigns as f64),
            ("seed", opts.seed as f64),
            ("sites", opts.sites as f64),
            ("regions", opts.regions as f64),
            ("hours", opts.hours as f64),
            ("window_secs", opts.window_secs as f64),
        ]
        .iter()
        .all(|&(key, v)| extract(&baseline, "config", key) == Some(v));
        if same_config {
            if !baseline.contains(&format!("\"digest\": \"{}\"", report.digest_hex)) {
                failures.push(format!(
                    "fleet-chaos sweep digest {} differs from baseline — simulated \
                     behaviour drifted; refresh BENCH_fleetchaos.json deliberately",
                    report.digest_hex
                ));
            }
        } else {
            eprintln!("fleetchaos check: baseline config differs; skipping digest comparison");
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    eprintln!(
        "fleetchaos check ok: {} campaign pairs, 0 violations, digest {} identical at \
         {:?} workers, availability gap {:.4} (corr {:.4} < indep {:.4}), {:.1}% of {} \
         displaced sessions live-migrated, {:.1} runs/sec",
        report.options.campaigns,
        report.digest_hex,
        socc_bench::fleetchaos::WORKER_COUNTS,
        report.independent_mean - report.correlated_mean,
        report.correlated_mean,
        report.independent_mean,
        rate * 100.0,
        report.stranded,
        report.runs_per_sec
    );
    Ok(())
}

fn run_video_cmd(args: &Args) -> Result<(), String> {
    let opts = VideoOptions {
        socs: args.socs,
        horizon_secs: args.hours * 3600,
        peak_arrivals_per_hour: args.peak,
        seed: args.seed,
        reps: args.reps.min(5),
    };
    let report = run_video(&opts, &alloc_count);
    let doc = socc_bench::video::report_json(&report);
    print!("{doc}");
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    // Absolute gates — the fast path's own contract, independent of any
    // baseline: the speedup floor, an allocation-free analytic phase,
    // two-mode agreement, and (on the full day) a board fault that lands
    // amid four-digit live-session counts and migrates streams at
    // GOP-checkpoint MTTRs.
    let speedup = report.speedup();
    let mut failures = Vec::new();
    if speedup < MIN_SPEEDUP {
        failures.push(format!(
            "analytic fast path no longer ≥{MIN_SPEEDUP}× over simulation (speedup {speedup:.2})"
        ));
    }
    if report.analytic.steady_allocs != 0 {
        failures.push(format!(
            "analytic quiet spans allocated {} times",
            report.analytic.steady_allocs
        ));
    }
    if !report.modes_agree() {
        failures.push(format!(
            "analytic and simulation modes disagree (digest/counters match: {}, \
             integral err {:.3e}, energy err {:.3e})",
            report.exact_fields_match(),
            report.integral_rel_err(),
            report.energy_rel_err()
        ));
    }
    if report.analytic.migrations == 0 {
        failures.push("board fault migrated no live sessions".to_string());
    }
    if opts.horizon_secs >= 86_400 && report.analytic.concurrent_at_fault < MIN_LIVE_AT_FAULT {
        failures.push(format!(
            "fault struck only {} live sessions (< {MIN_LIVE_AT_FAULT}) on the full day",
            report.analytic.concurrent_at_fault
        ));
    }

    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let same_config = [
            ("socs", opts.socs as f64),
            ("horizon_secs", opts.horizon_secs as f64),
            ("peak_arrivals_per_hour", opts.peak_arrivals_per_hour),
            ("seed", opts.seed as f64),
        ]
        .iter()
        .all(|&(key, v)| extract(&baseline, "config", key) == Some(v));
        if same_config {
            if !baseline.contains(&format!("\"digest\": \"{:016x}\"", report.analytic.digest)) {
                failures.push(format!(
                    "farm digest {:016x} differs from baseline — placement behaviour \
                     drifted; refresh BENCH_video.json deliberately",
                    report.analytic.digest
                ));
            }
            if let Some(base_e) = extract(&baseline, "energy", "per_session_hour_j") {
                let run_e = report.analytic.energy_per_session_hour_j();
                if (run_e - base_e).abs() > 1e-3 + 1e-6 * base_e.abs() {
                    failures.push(format!(
                        "per-session energy drifted: {run_e:.3} J/session-hour vs baseline \
                         {base_e:.3} — the power model changed; refresh BENCH_video.json \
                         deliberately",
                    ));
                }
            }
        } else {
            eprintln!("video check: baseline config differs; skipping digest comparison");
        }
        if same_config {
            if let Some(base_ms) = extract(&baseline, "analytic", "elapsed_ms") {
                if report.analytic_ms > 1.3 * base_ms {
                    failures.push(format!(
                        "analytic farm-day regressed >30%: {:.1} ms vs baseline {base_ms:.1} ms",
                        report.analytic_ms
                    ));
                }
            }
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    eprintln!(
        "video check ok: {} sessions / {} events, {speedup:.1}x analytic over simulation \
         ({:.1} ms vs {:.1} ms), 0 quiet-span allocs, {} live at fault, {} migrations at \
         {:.1} ms mean MTTR, {:.1} J/session-hour",
        report.sessions,
        report.events,
        report.analytic_ms,
        report.simulation_ms,
        report.analytic.concurrent_at_fault,
        report.analytic.migrations,
        report.analytic.mttr_mean_ms(),
        report.analytic.energy_per_session_hour_j(),
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.perf
        && !args.serve
        && !args.chaos
        && !args.trace
        && !args.netval
        && !args.fleet
        && !args.fleetchaos
        && !args.video
    {
        eprintln!(
            "usage: bench --perf [--flows N] [--events N] [--seed N] [--out FILE] [--check BASELINE]\n       bench --serve [--points N] [--seed N] [--out FILE] [--check BASELINE]\n       bench --chaos [--campaigns N] [--seed N] [--step K] [--out FILE] [--check BASELINE]\n       bench --trace [--reps N] [--seed N] [--out FILE] [--chrome FILE] [--check BASELINE]\n       bench --netval [--cases N] [--seed N] [--out FILE] [--check BASELINE]\n       bench --fleet [--sites N] [--hours N] [--window SECS] [--seed N] [--out FILE] [--check BASELINE]\n       bench --fleetchaos [--campaigns N] [--seed N] [--step K] [--out FILE] [--check BASELINE]\n       bench --video [--socs N] [--hours N] [--peak RATE] [--reps N] [--seed N] [--out FILE] [--check BASELINE]"
        );
        return ExitCode::FAILURE;
    }
    let run = if args.perf {
        run_perf(&args)
    } else if args.serve {
        run_serve(&args)
    } else if args.trace {
        run_trace(&args)
    } else if args.netval {
        run_netval_cmd(&args)
    } else if args.fleet {
        run_fleet_cmd(&args)
    } else if args.fleetchaos {
        run_fleetchaos_cmd(&args)
    } else if args.video {
        run_video_cmd(&args)
    } else {
        run_chaos_cmd(&args)
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
