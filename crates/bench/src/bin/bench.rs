//! Unified bench entry point, built on [`socc_bench::runner`].
//!
//! Every experiment — perf, serve, chaos, trace, netval, fleet,
//! fleetchaos, video — is declared in the registry (name, config grid,
//! seed rule, execute fn, gates), so this binary is just the driver:
//!
//! ```text
//! bench --list                         # registered experiments
//! bench --run perf --check             # one experiment + its gates vs its committed baseline
//! bench --run all --smoke --check      # the whole CI smoke sweep in one invocation
//! bench --run netval --cases 64        # scale overrides reuse the legacy flag names
//! ```
//!
//! Results land as JSONL rows (shared envelope: `schema`, `experiment`,
//! `config_hash`, `seed`, `wall_ms`, `config`, `artifact`) in the cache
//! directory (default `.bench-cache/`, override with `--cache-dir`).
//! Re-running a sweep executes only configurations whose FNV config hash
//! is not already cached — so an interrupted sweep resumes instead of
//! restarting, and a repeat invocation executes nothing (`--assert-cached`
//! turns that into a hard check; `--force` drops the cache first). Each
//! experiment's artifact document is still printed and written
//! (`--out FILE` for a single experiment, `--out-suffix .ci.json` to
//! derive one file per experiment from its committed baseline name).
//!
//! Gate semantics: *absolute* gates (the experiment's own contract —
//! zero hot-path allocations, speedup floors, invariant violations) run
//! on every artifact, cached or fresh. *Baseline-relative* gates run
//! under `--check`, against the experiment's committed `BENCH_*.json`
//! (or an explicit `--check PATH` when a single experiment runs).
//!
//! The legacy single-mode flags (`--perf`, `--serve`, `--chaos`,
//! `--trace`, `--netval`, `--fleet`, `--fleetchaos`, `--video`) remain
//! as aliases for `--run <name>`, so committed repro lines keep working.
//! Two mode-specific escapes stay outside the cache: `--step K` replays
//! one chaos/fleetchaos campaign pair as deterministic text, and
//! `--chrome FILE` exports the trace scenario's span log in Chrome
//! `trace_event` format.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

use socc_bench::chaos::ChaosOptions;
use socc_bench::fleetchaos::FleetChaosOptions;
use socc_bench::runner::{
    read_baseline, resolve, run_experiment, Cache, GridScale, DEFAULT_CACHE_DIR,
};
use socc_bench::tracebench::TraceOptions;

/// Counts every heap allocation; the perf harness samples it around the
/// measured phase to prove the hot path is allocation-free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the only addition is a relaxed
// counter increment, which cannot violate the allocator contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

struct Args {
    run: Vec<String>,
    list: bool,
    smoke: bool,
    force: bool,
    assert_cached: bool,
    cache_dir: String,
    out: Option<String>,
    out_suffix: Option<String>,
    /// `None` = no check; `Some(None)` = each experiment's declared
    /// baseline; `Some(Some(path))` = explicit baseline (single
    /// experiment only).
    check: Option<Option<String>>,
    chrome: Option<String>,
    step: Option<usize>,
    scale: GridScale,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        run: Vec::new(),
        list: false,
        smoke: false,
        force: false,
        assert_cached: false,
        cache_dir: DEFAULT_CACHE_DIR.to_string(),
        out: None,
        out_suffix: None,
        check: None,
        chrome: None,
        step: None,
        scale: GridScale::full(42),
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--run" => {
                for name in value("--run")?.split(',') {
                    let name = name.trim();
                    if !name.is_empty() {
                        args.run.push(name.to_string());
                    }
                }
            }
            // Legacy single-mode flags, kept as aliases so committed
            // repro lines stay valid.
            "--perf" => args.run.push("perf".to_string()),
            "--serve" => args.run.push("serve".to_string()),
            "--chaos" => args.run.push("chaos".to_string()),
            "--trace" => args.run.push("trace".to_string()),
            "--netval" => args.run.push("netval".to_string()),
            "--fleet" => args.run.push("fleet".to_string()),
            "--fleetchaos" => args.run.push("fleetchaos".to_string()),
            "--video" => args.run.push("video".to_string()),
            "--list" => args.list = true,
            "--smoke" => {
                args.smoke = true;
                args.scale.smoke = true;
            }
            "--force" => args.force = true,
            "--assert-cached" => args.assert_cached = true,
            "--cache-dir" => args.cache_dir = value("--cache-dir")?,
            "--out" => args.out = Some(value("--out")?),
            "--out-suffix" => args.out_suffix = Some(value("--out-suffix")?),
            "--check" => {
                // Optional value: `--check BASELINE.json` pins an explicit
                // baseline; bare `--check` uses each experiment's declared
                // one.
                let explicit = match it.peek() {
                    Some(next) if !next.starts_with("--") => Some(it.next().unwrap()),
                    _ => None,
                };
                args.check = Some(explicit);
            }
            "--chrome" => args.chrome = Some(value("--chrome")?),
            "--step" => {
                args.step = Some(
                    value("--step")?
                        .parse()
                        .map_err(|e| format!("--step: {e}"))?,
                )
            }
            "--seed" => {
                args.scale.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--flows" => args.scale.flows = Some(parse_num(&arg, value(&arg)?)?),
            "--events" => args.scale.events = Some(parse_num(&arg, value(&arg)?)?),
            "--points" => args.scale.points = Some(parse_num(&arg, value(&arg)?)?),
            "--cases" => args.scale.cases = Some(parse_num(&arg, value(&arg)?)?),
            "--campaigns" => args.scale.campaigns = Some(parse_num(&arg, value(&arg)?)?),
            "--sites" => args.scale.sites = Some(parse_num(&arg, value(&arg)?)?),
            "--socs" => args.scale.socs = Some(parse_num(&arg, value(&arg)?)?),
            "--reps" => args.scale.reps = Some(parse_num(&arg, value(&arg)?)?),
            "--hours" => {
                args.scale.hours = Some(
                    value("--hours")?
                        .parse()
                        .map_err(|e| format!("--hours: {e}"))?,
                )
            }
            "--window" => {
                args.scale.window = Some(
                    value("--window")?
                        .parse()
                        .map_err(|e| format!("--window: {e}"))?,
                )
            }
            "--peak" => {
                args.scale.peak = Some(
                    value("--peak")?
                        .parse()
                        .map_err(|e| format!("--peak: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    args.run.dedup();
    Ok(args)
}

fn parse_num(flag: &str, raw: String) -> Result<usize, String> {
    raw.parse().map_err(|e| format!("{flag}: {e}"))
}

/// `--step K` replay: one campaign pair as deterministic text, outside
/// the cache (no wall-clock, no JSON — it is a repro tool, not a
/// result).
fn run_step(args: &Args, k: usize) -> Result<(), String> {
    match args.run.as_slice() {
        [name] if name == "chaos" => {
            let opts = ChaosOptions {
                campaigns: args.scale.campaigns.unwrap_or(256),
                seed: args.scale.seed,
                ..ChaosOptions::default()
            };
            print!("{}", socc_bench::chaos::replay(&opts, k));
            Ok(())
        }
        [name] if name == "fleetchaos" => {
            let opts = FleetChaosOptions {
                campaigns: args.scale.campaigns.unwrap_or(64),
                seed: args.scale.seed,
                ..FleetChaosOptions::default()
            };
            print!("{}", socc_bench::fleetchaos::replay(&opts, k));
            Ok(())
        }
        _ => Err("--step needs exactly one of --chaos / --fleetchaos".to_string()),
    }
}

fn usage() -> String {
    let mut u = String::from(
        "usage: bench --run <names|all> [--smoke] [--check [BASELINE]] [--out FILE | --out-suffix SUF]\n\
         \x20             [--cache-dir DIR] [--force] [--assert-cached] [--seed N] [scale overrides]\n\
         \x20      bench --list\n\
         \x20      bench --chaos --seed N --step K        (campaign replay; also --fleetchaos)\n\
         \x20      bench --trace --chrome FILE            (Chrome trace_event export)\n\
         scale overrides: --flows --events --points --cases --campaigns --sites --socs\n\
         \x20                --hours --window --peak --reps\n\
         experiments:\n",
    );
    for exp in socc_bench::runner::registry() {
        u.push_str(&format!(
            "  {:<10} {} [{}]\n",
            exp.name, exp.about, exp.artifact
        ));
    }
    u
}

fn run(args: &Args) -> Result<(), String> {
    if let Some(k) = args.step {
        return run_step(args, k);
    }
    let exps = resolve(&args.run)?;
    if args.out.is_some() && exps.len() != 1 {
        return Err("--out needs exactly one experiment; use --out-suffix for sweeps".to_string());
    }
    if let Some(Some(_)) = &args.check {
        if exps.len() != 1 {
            return Err(
                "an explicit --check baseline needs exactly one experiment; \
                 bare --check uses each experiment's declared baseline"
                    .to_string(),
            );
        }
    }
    let cache = Cache::new(&args.cache_dir);
    let mut failures: Vec<String> = Vec::new();
    let mut total_executed = 0usize;
    let mut total_cached = 0usize;
    for exp in &exps {
        if args.force {
            cache.invalidate(exp.name)?;
        }
        let outcome = run_experiment(exp, &args.scale, &cache, &alloc_count)?;
        total_executed += outcome.executed;
        total_cached += outcome.cached;
        let out_path = args.out.clone().or_else(|| {
            args.out_suffix.as_ref().map(|suffix| {
                let stem = exp.artifact.strip_suffix(".json").unwrap_or(exp.artifact);
                format!("{stem}{suffix}")
            })
        });
        let baseline = match &args.check {
            None => None,
            Some(explicit) => Some(read_baseline(explicit.as_deref().unwrap_or(exp.artifact))?),
        };
        for row in &outcome.rows {
            print!("{}", row.artifact);
            for failure in (exp.gates)(&row.artifact) {
                failures.push(format!("{} [{}]: {failure}", exp.name, row.config_hash));
            }
            if let Some(baseline) = &baseline {
                for failure in (exp.baseline_gates)(&row.artifact, baseline) {
                    failures.push(format!("{} [{}]: {failure}", exp.name, row.config_hash));
                }
            }
        }
        if let Some(path) = out_path {
            // Single-config grids (all eight today): the artifact file is
            // the one row's document, byte-for-byte.
            let doc = &outcome
                .rows
                .first()
                .ok_or_else(|| format!("{}: empty grid", exp.name))?
                .artifact;
            std::fs::write(&path, doc).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        eprintln!(
            "bench: {}: {} executed, {} cached ({} config{}){}",
            exp.name,
            outcome.executed,
            outcome.cached,
            outcome.rows.len(),
            if outcome.rows.len() == 1 { "" } else { "s" },
            if args.check.is_some() {
                ", gates + baseline checked"
            } else {
                ", gates checked"
            },
        );
    }
    if args.chrome.is_some() && !exps.iter().any(|e| e.name == "trace") {
        return Err("--chrome needs the trace experiment in --run".to_string());
    }
    if let Some(path) = &args.chrome {
        let opts = TraceOptions {
            reps: args.scale.reps.unwrap_or(TraceOptions::default().reps),
            seed: socc_bench::harness::mix_seed(args.scale.seed, 0),
            ..TraceOptions::default()
        };
        let trace = socc_bench::tracebench::chrome_trace(&opts);
        std::fs::write(path, &trace).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    eprintln!(
        "bench: total {total_executed} executed, {total_cached} cached across {} experiment{}",
        exps.len(),
        if exps.len() == 1 { "" } else { "s" },
    );
    if args.assert_cached && total_executed != 0 {
        failures.push(format!(
            "--assert-cached: {total_executed} configs executed (expected every config cached)"
        ));
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        eprint!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args.run.is_empty() {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
