//! Cross-validation of the packet-level fabric engine against the
//! max-min flow model.
//!
//! The flow-level simulator ([`FlowNet`]) *asserts* that per-port fair
//! queueing plus TCP backpressure converges to the max-min fair
//! allocation; the packet-level engine ([`PacketNet`]) actually runs the
//! queues and the windows. This module makes the first claim falsifiable
//! by the second: it draws randomized scenarios — a `soc_cluster` fabric
//! of 4–10 SoCs, optionally with redundant PCB uplinks, a handful of
//! greedy flows, and a burst of uplink fail/repair churn — runs both
//! engines over the *same* topology and churn, and checks
//!
//! 1. the two engines agree on which flows each failure kills, and
//! 2. every surviving flow's packet-measured steady-state goodput lands
//!    within [`AGREEMENT_TOLERANCE`] of the flow model's prediction
//!    (`tcp.goodput(max-min fair share)`).
//!
//! A failing case is shrunk by greedy removal (churn ops, then flows,
//! then backup uplinks) to a minimal counterexample, and the report
//! carries a one-line repro (`bench --netval --seed N --cases 1`).
//!
//! The same harness re-runs the goodput calibration (the packet-measured
//! factor must reproduce the paper's ~903 Mbps within
//! [`CALIBRATION_TOLERANCE`]) and the incast pacing experiment (an
//! unpaced N-to-1 burst must drop; the paced storm must not, at bounded
//! completion-time inflation) so `bench --netval` gates all three.

use std::fmt::Write as _;
use std::time::Instant;

use crate::harness::JsonBuilder;

use socc_cluster::evacuation::EvacuationPacing;
use socc_net::packet::{
    run_goodput_calibration, CalibrationReport, PacketConfig, PacketFlowId, PacketNet,
};
use socc_net::sim::{FlowNet, StreamId};
use socc_net::tcp::TcpModel;
use socc_net::topology::{ClusterFabric, LinkId, Topology};
use socc_sim::rng::SimRng;
use socc_sim::time::{SimDuration, SimTime};
use socc_sim::units::{DataRate, DataSize};

/// Maximum relative error between a flow's packet-measured goodput and
/// the flow model's prediction. The slack covers the AIMD sawtooth, the
/// round-robin quantum, and slow-start recovery after churn — all real
/// effects the fluid model deliberately ignores.
pub const AGREEMENT_TOLERANCE: f64 = 0.12;

/// The calibrated goodput factor must reproduce the paper's measured
/// inter-SoC TCP goodput within this relative error.
pub const CALIBRATION_TOLERANCE: f64 = 0.05;

/// Paced incast may stretch total completion by at most this factor over
/// the unpaced burst. The bottleneck's drain rate is conserved, so pacing
/// mostly re-orders work; drops and retransmissions it avoids buy most of
/// the budget back.
pub const MAX_PACING_INFLATION: f64 = 1.3;

/// Demand attached to every flow-level stream: far above any link, so
/// streams behave as elastic (greedy) flows and the waterfiller gives
/// each its max-min fair share — the same regime the packet engine's
/// persistent flows run in.
const ELASTIC_DEMAND_GBPS: f64 = 10.0;

/// Settling time between churn operations.
const CHURN_SPACING: SimDuration = SimDuration::from_millis(5);

/// Warmup before the measurement window (slow-start recovery after the
/// last churn op takes a few dozen 0.44 ms RTTs).
const WARMUP: SimDuration = SimDuration::from_millis(30);

/// Goodput measurement window (several AIMD sawtooth periods).
const WINDOW: SimDuration = SimDuration::from_millis(40);

/// One randomized cross-validation scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// SoCs in the fabric (PCB count follows, five per board).
    pub socs: usize,
    /// PCBs given a second (backup) duplex uplink to the ESB, so uplink
    /// failures exercise rerouting and not just flow removal.
    pub backup_pcbs: Vec<usize>,
    /// Flows as `(src_soc, dst_soc)` index pairs.
    pub flows: Vec<(usize, usize)>,
    /// Uplink churn applied, in order, before the measurement window.
    pub churn: Vec<ChurnOp>,
}

/// One fail/repair operation on a PCB's ESB uplinks. `slot` indexes the
/// PCB's uplink list (primary pair first, backup pair after), wrapped to
/// its length, so every op is valid on every topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// Fail one directed uplink of a PCB.
    Fail {
        /// PCB index.
        pcb: usize,
        /// Index into [`ClusterFabric::uplinks_of_pcb`], wrapped.
        slot: usize,
    },
    /// Repair one directed uplink of a PCB (no-op if it is up).
    Repair {
        /// PCB index.
        pcb: usize,
        /// Index into [`ClusterFabric::uplinks_of_pcb`], wrapped.
        slot: usize,
    },
}

/// Builds the scenario's fabric: the standard cluster plus any backup
/// uplinks.
pub fn build_fabric(s: &Scenario) -> ClusterFabric {
    let mut fabric = Topology::soc_cluster(s.socs);
    for &p in &s.backup_pcbs {
        fabric.topology.add_duplex(
            fabric.pcbs[p],
            fabric.esb,
            DataRate::bps(socc_hw::calib::PCB_UPLINK_BPS),
        );
    }
    fabric
}

/// Draws a random scenario. The distribution is chosen to hit every
/// qualitative regime: single- and multi-board fabrics, shared access
/// links (repeated endpoints), parking-lot paths across the ESB, uplink
/// failures with and without a backup path, and repairs.
pub fn gen_scenario(rng: &mut SimRng) -> Scenario {
    let socs = rng.uniform_usize(4, 11);
    let pcbs = socs.div_ceil(socc_hw::calib::SOCS_PER_PCB);
    let backup_pcbs: Vec<usize> = (0..pcbs).filter(|_| rng.chance(0.4)).collect();
    let flow_count = rng.uniform_usize(1, 7);
    let mut flows = Vec::with_capacity(flow_count);
    for _ in 0..flow_count {
        let src = rng.uniform_usize(0, socs);
        let mut dst = rng.uniform_usize(0, socs - 1);
        if dst >= src {
            dst += 1;
        }
        flows.push((src, dst));
    }
    let churn_count = rng.uniform_usize(0, 4);
    let mut churn = Vec::with_capacity(churn_count);
    for _ in 0..churn_count {
        let pcb = rng.uniform_usize(0, pcbs);
        let slot = rng.uniform_usize(0, 4);
        if rng.chance(0.7) {
            churn.push(ChurnOp::Fail { pcb, slot });
        } else {
            churn.push(ChurnOp::Repair { pcb, slot });
        }
    }
    Scenario {
        socs,
        backup_pcbs,
        flows,
        churn,
    }
}

/// What one passing case measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseReport {
    /// Flows the scenario started with.
    pub flows: usize,
    /// Flows alive (in both engines) at measurement time.
    pub survivors: usize,
    /// Worst per-flow relative error of this case.
    pub max_rel_err: f64,
    /// Mean per-flow relative error of this case.
    pub mean_rel_err: f64,
}

fn resolve(op: &ChurnOp, fabric: &ClusterFabric) -> (LinkId, bool) {
    match *op {
        ChurnOp::Fail { pcb, slot } => {
            let ups = fabric.uplinks_of_pcb(pcb);
            (ups[slot % ups.len()], true)
        }
        ChurnOp::Repair { pcb, slot } => {
            let ups = fabric.uplinks_of_pcb(pcb);
            (ups[slot % ups.len()], false)
        }
    }
}

/// Runs one scenario through both engines. `Ok` carries the agreement
/// measurements; `Err` carries a human-readable account of the first
/// disagreement (dead-flow sets or a goodput outside the tolerance band).
pub fn run_case(s: &Scenario) -> Result<CaseReport, String> {
    let fabric = build_fabric(s);
    let tcp = TcpModel::inter_soc();
    let mut flow_net = FlowNet::new(fabric.topology.clone(), tcp);
    let mut pkt = PacketNet::new(fabric.topology.clone(), PacketConfig::cluster());

    // Index-aligned pairs; a slot goes `None` once churn kills the flow.
    let mut pairs: Vec<Option<(StreamId, PacketFlowId)>> = Vec::with_capacity(s.flows.len());
    for &(a, b) in &s.flows {
        let (src, dst) = (fabric.socs[a], fabric.socs[b]);
        let sid = flow_net.add_stream(src, dst, DataRate::gbps(ELASTIC_DEMAND_GBPS));
        let pid = pkt.start_flow(src, dst);
        match (sid, pid) {
            (Ok(sid), Ok(pid)) => pairs.push(Some((sid, pid))),
            (Err(_), Err(_)) => pairs.push(None),
            (se, pe) => {
                return Err(format!(
                    "admission disagreement on flow ({a},{b}): flow-level {se:?} vs packet {pe:?}"
                ));
            }
        }
    }

    // Apply churn with settling gaps so packets are genuinely in flight
    // when links die (mid-flight loss + reroute is part of the contract).
    for (step, op) in s.churn.iter().enumerate() {
        let t = pkt.now() + CHURN_SPACING;
        pkt.run_until(t);
        let (link, fail) = resolve(op, &fabric);
        if fail {
            let pkt_lost = pkt.fail_link(link);
            let impact = flow_net.fail_link(link);
            let dead_pkt: Vec<usize> = pairs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_some_and(|(_, pid)| pkt_lost.contains(&pid)))
                .map(|(i, _)| i)
                .collect();
            let dead_flow: Vec<usize> = pairs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_some_and(|(sid, _)| impact.lost_streams.contains(&sid)))
                .map(|(i, _)| i)
                .collect();
            if dead_pkt != dead_flow {
                return Err(format!(
                    "churn step {step} ({op:?}) killed different flows: \
                     packet {dead_pkt:?} vs flow-level {dead_flow:?}"
                ));
            }
            for i in dead_pkt {
                pairs[i] = None;
            }
        } else {
            pkt.repair_link(link);
            flow_net.repair_link(link);
        }
    }

    // Steady state: warm past the post-churn slow start, then measure
    // every survivor over the same window.
    let t0 = pkt.now() + WARMUP;
    pkt.run_until(t0);
    let before: Vec<Option<f64>> = pairs
        .iter()
        .map(|p| p.map(|(_, pid)| pkt.delivered_bytes(pid).expect("survivor exists")))
        .collect();
    pkt.run_until(t0 + WINDOW);

    let mut max_rel_err = 0.0f64;
    let mut sum_rel_err = 0.0f64;
    let mut survivors = 0usize;
    let mut detail = String::new();
    for (i, pair) in pairs.iter().enumerate() {
        let Some((sid, pid)) = pair else { continue };
        let after = pkt.delivered_bytes(*pid).expect("survivor exists");
        let measured =
            (after - before[i].expect("measured at t0")) * 8.0 / WINDOW.as_secs_f64() / 1.0e6;
        let fair = flow_net.stream_rate(*sid).expect("survivor exists");
        let predicted = tcp.goodput(fair).as_mbps();
        let rel_err = (measured - predicted).abs() / predicted;
        let _ = writeln!(
            detail,
            "  flow {i} {:?}: packet {measured:.1} Mbps vs max-min prediction \
             {predicted:.1} Mbps (rel err {rel_err:.3})",
            s.flows[i]
        );
        max_rel_err = max_rel_err.max(rel_err);
        sum_rel_err += rel_err;
        survivors += 1;
    }
    if max_rel_err > AGREEMENT_TOLERANCE {
        return Err(format!(
            "goodput disagreement beyond ±{AGREEMENT_TOLERANCE} on {:?}:\n{detail}",
            s
        ));
    }
    Ok(CaseReport {
        flows: s.flows.len(),
        survivors,
        max_rel_err,
        mean_rel_err: if survivors > 0 {
            sum_rel_err / survivors as f64
        } else {
            0.0
        },
    })
}

/// Greedily shrinks a failing scenario to a minimal counterexample:
/// repeatedly drops the first churn op, flow, or backup uplink whose
/// removal keeps the case failing, until no single removal does. The
/// vendored proptest stub does not shrink, so the harness must.
pub fn shrink_scenario(s: &Scenario) -> Scenario {
    let still_fails = |c: &Scenario| run_case(c).is_err();
    let mut current = s.clone();
    loop {
        let mut progressed = false;
        for i in 0..current.churn.len() {
            let mut candidate = current.clone();
            candidate.churn.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if progressed {
            continue;
        }
        for i in 0..current.flows.len() {
            let mut candidate = current.clone();
            candidate.flows.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if progressed {
            continue;
        }
        for i in 0..current.backup_pcbs.len() {
            let mut candidate = current.clone();
            candidate.backup_pcbs.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Outcome of one incast run (see [`run_incast`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncastOutcome {
    /// Concurrent senders bursting into one SoC.
    pub senders: usize,
    /// Whether admissions were paced by [`EvacuationPacing`].
    pub paced: bool,
    /// Packets tail-dropped across the fabric.
    pub drops: u64,
    /// High-water queue depth at the victim's ESB → PCB port.
    pub max_queue: u32,
    /// When the last transfer finished (ms).
    pub completion_ms: f64,
}

/// N-to-1 incast at a SoC's PCB uplink: `senders` transfers of 1 MB from
/// other boards into SoC 0, either all at `t = 0` (the evacuation-storm
/// shape) or admitted in [`EvacuationPacing`] waves sized to the measured
/// fabric drain rate.
pub fn run_incast(senders: usize, paced: bool) -> IncastOutcome {
    let fabric = Topology::soc_cluster(20);
    assert!(senders <= 15, "senders come from boards 1..4");
    let size = DataSize::megabytes(1.0);
    let offsets = if paced {
        EvacuationPacing {
            max_concurrent: 2,
            state_size: size,
            bottleneck: DataRate::bps(socc_hw::calib::PCB_UPLINK_BPS),
        }
        .admission_offsets(senders)
    } else {
        vec![SimDuration::ZERO; senders]
    };
    let mut net = PacketNet::new(fabric.topology.clone(), PacketConfig::cluster());
    let mut ids = Vec::with_capacity(senders);
    for (i, &off) in offsets.iter().enumerate() {
        net.run_until(SimTime::ZERO + off);
        ids.push(
            net.start_transfer(fabric.socs[5 + i], fabric.socs[0], size)
                .expect("cluster routes"),
        );
    }
    net.run_to_idle();
    let completion_ms = ids
        .iter()
        .map(|&id| {
            net.finished_at(id)
                .expect("flow exists")
                .expect("transfer finished")
                .as_secs_f64()
                * 1e3
        })
        .fold(0.0f64, f64::max);
    let hot = fabric
        .uplinks_of_pcb(0)
        .into_iter()
        .find(|&l| fabric.topology.link(l).src == fabric.esb)
        .expect("ESB-side uplink exists");
    IncastOutcome {
        senders,
        paced,
        drops: net.total_drops(),
        max_queue: net.port_max_depth(hot),
        completion_ms,
    }
}

/// Sweep parameters for `bench --netval`.
#[derive(Debug, Clone)]
pub struct NetvalOptions {
    /// Randomized cases to run.
    pub cases: usize,
    /// Master seed; case `k` derives its own seed from it.
    pub seed: u64,
    /// Senders in the incast experiment.
    pub incast_senders: usize,
}

impl Default for NetvalOptions {
    fn default() -> Self {
        Self {
            cases: 200,
            seed: 42,
            incast_senders: 8,
        }
    }
}

/// One shrunk agreement failure.
#[derive(Debug, Clone)]
pub struct DisagreementRecord {
    /// Case index within the sweep.
    pub case: usize,
    /// The case's derived seed.
    pub seed: u64,
    /// First line of the failure detail.
    pub detail: String,
    /// Minimal counterexample after greedy shrinking.
    pub minimal: Scenario,
    /// One-line repro command.
    pub repro: String,
}

/// Aggregated result of a cross-validation sweep.
#[derive(Debug, Clone)]
pub struct NetvalReport {
    /// Options the sweep ran with.
    pub options: NetvalOptions,
    /// Shrunk disagreements (empty on a clean sweep).
    pub failures: Vec<DisagreementRecord>,
    /// Surviving flows measured across all cases.
    pub flows_checked: usize,
    /// Worst per-flow relative error across the sweep.
    pub max_rel_err: f64,
    /// Mean of the per-case mean relative errors.
    pub mean_rel_err: f64,
    /// The goodput calibration run (fresh, not the cached factor).
    pub calibration: CalibrationReport,
    /// Relative error of the calibrated goodput vs the paper's anchor.
    pub calibration_rel_err: f64,
    /// The unpaced incast burst.
    pub incast_unpaced: IncastOutcome,
    /// The paced incast storm.
    pub incast_paced: IncastOutcome,
    /// Wall-clock seconds for the sweep.
    pub elapsed_secs: f64,
    /// Cases per wall-clock second.
    pub cases_per_sec: f64,
}

/// Case `k`'s private seed (same mixing as the chaos harness — one
/// shared [`crate::harness::mix_seed`] — so `--seed S --cases 1` replays
/// case `k` of a sweep run at seed `case_seed(S, k)`).
pub fn case_seed(seed: u64, k: usize) -> u64 {
    crate::harness::mix_seed(seed, k)
}

/// Runs the full sweep plus the calibration and incast experiments.
pub fn run_netval(opts: &NetvalOptions) -> NetvalReport {
    let started = Instant::now();
    let mut failures = Vec::new();
    let mut flows_checked = 0usize;
    let mut max_rel_err = 0.0f64;
    let mut mean_sum = 0.0f64;
    let mut mean_cases = 0usize;
    for k in 0..opts.cases {
        let seed = case_seed(opts.seed, k);
        let scenario = gen_scenario(&mut SimRng::seed(seed));
        match run_case(&scenario) {
            Ok(report) => {
                flows_checked += report.survivors;
                max_rel_err = max_rel_err.max(report.max_rel_err);
                if report.survivors > 0 {
                    mean_sum += report.mean_rel_err;
                    mean_cases += 1;
                }
            }
            Err(detail) => {
                let minimal = shrink_scenario(&scenario);
                failures.push(DisagreementRecord {
                    case: k,
                    seed,
                    detail: detail.lines().next().unwrap_or("").to_string(),
                    minimal,
                    repro: format!(
                        "cargo run --release -p socc-bench --bin bench -- --netval --seed {seed} --cases 1"
                    ),
                });
            }
        }
    }
    let calibration = run_goodput_calibration();
    let anchor = socc_hw::calib::INTER_SOC_TCP_MBPS;
    let calibration_rel_err = (calibration.goodput.as_mbps() - anchor).abs() / anchor;
    let incast_unpaced = run_incast(opts.incast_senders, false);
    let incast_paced = run_incast(opts.incast_senders, true);
    let elapsed_secs = started.elapsed().as_secs_f64();
    NetvalReport {
        options: opts.clone(),
        failures,
        flows_checked,
        max_rel_err,
        mean_rel_err: if mean_cases > 0 {
            mean_sum / mean_cases as f64
        } else {
            0.0
        },
        calibration,
        calibration_rel_err,
        incast_unpaced,
        incast_paced,
        elapsed_secs,
        cases_per_sec: opts.cases as f64 / elapsed_secs.max(1e-9),
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the `BENCH_netval.json` artifact on [`JsonBuilder`]. Floats
/// stay on the mode's six-decimal `json_f64` (via `raw`), so the port
/// is byte-identical to the hand-rolled emitter it replaced and the
/// committed baseline stays valid.
pub fn report_json(r: &NetvalReport) -> String {
    let mut j = JsonBuilder::new();
    j.str("benchmark", "netval")
        .int("cases", r.options.cases as u64)
        .int("seed", r.options.seed)
        .raw("elapsed_secs", &json_f64(r.elapsed_secs))
        .raw("cases_per_sec", &json_f64(r.cases_per_sec));
    j.object("agreement", |j| {
        j.raw("tolerance", &json_f64(AGREEMENT_TOLERANCE))
            .int("flows_checked", r.flows_checked as u64)
            .raw("max_rel_err", &json_f64(r.max_rel_err))
            .raw("mean_rel_err", &json_f64(r.mean_rel_err))
            .int("disagreements", r.failures.len() as u64);
    });
    j.object("calibration", |j| {
        j.raw("goodput_mbps", &json_f64(r.calibration.goodput.as_mbps()))
            .raw("factor", &json_f64(r.calibration.factor))
            .raw("anchor_mbps", &json_f64(socc_hw::calib::INTER_SOC_TCP_MBPS))
            .raw("rel_err", &json_f64(r.calibration_rel_err))
            .raw("tolerance", &json_f64(CALIBRATION_TOLERANCE))
            .int("drops", r.calibration.drops)
            .int("ecn_marks", r.calibration.ecn_marks);
    });
    j.object("incast", |j| {
        j.int("senders", r.incast_unpaced.senders as u64)
            .int("unpaced_drops", r.incast_unpaced.drops)
            .int("unpaced_max_queue", u64::from(r.incast_unpaced.max_queue))
            .raw(
                "unpaced_completion_ms",
                &json_f64(r.incast_unpaced.completion_ms),
            )
            .int("paced_drops", r.incast_paced.drops)
            .int("paced_max_queue", u64::from(r.incast_paced.max_queue))
            .raw(
                "paced_completion_ms",
                &json_f64(r.incast_paced.completion_ms),
            )
            .raw(
                "inflation",
                &json_f64(r.incast_paced.completion_ms / r.incast_unpaced.completion_ms.max(1e-9)),
            )
            .raw("max_inflation", &json_f64(MAX_PACING_INFLATION));
    });
    let fails: Vec<String> = r
        .failures
        .iter()
        .map(|f| {
            format!(
                "\"case {} (seed {}): {}; minimal: {}; repro: {}\"",
                f.case,
                f.seed,
                json_escape(&f.detail),
                json_escape(&format!("{:?}", f.minimal)),
                json_escape(&f.repro),
            )
        })
        .collect();
    j.list("failures", &fails);
    j.finish()
}

/// Declares the fabric cross-validation experiment for the unified
/// runner (`bench --run netval`): grid, execute, and the gates that
/// used to live in the `bench` binary's `--netval` branch. The smoke
/// tier drops from 200 to 64 randomized cases (the old CI scale).
pub fn experiment() -> crate::runner::Experiment {
    use crate::runner::{gate_num, ExpConfig, Experiment};
    Experiment {
        name: "netval",
        about: "packet-level fabric vs max-min flow model, calibration, incast pacing",
        artifact: "BENCH_netval.json",
        configs: |scale| {
            let full = NetvalOptions::default();
            let cases = scale
                .cases
                .unwrap_or(if scale.smoke { 64 } else { full.cases });
            vec![ExpConfig::new()
                .u64("cases", cases as u64)
                .u64("incast_senders", full.incast_senders as u64)
                .u64("seed", crate::harness::mix_seed(scale.seed, 0))]
        },
        execute: |cfg, _alloc_count| {
            let report = run_netval(&NetvalOptions {
                cases: cfg.get_u64("cases") as usize,
                seed: cfg.seed(),
                incast_senders: cfg.get_u64("incast_senders") as usize,
            });
            Ok(report_json(&report))
        },
        gates: |doc| {
            let mut f = Vec::new();
            for fail in crate::harness::extract_list(doc, "failures") {
                f.push(format!("cross-validation failure: {fail}"));
            }
            if let Some(err) = gate_num(doc, "agreement", "max_rel_err", &mut f) {
                if err > AGREEMENT_TOLERANCE {
                    f.push(format!(
                        "worst packet-vs-flow goodput error {err:.3} exceeds ±{AGREEMENT_TOLERANCE}"
                    ));
                }
            }
            let cal_err = gate_num(doc, "calibration", "rel_err", &mut f);
            let goodput = gate_num(doc, "calibration", "goodput_mbps", &mut f);
            if let (Some(err), Some(goodput)) = (cal_err, goodput) {
                if err > CALIBRATION_TOLERANCE {
                    f.push(format!(
                        "calibrated goodput {goodput:.1} Mbps misses the {:.0} Mbps anchor \
                         by {err:.3} (> {CALIBRATION_TOLERANCE})",
                        socc_hw::calib::INTER_SOC_TCP_MBPS
                    ));
                }
            }
            let unpaced = gate_num(doc, "incast", "unpaced_drops", &mut f);
            let paced = gate_num(doc, "incast", "paced_drops", &mut f);
            if let (Some(unpaced), Some(paced)) = (unpaced, paced) {
                if unpaced == 0.0 {
                    f.push("unpaced incast burst no longer overflows the port buffer".to_string());
                }
                if paced >= unpaced {
                    f.push(format!(
                        "pacing no longer reduces incast drops ({paced:.0} paced vs {unpaced:.0} unpaced)"
                    ));
                }
            }
            if let Some(inflation) = gate_num(doc, "incast", "inflation", &mut f) {
                if inflation > MAX_PACING_INFLATION {
                    f.push(format!(
                        "paced incast completion inflated {inflation:.2}x (> {MAX_PACING_INFLATION}x)"
                    ));
                }
            }
            f
        },
        baseline_gates: |doc, baseline| {
            let mut f = Vec::new();
            let run_factor = gate_num(doc, "calibration", "factor", &mut f);
            let base_factor = gate_num(baseline, "calibration", "factor", &mut f);
            if let (Some(run), Some(base)) = (run_factor, base_factor) {
                if (run - base).abs() > 1e-6 {
                    f.push(format!(
                        "calibrated goodput factor drifted: {run:.6} vs baseline {base:.6} — \
                         the packet engine changed; refresh BENCH_netval.json deliberately"
                    ));
                }
            }
            let run_err = gate_num(doc, "agreement", "max_rel_err", &mut f);
            let base_err = gate_num(baseline, "agreement", "max_rel_err", &mut f);
            if let (Some(run), Some(base)) = (run_err, base_err) {
                if run > base + 0.02 {
                    f.push(format!(
                        "worst agreement error grew: {run:.3} vs baseline {base:.3} (+2pt budget)"
                    ));
                }
            }
            f
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_fixed_scenario_agrees_and_is_deterministic() {
        let s = Scenario {
            socs: 10,
            backup_pcbs: vec![0],
            flows: vec![(0, 9), (1, 9), (5, 0)],
            churn: vec![
                ChurnOp::Fail { pcb: 0, slot: 0 },
                ChurnOp::Repair { pcb: 0, slot: 0 },
            ],
        };
        let a = run_case(&s).expect("fixed scenario agrees");
        let b = run_case(&s).expect("fixed scenario agrees");
        assert_eq!(a, b);
        assert_eq!(a.survivors, 3, "backup uplink keeps everyone alive");
        assert!(a.max_rel_err <= AGREEMENT_TOLERANCE);
    }

    #[test]
    fn generation_respects_scenario_bounds() {
        for seed in 0..50 {
            let s = gen_scenario(&mut SimRng::seed(seed));
            assert!((4..=10).contains(&s.socs));
            assert!((1..=6).contains(&s.flows.len()));
            assert!(s.churn.len() <= 3);
            let pcbs = s.socs.div_ceil(socc_hw::calib::SOCS_PER_PCB);
            for &(a, b) in &s.flows {
                assert!(a < s.socs && b < s.socs && a != b);
            }
            for &p in &s.backup_pcbs {
                assert!(p < pcbs);
            }
        }
    }

    #[test]
    fn shrinking_strips_irrelevant_structure() {
        // An impossible tolerance is simulated by a scenario that fails on
        // dead-set agreement… instead, exercise the shrinker on a real
        // passing scenario's negation: shrink only runs on failures in
        // production, so here just check it is a no-op on passing cases'
        // helper (a failing candidate is needed for a real shrink run —
        // covered by the proptest harness when a regression appears).
        let s = Scenario {
            socs: 4,
            backup_pcbs: vec![],
            flows: vec![(0, 1)],
            churn: vec![],
        };
        assert!(run_case(&s).is_ok());
    }

    #[test]
    fn incast_pacing_kills_the_drops() {
        let unpaced = run_incast(8, false);
        let paced = run_incast(8, true);
        assert!(unpaced.drops > 0, "burst must overflow the port buffer");
        assert!(paced.drops < unpaced.drops);
        assert!(
            paced.completion_ms <= unpaced.completion_ms * MAX_PACING_INFLATION,
            "paced {} ms vs unpaced {} ms",
            paced.completion_ms,
            unpaced.completion_ms
        );
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = run_netval(&NetvalOptions {
            cases: 3,
            seed: 7,
            incast_senders: 8,
        });
        let doc = report_json(&report);
        assert!(doc.contains("\"benchmark\": \"netval\""));
        assert!(doc.contains("\"max_rel_err\""));
        assert!(doc.contains("\"factor\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    /// The retired hand-rolled emitter, kept verbatim as the fixture the
    /// [`JsonBuilder`] port must reproduce byte for byte (the committed
    /// `BENCH_netval.json` baseline was generated with this code).
    fn handrolled_report_json(r: &NetvalReport) -> String {
        let mut fails = String::new();
        for (i, f) in r.failures.iter().enumerate() {
            let _ = writeln!(
                fails,
                "    \"case {} (seed {}): {}; minimal: {}; repro: {}\"{}",
                f.case,
                f.seed,
                json_escape(&f.detail),
                json_escape(&format!("{:?}", f.minimal)),
                json_escape(&f.repro),
                if i + 1 == r.failures.len() { "" } else { "," }
            );
        }
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"netval\",\n",
                "  \"cases\": {},\n",
                "  \"seed\": {},\n",
                "  \"elapsed_secs\": {},\n",
                "  \"cases_per_sec\": {},\n",
                "  \"agreement\": {{\n",
                "    \"tolerance\": {},\n",
                "    \"flows_checked\": {},\n",
                "    \"max_rel_err\": {},\n",
                "    \"mean_rel_err\": {},\n",
                "    \"disagreements\": {}\n",
                "  }},\n",
                "  \"calibration\": {{\n",
                "    \"goodput_mbps\": {},\n",
                "    \"factor\": {},\n",
                "    \"anchor_mbps\": {},\n",
                "    \"rel_err\": {},\n",
                "    \"tolerance\": {},\n",
                "    \"drops\": {},\n",
                "    \"ecn_marks\": {}\n",
                "  }},\n",
                "  \"incast\": {{\n",
                "    \"senders\": {},\n",
                "    \"unpaced_drops\": {},\n",
                "    \"unpaced_max_queue\": {},\n",
                "    \"unpaced_completion_ms\": {},\n",
                "    \"paced_drops\": {},\n",
                "    \"paced_max_queue\": {},\n",
                "    \"paced_completion_ms\": {},\n",
                "    \"inflation\": {},\n",
                "    \"max_inflation\": {}\n",
                "  }},\n",
                "  \"failures\": [\n",
                "{}",
                "  ]\n",
                "}}\n"
            ),
            r.options.cases,
            r.options.seed,
            json_f64(r.elapsed_secs),
            json_f64(r.cases_per_sec),
            json_f64(AGREEMENT_TOLERANCE),
            r.flows_checked,
            json_f64(r.max_rel_err),
            json_f64(r.mean_rel_err),
            r.failures.len(),
            json_f64(r.calibration.goodput.as_mbps()),
            json_f64(r.calibration.factor),
            json_f64(socc_hw::calib::INTER_SOC_TCP_MBPS),
            json_f64(r.calibration_rel_err),
            json_f64(CALIBRATION_TOLERANCE),
            r.calibration.drops,
            r.calibration.ecn_marks,
            r.incast_unpaced.senders,
            r.incast_unpaced.drops,
            r.incast_unpaced.max_queue,
            json_f64(r.incast_unpaced.completion_ms),
            r.incast_paced.drops,
            r.incast_paced.max_queue,
            json_f64(r.incast_paced.completion_ms),
            json_f64(r.incast_paced.completion_ms / r.incast_unpaced.completion_ms.max(1e-9)),
            json_f64(MAX_PACING_INFLATION),
            fails,
        )
    }

    #[test]
    fn report_json_is_byte_identical_to_the_handrolled_emitter() {
        // A clean sweep pins the empty-array shape the committed
        // baseline carries.
        let clean = run_netval(&NetvalOptions {
            cases: 2,
            seed: 11,
            incast_senders: 8,
        });
        assert!(clean.failures.is_empty(), "fixture sweep must be clean");
        assert_eq!(report_json(&clean), handrolled_report_json(&clean));

        // A synthetic disagreement exercises the array items and the
        // escaping path (the `{:?}` scenario debug carries quotes).
        let mut dirty = clean;
        dirty.failures.push(DisagreementRecord {
            case: 1,
            seed: crate::harness::mix_seed(11, 1),
            detail: "flow 3 rel err 0.09 > \"tolerance\"".to_string(),
            minimal: Scenario {
                socs: 4,
                backup_pcbs: vec![0],
                flows: vec![(0, 3)],
                churn: vec![ChurnOp::Fail { pcb: 0, slot: 0 }],
            },
            repro: "bench --netval --seed 11 --step 1".to_string(),
        });
        assert_eq!(report_json(&dirty), handrolled_report_json(&dirty));
    }
}
