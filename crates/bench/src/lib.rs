//! `socc-bench` — the reproduction harness.
//!
//! One function per paper table/figure lives in [`repro`]; the `repro`
//! binary prints them (`cargo run -p socc-bench --bin repro -- fig6`), and
//! the Criterion benches in `benches/` time the underlying simulations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod extensions;
pub mod fleet;
pub mod fleetchaos;
pub mod harness;
pub mod netvalidate;
pub mod perf;
pub mod repro;
pub mod runner;
pub mod serve;
pub mod sweep;
pub mod tracebench;
pub mod video;
