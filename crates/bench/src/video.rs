//! Live-transcoding-farm benchmark: the analytic steady-state fast path
//! vs tick-level simulation, at equal horizons over the identical
//! pre-generated schedule.
//!
//! One benchmark run executes the production-scale farm day
//! ([`socc_cluster::videofarm`]) in both [`FarmMode`]s several times,
//! keeps the fastest rep of each (min-of-N to shed scheduler noise), and
//! cross-checks the two reports: placement digests and churn counters
//! must match exactly, occupancy/quality/egress integrals to float
//! tolerance, total energy within the documented fan band. The analytic
//! mode runs under the bench binary's counting allocator and must
//! integrate every quiet span without a single heap allocation — the ≥5×
//! headline is only honest if the fast path does no hidden work.

use std::time::Instant;

use socc_cluster::videofarm::{
    generate_schedule, run_farm, FarmConfig, FarmFault, FarmMode, FarmReport, FarmSchedule,
    FAN_ENERGY_REL_TOL,
};

use crate::harness::JsonBuilder;

/// The analytic fast path must beat simulation by at least this factor
/// at equal horizons (ISSUE 8 acceptance).
pub const MIN_SPEEDUP: f64 = 5.0;

/// Live sessions that must be on air when the board fault strikes the
/// default production-scale day.
pub const MIN_LIVE_AT_FAULT: usize = 1_000;

/// Relative tolerance for the occupancy/quality/egress integral
/// agreement between modes (both integrate piecewise-constant sums; the
/// residual is float summation order).
pub const INTEGRAL_REL_TOL: f64 = 1e-6;

/// Ledger component names, in `FarmReport::component_energy_j` order.
const COMPONENTS: [&str; 5] = ["cpu", "codec", "gpu", "dsp", "memory"];

/// Parameters of one video-farm benchmark.
#[derive(Debug, Clone, Copy)]
pub struct VideoOptions {
    /// SoC slots in the enclosure.
    pub socs: usize,
    /// Simulated horizon, seconds (86400 = the farm day).
    pub horizon_secs: u64,
    /// Diurnal-peak session arrival rate, per hour.
    pub peak_arrivals_per_hour: f64,
    /// Master schedule seed.
    pub seed: u64,
    /// Timed repetitions per mode (fastest wins).
    pub reps: usize,
}

impl Default for VideoOptions {
    fn default() -> Self {
        Self {
            socs: socc_hw::calib::CLUSTER_SOC_COUNT,
            horizon_secs: 86_400,
            peak_arrivals_per_hour: 500.0,
            seed: 42,
            reps: 3,
        }
    }
}

impl VideoOptions {
    /// The farm scenario: a board-down fault at 7/8 of the horizon — the
    /// 21:00 diurnal peak on the full day — repaired within 15 minutes.
    pub fn farm_config(&self) -> FarmConfig {
        let at_secs = self.horizon_secs / 8 * 7;
        FarmConfig {
            socs: self.socs,
            horizon_secs: self.horizon_secs,
            peak_arrivals_per_hour: self.peak_arrivals_per_hour,
            seed: self.seed,
            fault: Some(FarmFault {
                board: 1,
                at_secs,
                repair_secs: 900.min(self.horizon_secs / 8).max(1),
            }),
            ..FarmConfig::default()
        }
    }
}

/// Outcome of the benchmark: both mode reports plus timings.
#[derive(Debug, Clone)]
pub struct VideoBenchReport {
    /// The options the benchmark ran with.
    pub options: VideoOptions,
    /// Planned sessions in the schedule.
    pub sessions: usize,
    /// Schedule events (starts, ends, switches, board events).
    pub events: usize,
    /// Analytic-mode farm report (the committed numbers come from here).
    pub analytic: FarmReport,
    /// Simulation-mode farm report (the cross-check reference).
    pub simulation: FarmReport,
    /// Fastest analytic rep, milliseconds.
    pub analytic_ms: f64,
    /// Fastest simulation rep, milliseconds.
    pub simulation_ms: f64,
}

impl VideoBenchReport {
    /// Wall-clock speedup of the analytic fast path at equal horizons.
    pub fn speedup(&self) -> f64 {
        if self.analytic_ms <= 0.0 {
            return 0.0;
        }
        self.simulation_ms / self.analytic_ms
    }

    /// True when every exactly-reproducible field matches between modes:
    /// the placement digest and all churn/fault counters.
    pub fn exact_fields_match(&self) -> bool {
        let (a, s) = (&self.analytic, &self.simulation);
        a.digest == s.digest
            && a.admitted == s.admitted
            && a.rejected == s.rejected
            && a.completed == s.completed
            && a.abr_switches == s.abr_switches
            && a.abr_drops == s.abr_drops
            && a.migrations == s.migrations
            && a.fault_drops == s.fault_drops
            && a.peak_concurrent == s.peak_concurrent
            && a.concurrent_at_fault == s.concurrent_at_fault
            && a.hw_sessions == s.hw_sessions
            && a.cpu_sessions == s.cpu_sessions
    }

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / a.abs().max(b.abs()).max(1.0)
    }

    /// Worst relative error across the occupancy / quality / egress
    /// integrals and the per-component ledger energies.
    pub fn integral_rel_err(&self) -> f64 {
        let (a, s) = (&self.analytic, &self.simulation);
        let mut worst = Self::rel_err(a.session_secs, s.session_secs)
            .max(Self::rel_err(a.psnr_secs, s.psnr_secs))
            .max(Self::rel_err(a.egress_mbps_secs, s.egress_mbps_secs));
        for c in 0..COMPONENTS.len() {
            worst = worst.max(Self::rel_err(
                a.component_energy_j[c],
                s.component_energy_j[c],
            ));
        }
        worst
    }

    /// Relative error of the total-energy integral (fan-band tolerance).
    pub fn energy_rel_err(&self) -> f64 {
        Self::rel_err(self.analytic.energy_j, self.simulation.energy_j)
    }

    /// True when both modes agree within their documented tolerances.
    pub fn modes_agree(&self) -> bool {
        self.exact_fields_match()
            && self.integral_rel_err() <= INTEGRAL_REL_TOL
            && self.energy_rel_err() <= FAN_ENERGY_REL_TOL
    }
}

fn timed_min(
    reps: usize,
    cfg: &FarmConfig,
    schedule: &FarmSchedule,
    mode: FarmMode,
    alloc_count: &dyn Fn() -> u64,
) -> (FarmReport, f64) {
    let mut best_ms = f64::INFINITY;
    let mut report = FarmReport::default();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        report = run_farm(cfg, schedule, mode, alloc_count);
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (report, best_ms)
}

/// Runs the benchmark: both modes over one schedule, min-of-`reps` each.
///
/// `alloc_count` is the counting-allocator reading from the `bench`
/// binary (or `&|| 0` to skip allocation measurement).
pub fn run_video(opts: &VideoOptions, alloc_count: &dyn Fn() -> u64) -> VideoBenchReport {
    let cfg = opts.farm_config();
    let schedule = generate_schedule(&cfg);
    // One untimed warm-up pays the lazy one-time costs (packet-mode
    // goodput calibration behind `TcpModel::inter_soc`, allocator warmup)
    // so neither mode's timed reps carry them.
    let _ = run_farm(&cfg, &schedule, FarmMode::Analytic, alloc_count);
    let (analytic, analytic_ms) =
        timed_min(opts.reps, &cfg, &schedule, FarmMode::Analytic, alloc_count);
    let (simulation, simulation_ms) = timed_min(
        opts.reps,
        &cfg,
        &schedule,
        FarmMode::Simulation,
        alloc_count,
    );
    VideoBenchReport {
        options: *opts,
        sessions: schedule.session_count(),
        events: schedule.event_count(),
        analytic,
        simulation,
        analytic_ms,
        simulation_ms,
    }
}

/// Renders the `BENCH_video.json` artifact.
pub fn report_json(report: &VideoBenchReport) -> String {
    let opts = &report.options;
    let cfg = opts.farm_config();
    let a = &report.analytic;
    let session_hours = a.session_secs / 3600.0;
    let mut j = JsonBuilder::new();
    j.str("benchmark", "video_farm");
    j.object("config", |j| {
        j.int("socs", opts.socs as u64);
        j.int("horizon_secs", opts.horizon_secs);
        j.f64("peak_arrivals_per_hour", opts.peak_arrivals_per_hour);
        j.f64("median_session_mins", cfg.median_session_mins);
        j.f64("hw_fraction", cfg.hw_fraction);
        j.f64("abr_switch_prob", cfg.abr_switch_prob);
        j.int("seed", opts.seed);
        j.int("reps", opts.reps as u64);
        if let Some(f) = cfg.fault {
            j.int("fault_board", f.board as u64);
            j.int("fault_at_secs", f.at_secs);
            j.int("fault_repair_secs", f.repair_secs);
        }
    });
    j.object("schedule", |j| {
        j.int("sessions", report.sessions as u64);
        j.int("events", report.events as u64);
    });
    j.object("analytic", |j| {
        j.f64("elapsed_ms", report.analytic_ms);
        j.int("spans", a.spans);
        j.int("steady_allocs", a.steady_allocs);
    });
    j.object("simulation", |j| {
        j.f64("elapsed_ms", report.simulation_ms);
        j.int("ticks", report.simulation.ticks);
    });
    j.f64("speedup", report.speedup());
    j.object("agreement", |j| {
        j.bool("digest_match", a.digest == report.simulation.digest);
        j.bool("counters_match", report.exact_fields_match());
        j.raw(
            "integral_rel_err",
            &format!("{:.3e}", report.integral_rel_err()),
        );
        j.raw(
            "energy_rel_err",
            &format!("{:.3e}", report.energy_rel_err()),
        );
        j.raw("integral_tolerance", &format!("{INTEGRAL_REL_TOL:.0e}"));
        j.raw("fan_tolerance", &format!("{FAN_ENERGY_REL_TOL:.0e}"));
    });
    j.object("farm", |j| {
        j.str("digest", &format!("{:016x}", a.digest));
        j.int("admitted", a.admitted);
        j.int("rejected", a.rejected);
        j.int("completed", a.completed);
        j.int("abr_switches", a.abr_switches);
        j.int("abr_drops", a.abr_drops);
        j.int("hw_sessions", a.hw_sessions);
        j.int("cpu_sessions", a.cpu_sessions);
        j.int("peak_concurrent", a.peak_concurrent as u64);
        j.int("concurrent_at_fault", a.concurrent_at_fault as u64);
        j.f64("session_hours", session_hours);
        j.f64("mean_psnr_db", a.mean_psnr_db());
        j.f64(
            "mean_egress_mbps",
            a.egress_mbps_secs / opts.horizon_secs as f64,
        );
    });
    j.object("energy", |j| {
        j.f64("total_j", a.energy_j);
        j.f64("chassis_j", a.chassis_energy_j);
        for (c, name) in COMPONENTS.iter().enumerate() {
            j.f64(&format!("{name}_j"), a.component_energy_j[c]);
        }
        j.f64("per_session_hour_j", a.energy_per_session_hour_j());
        for (c, name) in COMPONENTS.iter().enumerate() {
            j.f64(
                &format!("{name}_per_session_hour_j"),
                if session_hours > 0.0 {
                    a.component_energy_j[c] / session_hours
                } else {
                    0.0
                },
            );
        }
    });
    j.object("migration", |j| {
        j.int("migrations", a.migrations);
        j.int("fault_drops", a.fault_drops);
        j.f64("mttr_mean_ms", a.mttr_mean_ms());
        j.f64("mttr_max_ms", a.mttr_max_ms);
        j.f64("checkpoint_mb", a.checkpoint_bytes / 1e6);
        j.f64("downtime_secs", a.downtime_secs);
    });
    j.finish()
}

/// Declares the live-transcoding-farm experiment for the unified runner
/// (`bench --run video`): grid, execute, and the gates that used to
/// live in the `bench` binary's `--video` branch.
pub fn experiment() -> crate::runner::Experiment {
    use crate::runner::{gate_bool, gate_num, gate_str, same_config, ExpConfig, Experiment};
    Experiment {
        name: "video",
        about: "analytic farm-day fast path vs tick simulation with a peak board fault",
        artifact: "BENCH_video.json",
        configs: |scale| {
            vec![ExpConfig::new()
                .u64(
                    "socs",
                    scale.socs.unwrap_or(socc_hw::calib::CLUSTER_SOC_COUNT) as u64,
                )
                .u64("horizon_secs", scale.hours.unwrap_or(24) * 3600)
                .f64("peak_arrivals_per_hour", scale.peak.unwrap_or(500.0))
                .u64("reps", scale.reps.unwrap_or(5).min(5) as u64)
                .u64("seed", crate::harness::mix_seed(scale.seed, 0))]
        },
        execute: |cfg, alloc_count| {
            let report = run_video(
                &VideoOptions {
                    socs: cfg.get_u64("socs") as usize,
                    horizon_secs: cfg.get_u64("horizon_secs"),
                    peak_arrivals_per_hour: cfg.get_f64("peak_arrivals_per_hour"),
                    seed: cfg.seed(),
                    reps: cfg.get_u64("reps") as usize,
                },
                alloc_count,
            );
            Ok(report_json(&report))
        },
        gates: |doc| {
            let mut f = Vec::new();
            if let Some(speedup) = gate_num(doc, "video_farm", "speedup", &mut f) {
                if speedup < MIN_SPEEDUP {
                    f.push(format!(
                        "analytic fast path no longer ≥{MIN_SPEEDUP}× over simulation \
                         (speedup {speedup:.2})"
                    ));
                }
            }
            if let Some(allocs) = gate_num(doc, "analytic", "steady_allocs", &mut f) {
                if allocs != 0.0 {
                    f.push(format!("analytic quiet spans allocated {allocs:.0} times"));
                }
            }
            let digest_match = gate_bool(doc, "agreement", "digest_match", &mut f);
            let counters_match = gate_bool(doc, "agreement", "counters_match", &mut f);
            let integral_err = gate_num(doc, "agreement", "integral_rel_err", &mut f);
            let energy_err = gate_num(doc, "agreement", "energy_rel_err", &mut f);
            let agree = digest_match == Some(true)
                && counters_match == Some(true)
                && integral_err.is_some_and(|e| e <= INTEGRAL_REL_TOL)
                && energy_err.is_some_and(|e| e <= FAN_ENERGY_REL_TOL);
            if !agree {
                f.push(format!(
                    "analytic and simulation modes disagree (digest match: {digest_match:?}, \
                     counters match: {counters_match:?}, integral err {integral_err:?}, \
                     energy err {energy_err:?})"
                ));
            }
            if let Some(migrations) = gate_num(doc, "migration", "migrations", &mut f) {
                if migrations == 0.0 {
                    f.push("board fault migrated no live sessions".to_string());
                }
            }
            let horizon = gate_num(doc, "config", "horizon_secs", &mut f);
            let at_fault = gate_num(doc, "farm", "concurrent_at_fault", &mut f);
            if let (Some(horizon), Some(at_fault)) = (horizon, at_fault) {
                if horizon >= 86_400.0 && (at_fault as usize) < MIN_LIVE_AT_FAULT {
                    f.push(format!(
                        "fault struck only {at_fault:.0} live sessions (< {MIN_LIVE_AT_FAULT}) \
                         on the full day"
                    ));
                }
            }
            f
        },
        baseline_gates: |doc, baseline| {
            let mut f = Vec::new();
            if !same_config(
                doc,
                baseline,
                &["socs", "horizon_secs", "peak_arrivals_per_hour", "seed"],
            ) {
                return f;
            }
            if let Some(digest) = gate_str(doc, "farm", "digest", &mut f) {
                if !baseline.contains(&format!("\"digest\": \"{digest}\"")) {
                    f.push(format!(
                        "farm digest {digest} differs from baseline — placement behaviour \
                         drifted; refresh BENCH_video.json deliberately"
                    ));
                }
            }
            let run_e = gate_num(doc, "energy", "per_session_hour_j", &mut f);
            let base_e = gate_num(baseline, "energy", "per_session_hour_j", &mut f);
            if let (Some(run), Some(base)) = (run_e, base_e) {
                if (run - base).abs() > 1e-3 + 1e-6 * base.abs() {
                    f.push(format!(
                        "per-session energy drifted: {run:.3} J/session-hour vs baseline \
                         {base:.3} — the power model changed; refresh BENCH_video.json deliberately"
                    ));
                }
            }
            let run_ms = crate::harness::extract_num(doc, "analytic", "elapsed_ms");
            let base_ms = crate::harness::extract_num(baseline, "analytic", "elapsed_ms");
            if let (Some(run), Some(base)) = (run_ms, base_ms) {
                if run > 1.3 * base {
                    f.push(format!(
                        "analytic farm-day regressed >30%: {run:.1} ms vs baseline {base:.1} ms"
                    ));
                }
            }
            f
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VideoOptions {
        // Enough arrivals that BinPack overflows board 0 and the board-1
        // fault finds victims even on a two-hour reduced horizon.
        VideoOptions {
            socs: 15,
            horizon_secs: 2 * 3600,
            peak_arrivals_per_hour: 300.0,
            seed: 5,
            reps: 1,
        }
    }

    #[test]
    fn modes_agree_and_artifact_is_well_formed() {
        let report = run_video(&small(), &|| 0);
        assert!(report.sessions > 0 && report.events > 0);
        assert!(report.modes_agree(), "{report:?}");
        assert!(report.analytic.migrations + report.analytic.fault_drops > 0);
        let doc = report_json(&report);
        assert!(doc.contains("\"benchmark\": \"video_farm\""));
        for key in [
            "speedup",
            "digest_match",
            "steady_allocs",
            "per_session_hour_j",
            "codec_per_session_hour_j",
            "mttr_mean_ms",
            "concurrent_at_fault",
        ] {
            assert!(doc.contains(&format!("\"{key}\"")), "missing {key}: {doc}");
        }
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn fault_lands_inside_every_horizon() {
        for horizon in [3_600, 7_200, 86_400] {
            let opts = VideoOptions {
                horizon_secs: horizon,
                ..small()
            };
            let f = opts.farm_config().fault.unwrap();
            assert!(f.at_secs < horizon);
            assert!(f.at_secs + f.repair_secs <= horizon);
            assert!(f.repair_secs >= 1);
        }
    }
}
