//! Fleet-day benchmark: a 256-site day of phased Fig. 5 gaming traffic,
//! run at several worker-thread counts on the work-stealing pool.
//!
//! The benchmark proves the two properties the sharded fleet simulator
//! ([`socc_cluster::fleet`]) was built around:
//!
//! - **determinism** — the fleet's result digest is bit-identical across
//!   worker counts (conservative time-window sync makes the step phase
//!   commute);
//! - **scalability** — stepping shards in parallel actually buys
//!   wall-clock. Because CI hosts may have fewer cores than the target
//!   worker count, the artifact records both the *measured* wall-clock
//!   speedup and a *modeled* speedup derived from per-window step-time
//!   sums and maxima observed in the single-worker run: with `W` workers
//!   a window's step phase cannot finish faster than
//!   `max(total_step / W, slowest_shard)`, so
//!   `modeled(W) = Σ(coord + total) / Σ(coord + max(total/W, slowest))`
//!   is the work-stealing critical-path bound. On a host with ≥ W cores
//!   the wall-clock number is gated too; elsewhere the model is.
//!
//! Allocation discipline is measured, not assumed: the serial
//! coordination phases (plan + absorb) are sampled separately from the
//! shard steps, and their steady-state (second-half) allocations per
//! window are reported and gated — shard-internal allocations
//! (orchestrator bookkeeping) are the shards' own budget, measured as
//! `allocs_per_window` for trend tracking.

use std::time::{Duration, Instant};

use socc_cluster::fleet::{FleetConfig, FleetSim};
use socc_sim::time::SimDuration;

use crate::harness::JsonBuilder;
use crate::sweep::parallel_map_with;

/// Worker counts every fleet benchmark runs at; digests across all of
/// them must agree, and the last is the speedup target.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// The modeled speedup the 8-worker run must reach (ISSUE 7 acceptance).
pub const MIN_SPEEDUP_8W: f64 = 4.0;

/// Steady-state serial-coordination allocations allowed per window.
/// Session stacks and command buffers hold their peak capacity after the
/// first diurnal cycle; a growing value means the barrier loop lost its
/// buffer reuse.
pub const MAX_COORD_ALLOCS_PER_WINDOW: f64 = 64.0;

/// Parameters of one fleet benchmark.
#[derive(Debug, Clone, Copy)]
pub struct FleetBenchOptions {
    /// Sites in the fleet.
    pub sites: usize,
    /// Simulated hours (24 = the fleet-day).
    pub hours: u64,
    /// Synchronization window, seconds.
    pub window_secs: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for FleetBenchOptions {
    fn default() -> Self {
        Self {
            sites: 256,
            hours: 24,
            window_secs: 120,
            seed: 42,
        }
    }
}

impl FleetBenchOptions {
    fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            sites: self.sites,
            hours: self.hours,
            window: SimDuration::from_secs(self.window_secs),
            seed: self.seed,
            ..FleetConfig::default()
        }
    }
}

/// Per-worker scratch threaded through the step phase: wall-clock spent
/// stepping shards and the slowest single shard step this window.
#[derive(Debug, Default, Clone, Copy)]
struct StepClock {
    busy: Duration,
    max: Duration,
}

/// One worker-count run of the fleet.
#[derive(Debug, Clone)]
pub struct FleetRunMetrics {
    /// Worker threads used for the step phase.
    pub workers: usize,
    /// Barrier windows executed.
    pub windows: usize,
    /// Wall-clock of the whole barrier loop, seconds.
    pub wall_secs: f64,
    /// Windows per second.
    pub windows_per_sec: f64,
    /// Result digest (must match across worker counts).
    pub digest_hex: String,
    /// Total heap allocations per window during the barrier loop.
    pub allocs_per_window: f64,
    /// Serial-coordination (plan + absorb) allocations per window over
    /// the second half of the run (steady state).
    pub coord_allocs_per_window: f64,
    /// Σ over windows of per-window step-time totals, seconds.
    pub step_total_secs: f64,
    /// Σ over windows of per-window slowest-shard step time, seconds.
    pub step_max_secs: f64,
    /// Σ over windows of serial coordination (plan + absorb) time,
    /// seconds.
    pub coord_secs: f64,
    /// Fleet totals (identical across worker counts when deterministic).
    pub report: socc_cluster::fleet::FleetReport,
}

/// Runs one fleet-day at `workers` step-phase threads.
///
/// `alloc_count` is the counting-allocator reading from the `bench`
/// binary (or `&|| 0` to skip allocation measurement).
pub fn run_fleet_once(
    opts: &FleetBenchOptions,
    workers: usize,
    alloc_count: &dyn Fn() -> u64,
) -> FleetRunMetrics {
    let mut fleet = FleetSim::new(opts.fleet_config());
    let windows = fleet.windows();
    let mut step_total = Duration::ZERO;
    let mut step_max = Duration::ZERO;
    let mut coord = Duration::ZERO;
    let mut coord_allocs_steady = 0u64;
    let mut steady_windows = 0u64;
    let loop_allocs_start = alloc_count();
    let started = Instant::now();
    loop {
        let coord_allocs_before = alloc_count();
        let t0 = Instant::now();
        if !fleet.plan_window() {
            coord += t0.elapsed();
            break;
        }
        let jobs = fleet.take_window();
        coord += t0.elapsed();
        let in_steady_half = fleet.windows_done() * 2 >= windows;
        let plan_allocs = alloc_count() - coord_allocs_before;

        let (jobs, clocks) = parallel_map_with(
            jobs,
            workers,
            |_| StepClock::default(),
            |clock: &mut StepClock, mut job, _| {
                let t = Instant::now();
                job.step();
                let dt = t.elapsed();
                clock.busy += dt;
                clock.max = clock.max.max(dt);
                job
            },
        );
        step_total += clocks.iter().map(|c| c.busy).sum::<Duration>();
        step_max += clocks.iter().map(|c| c.max).max().unwrap_or_default();

        let absorb_allocs_before = alloc_count();
        let t1 = Instant::now();
        fleet.absorb(jobs);
        coord += t1.elapsed();
        if in_steady_half {
            coord_allocs_steady += plan_allocs + (alloc_count() - absorb_allocs_before);
            steady_windows += 1;
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let loop_allocs = alloc_count() - loop_allocs_start;
    FleetRunMetrics {
        workers,
        windows,
        wall_secs,
        windows_per_sec: windows as f64 / wall_secs,
        digest_hex: fleet.digest_hex(),
        allocs_per_window: loop_allocs as f64 / windows as f64,
        coord_allocs_per_window: coord_allocs_steady as f64 / steady_windows.max(1) as f64,
        step_total_secs: step_total.as_secs_f64(),
        step_max_secs: step_max.as_secs_f64(),
        coord_secs: coord.as_secs_f64(),
        report: fleet.report(),
    }
}

/// The full benchmark: one run per [`WORKER_COUNTS`] entry.
#[derive(Debug, Clone)]
pub struct FleetBenchReport {
    /// The options the benchmark ran with.
    pub options: FleetBenchOptions,
    /// One entry per worker count, in [`WORKER_COUNTS`] order.
    pub runs: Vec<FleetRunMetrics>,
    /// Cores available on the measuring host (wall-clock speedups are
    /// only meaningful up to this).
    pub host_cpus: usize,
}

impl FleetBenchReport {
    /// True when every run produced the same result digest.
    pub fn digests_match(&self) -> bool {
        self.runs
            .iter()
            .all(|r| r.digest_hex == self.runs[0].digest_hex)
    }

    /// The run at a worker count.
    pub fn run_at(&self, workers: usize) -> Option<&FleetRunMetrics> {
        self.runs.iter().find(|r| r.workers == workers)
    }

    /// Measured wall-clock speedup of `workers` over single-thread.
    pub fn wall_speedup(&self, workers: usize) -> f64 {
        match (self.run_at(1), self.run_at(workers)) {
            (Some(one), Some(many)) => one.wall_secs / many.wall_secs,
            _ => 0.0,
        }
    }

    /// Critical-path modeled speedup at `workers`, from the
    /// single-worker run's per-window step totals/maxima: a window's
    /// parallel step phase is bounded below by
    /// `max(total / workers, slowest shard)`, and the serial plan/absorb
    /// phases don't shrink.
    pub fn modeled_speedup(&self, workers: usize) -> f64 {
        let Some(one) = self.run_at(1) else {
            return 0.0;
        };
        let serial = one.coord_secs + one.step_total_secs;
        let parallel =
            one.coord_secs + (one.step_total_secs / workers as f64).max(one.step_max_secs);
        serial / parallel
    }
}

/// Runs the fleet benchmark at every [`WORKER_COUNTS`] entry.
pub fn run_fleet_bench(
    opts: &FleetBenchOptions,
    alloc_count: &dyn Fn() -> u64,
) -> FleetBenchReport {
    let runs = WORKER_COUNTS
        .iter()
        .map(|&w| run_fleet_once(opts, w, alloc_count))
        .collect();
    FleetBenchReport {
        options: *opts,
        runs,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Renders the `BENCH_fleet.json` artifact.
pub fn report_json(report: &FleetBenchReport) -> String {
    let mut j = JsonBuilder::new();
    j.str("benchmark", "fleet_day");
    j.object("config", |j| {
        j.int("sites", report.options.sites as u64);
        j.int("hours", report.options.hours);
        j.int("window_secs", report.options.window_secs);
        j.int("seed", report.options.seed);
    });
    j.object("determinism", |j| {
        j.str("digest", &report.runs[0].digest_hex);
        j.bool("digests_match", report.digests_match());
    });
    j.object("runs", |j| {
        for run in &report.runs {
            j.object(&format!("w{}", run.workers), |j| {
                j.int("workers", run.workers as u64);
                j.int("windows", run.windows as u64);
                j.f64("wall_secs", run.wall_secs);
                j.f64("windows_per_sec", run.windows_per_sec);
                j.str("digest", &run.digest_hex);
                j.f64("allocs_per_window", run.allocs_per_window);
                j.f64("coord_allocs_per_window", run.coord_allocs_per_window);
                j.f64("step_total_secs", run.step_total_secs);
                j.f64("step_max_secs", run.step_max_secs);
                j.f64("coord_secs", run.coord_secs);
            });
        }
    });
    j.object("speedup", |j| {
        j.f64("wall_2w", report.wall_speedup(2));
        j.f64("wall_8w", report.wall_speedup(8));
        j.f64("modeled_2w", report.modeled_speedup(2));
        j.f64("modeled_8w", report.modeled_speedup(8));
        j.int("host_cpus", report.host_cpus as u64);
    });
    let fleet = &report.runs[0].report;
    j.object("fleet", |j| {
        j.int("routed", fleet.routed);
        j.int("rerouted", fleet.rerouted);
        j.int("finished", fleet.finished);
        j.int("stranded", fleet.stranded);
        j.int("migrated", fleet.migrated);
        j.int("migration_cancelled", fleet.migration_cancelled);
        j.int("migration_retries", fleet.migration_retries);
        j.int("partitions", fleet.partitions);
        j.int("unplaceable", fleet.unplaceable);
        j.int("rejected", fleet.rejected);
        j.f64("availability", fleet.availability());
        j.f64("fleet_kwh", fleet.fleet_kwh);
        j.f64("peak_fleet_power_w", fleet.peak_fleet_power_w);
    });
    j.finish()
}

/// Declares the fleet-day experiment for the unified runner
/// (`bench --run fleet`): grid, execute, and the gates that used to
/// live in the `bench` binary's `--fleet` branch.
pub fn experiment() -> crate::runner::Experiment {
    use crate::runner::{gate_bool, gate_num, gate_str, same_config, ExpConfig, Experiment};
    Experiment {
        name: "fleet",
        about: "sharded 256-site fleet-day under conservative window sync at 1/2/8 workers",
        artifact: "BENCH_fleet.json",
        configs: |scale| {
            vec![ExpConfig::new()
                .u64("sites", scale.sites.unwrap_or(256) as u64)
                .u64("hours", scale.hours.unwrap_or(24))
                .u64("window_secs", scale.window.unwrap_or(120))
                .u64("seed", crate::harness::mix_seed(scale.seed, 0))]
        },
        execute: |cfg, alloc_count| {
            let report = run_fleet_bench(
                &FleetBenchOptions {
                    sites: cfg.get_u64("sites") as usize,
                    hours: cfg.get_u64("hours"),
                    window_secs: cfg.get_u64("window_secs"),
                    seed: cfg.seed(),
                },
                alloc_count,
            );
            Ok(report_json(&report))
        },
        gates: |doc| {
            let mut f = Vec::new();
            if let Some(digests_match) = gate_bool(doc, "determinism", "digests_match", &mut f) {
                if !digests_match {
                    f.push(
                        "result digest differs across worker counts — \
                         conservative sync is leaking nondeterminism"
                            .to_string(),
                    );
                }
            }
            let modeled_8w = gate_num(doc, "speedup", "modeled_8w", &mut f);
            let wall_8w = gate_num(doc, "speedup", "wall_8w", &mut f);
            let host_cpus = gate_num(doc, "speedup", "host_cpus", &mut f);
            if let Some(modeled) = modeled_8w {
                if modeled < MIN_SPEEDUP_8W {
                    f.push(format!(
                        "modeled 8-worker speedup {modeled:.2}x below the {MIN_SPEEDUP_8W}x bar"
                    ));
                }
            }
            if let (Some(wall), Some(cpus)) = (wall_8w, host_cpus) {
                if cpus >= 8.0 && wall < MIN_SPEEDUP_8W {
                    f.push(format!(
                        "wall-clock 8-worker speedup {wall:.2}x below the {MIN_SPEEDUP_8W}x bar \
                         on a {cpus:.0}-core host"
                    ));
                }
            }
            if let Some(allocs) = gate_num(doc, "w1", "coord_allocs_per_window", &mut f) {
                if allocs > MAX_COORD_ALLOCS_PER_WINDOW {
                    f.push(format!(
                        "steady-state coordination allocated {allocs:.1}/window \
                         (> {MAX_COORD_ALLOCS_PER_WINDOW}) — the barrier loop lost its buffer reuse"
                    ));
                }
            }
            f
        },
        baseline_gates: |doc, baseline| {
            let mut f = Vec::new();
            // The digest is only comparable when the baseline ran the same
            // scenario.
            if same_config(doc, baseline, &["sites", "hours", "window_secs", "seed"]) {
                if let Some(digest) = gate_str(doc, "determinism", "digest", &mut f) {
                    if !baseline.contains(&format!("\"digest\": \"{digest}\"")) {
                        f.push(format!(
                            "fleet digest {digest} differs from baseline — simulated behaviour \
                             drifted; refresh BENCH_fleet.json deliberately"
                        ));
                    }
                }
            }
            let run_wps = crate::harness::extract_num(doc, "w1", "windows_per_sec");
            let base_wps = crate::harness::extract_num(baseline, "w1", "windows_per_sec");
            if let (Some(run), Some(base)) = (run_wps, base_wps) {
                if run < 0.7 * base {
                    f.push(format!(
                        "single-thread windows/sec regressed >30%: {run:.1} vs baseline {base:.1}"
                    ));
                }
            }
            f
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetBenchOptions {
        FleetBenchOptions {
            sites: 6,
            hours: 2,
            window_secs: 120,
            seed: 9,
        }
    }

    #[test]
    fn digests_agree_across_worker_counts() {
        let report = run_fleet_bench(&small(), &|| 0);
        assert_eq!(report.runs.len(), WORKER_COUNTS.len());
        assert!(
            report.digests_match(),
            "digests {:?}",
            report
                .runs
                .iter()
                .map(|r| r.digest_hex.clone())
                .collect::<Vec<_>>()
        );
        // The fleet totals agree too, not just the digest.
        for run in &report.runs[1..] {
            assert_eq!(run.report, report.runs[0].report);
        }
    }

    #[test]
    fn modeled_speedup_is_sane() {
        let report = run_fleet_bench(&small(), &|| 0);
        let m8 = report.modeled_speedup(8);
        assert!(m8 >= 1.0, "model can't beat serial downward: {m8}");
        assert!(m8 <= 8.0 + 1e-9, "model can't exceed worker count: {m8}");
        assert!(report.modeled_speedup(2) <= m8 + 1e-9);
    }

    #[test]
    fn artifact_has_the_gated_fields() {
        let report = run_fleet_bench(&small(), &|| 0);
        let doc = report_json(&report);
        assert!(doc.contains("\"benchmark\": \"fleet_day\""));
        assert!(doc.contains("\"digests_match\": true"));
        for key in [
            "modeled_8w",
            "wall_8w",
            "host_cpus",
            "coord_allocs_per_window",
        ] {
            assert!(doc.contains(&format!("\"{key}\"")), "missing {key}: {doc}");
        }
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
