//! Deterministic DL-serving microbenchmark: the fig. 11/12 hot path.
//!
//! [`serving`] sweeps a grid of offered-load points (5%–95% of raw engine
//! capacity) across the four engine/model/precision combos the extension
//! studies use, plus a fig. 11-style SLO sweep per combo (the largest
//! sustainable rate at each of several p99 SLOs) — once on the
//! **analytic** M/D/1 fast path ([`socc_dl::queueing::Md1`], with the
//! event simulation as guarded fallback for tails the series cannot
//! resolve) and once on the **simulation** path alone (the pre-fast-path
//! baseline, same tolerance-driven bisection). [`comparison_json`] renders
//! both runs plus the headline speedup and the analytic-vs-simulation p99
//! drift as the `BENCH_serve.json` perf-trajectory artifact.
//!
//! Like the network-churn harness ([`crate::perf`]), a full warm-up pass
//! runs before timing starts so every buffer (the simulation arena's
//! histogram and queue, the per-point result vectors) reaches peak size
//! first — making the `steady_state_allocs == 0` acceptance check on the
//! analytic pass meaningful rather than flaky.

use std::time::Instant;

use socc_dl::queueing::{
    max_rate_within_slo, simulate_tail_into, simulated_max_rate, Md1, SimArena,
};
use socc_dl::{DType, Engine, ModelId};
use socc_sim::rng::SimRng;
use socc_sim::time::SimDuration;

/// The serving combos under test (the same set as `extensions::tail`):
/// DSP INT8 for both ResNet depths, the GPU FP32 path, and the Intel
/// edge-server reference.
pub const COMBOS: [(Engine, ModelId, DType); 4] = [
    (Engine::QnnDsp, ModelId::ResNet50, DType::Int8),
    (Engine::QnnDsp, ModelId::ResNet152, DType::Int8),
    (Engine::TfLiteGpu, ModelId::ResNet50, DType::Fp32),
    (Engine::TvmIntel, ModelId::ResNet50, DType::Fp32),
];

/// Documented ceiling on analytic-vs-simulation p99 drift at the grid
/// points where the drift is *measured* (see [`DRIFT_MIN_RELAXATIONS`]):
/// the simulated quantile reads log-histogram bucket upper bounds
/// (≤ ~12.2% relative at 20 buckets/decade) plus residual finite-horizon
/// sampling noise, so individual points may sit up to ~25% from the exact
/// value.
pub const P99_DRIFT_TOLERANCE: f64 = 0.25;

/// Minimum number of M/D/1 relaxation times (`s/(1−ρ)²`) the simulation
/// horizon must span at a grid point for that point to count toward the
/// p99 drift metric. A fixed wall-clock horizon covers ever fewer
/// independent busy cycles as ρ → 1 — below a few hundred relaxation
/// times the sampled p99 swings ±40% by seed, so there is no converged
/// reference to compare the exact value against (that noise is precisely
/// why the analytic path exists). Both passes still *run* every point at
/// equal work; only the drift metric is restricted to converged points.
pub const DRIFT_MIN_RELAXATIONS: f64 = 800.0;

/// How far the *simulated* SLO rate may exceed the exact analytic one
/// when the search has enough samples to resolve a p99 at all (see
/// [`SLO_MIN_TAIL_SAMPLES`]). A well-sampled simulated search is
/// structurally conservative (its p99 reads bucket upper bounds, so it
/// rejects rates the exact model accepts) — often dramatically so where
/// the p99(λ) curve is flat near the SLO, so no useful ceiling exists in
/// that direction and `slo_rate_drift_max` is reported as informational
/// only. In the optimistic direction the only slack is bisection
/// tolerance plus sampling noise, and that is what this bound polices.
pub const SLO_RATE_OPTIMISM_TOLERANCE: f64 = 0.05;

/// Minimum expected number of completions beyond the p99 rank before the
/// simulated SLO search is held to [`SLO_RATE_OPTIMISM_TOLERANCE`]. The
/// pre-fast-path search sizes its horizon by engine *capacity*, not the
/// candidate rate, so a slow engine near a tight SLO may finish only a few
/// dozen requests per bisection step — its "p99" is then an order
/// statistic of seed noise and can land on either side of the exact value
/// (another defect the analytic path removes).
pub const SLO_MIN_TAIL_SAMPLES: f64 = 10.0;

/// Parameters of one serving sweep run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Load-grid points per engine combo.
    pub points_per_engine: usize,
    /// Event-simulation horizon per grid point, seconds.
    pub horizon_secs: f64,
    /// The p99 latency SLOs swept per combo (fig. 11 style: largest
    /// sustainable rate as a function of the SLO), milliseconds.
    pub slo_grid_ms: Vec<f64>,
    /// Base seed; point `i` of a run simulates with `seed + i`.
    pub seed: u64,
    /// `true` = analytic fast path (simulation only as guarded fallback);
    /// `false` = simulation everywhere (the pre-fast-path baseline).
    pub analytic: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            points_per_engine: 40,
            horizon_secs: 400.0,
            slo_grid_ms: vec![15.0, 20.0, 25.0, 30.0, 40.0, 50.0, 75.0, 100.0],
            seed: 42,
            analytic: true,
        }
    }
}

/// Results of one serving sweep run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// `"analytic"` or `"simulation"`.
    pub mode: &'static str,
    /// Engine combos swept.
    pub engines: usize,
    /// Tail points evaluated (grid only; SLO searches counted separately).
    pub grid_points: usize,
    /// SLO-saturating-rate searches performed.
    pub slo_searches: usize,
    /// Event-simulation horizon per grid point, seconds (provenance for
    /// the drift metric's convergence filter).
    pub horizon_secs: f64,
    /// Wall-clock seconds of the measured phase (grid + SLO searches).
    pub elapsed_secs: f64,
    /// Grid points per second (the figure-sweep throughput metric).
    pub points_per_sec: f64,
    /// Heap allocations observed during the measured phase (0 when the
    /// harness runs under the counting allocator and the hot path is
    /// clean; also 0 when no counting allocator is installed).
    pub steady_state_allocs: u64,
    /// `steady_state_allocs / grid_points`.
    pub allocs_per_point: f64,
    /// Grid points where the analytic series refused (deep tail at high
    /// utilization) and the guarded simulation fallback ran instead.
    /// Always 0 in simulation mode.
    pub analytic_fallbacks: u64,
    /// SLO-saturating rates, fps, combo-major over the SLO grid (entry
    /// `ci * slo_grid_ms.len() + si` is combo `ci` at SLO `si`).
    pub slo_rates: Vec<f64>,
    /// Per-grid-point p99 sojourn latency, ms (combo-major order), kept so
    /// [`comparison_json`] can compute cross-mode drift point by point.
    pub p99_ms: Vec<f64>,
}

struct PassBuffers {
    arena: SimArena,
    p99_ms: Vec<f64>,
    slo_rates: Vec<f64>,
    fallbacks: u64,
}

/// Offered utilization of grid point `p` of `n`: 5%–95% of capacity,
/// inclusive endpoints.
fn grid_frac(p: usize, n: usize) -> f64 {
    if n == 1 {
        0.5
    } else {
        0.05 + 0.90 * p as f64 / (n - 1) as f64
    }
}

/// One full sweep pass over every combo's load grid plus its SLO sweep.
fn run_pass(opts: &ServeOptions, services: &[SimDuration], buf: &mut PassBuffers) {
    buf.p99_ms.clear();
    buf.slo_rates.clear();
    buf.fallbacks = 0;
    let horizon = SimDuration::from_secs_f64(opts.horizon_secs);
    let n = opts.points_per_engine;
    for (ci, &service) in services.iter().enumerate() {
        let capacity = 1.0 / service.as_secs_f64();
        for p in 0..n {
            let frac = grid_frac(p, n);
            let rate = frac * capacity;
            let point_seed = opts.seed + (ci * n + p) as u64;
            let report = if opts.analytic {
                match Md1::new(rate, service).and_then(|q| q.tail_report()) {
                    Some(r) => r,
                    None => {
                        // Guarded fallback: the series could not resolve
                        // this tail; cross-check with the event simulator.
                        buf.fallbacks += 1;
                        let mut rng = SimRng::seed(point_seed);
                        simulate_tail_into(&mut buf.arena, service, rate, horizon, &mut rng)
                    }
                }
            } else {
                let mut rng = SimRng::seed(point_seed);
                simulate_tail_into(&mut buf.arena, service, rate, horizon, &mut rng)
            };
            buf.p99_ms.push(report.p99_ms);
        }
        let (engine, model, dtype) = COMBOS[ci];
        for &slo_ms in &opts.slo_grid_ms {
            let slo = SimDuration::from_millis_f64(slo_ms);
            let slo_rate = if opts.analytic {
                max_rate_within_slo(engine, model, dtype, slo, opts.seed).expect("combo supported")
            } else {
                simulated_max_rate(service, slo, opts.seed)
            };
            buf.slo_rates.push(slo_rate);
        }
    }
}

/// Runs the serving sweep once and reports.
///
/// `alloc_count` is sampled immediately before and after the measured
/// phase; pass a counting-allocator reading (see the `bench` binary) to
/// measure steady-state allocations, or `&|| 0` to skip that measurement.
pub fn serving(opts: &ServeOptions, alloc_count: &dyn Fn() -> u64) -> ServeReport {
    let services: Vec<SimDuration> = COMBOS
        .iter()
        .map(|&(engine, model, dtype)| engine.latency(model, dtype, 1).expect("combo supported"))
        .collect();
    let grid_points = COMBOS.len() * opts.points_per_engine;
    let slo_searches = COMBOS.len() * opts.slo_grid_ms.len();
    let mut buf = PassBuffers {
        arena: SimArena::new(),
        p99_ms: Vec::with_capacity(grid_points),
        slo_rates: Vec::with_capacity(slo_searches),
        fallbacks: 0,
    };

    // Warm-up: the identical pass, so the arena's histogram/queue and the
    // result vectors reach their peak sizes before the timed phase.
    run_pass(opts, &services, &mut buf);

    let allocs_before = alloc_count();
    let started = Instant::now();
    run_pass(opts, &services, &mut buf);
    let elapsed_secs = started.elapsed().as_secs_f64();
    let steady_state_allocs = alloc_count() - allocs_before;

    ServeReport {
        mode: if opts.analytic {
            "analytic"
        } else {
            "simulation"
        },
        engines: COMBOS.len(),
        grid_points,
        slo_searches,
        horizon_secs: opts.horizon_secs,
        elapsed_secs,
        points_per_sec: grid_points as f64 / elapsed_secs,
        steady_state_allocs,
        allocs_per_point: steady_state_allocs as f64 / grid_points.max(1) as f64,
        analytic_fallbacks: buf.fallbacks,
        slo_rates: buf.slo_rates,
        p99_ms: buf.p99_ms,
    }
}

/// Serve artifacts render floats at four decimals (one more than the
/// shared [`crate::harness::json_f64`]) — pinned by the committed
/// `BENCH_serve.json`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

impl ServeReport {
    /// Fills one run's section of the artifact (see [`comparison_json`]).
    fn fill(&self, j: &mut crate::harness::JsonBuilder) {
        let slo_rates = self
            .slo_rates
            .iter()
            .map(|&r| json_f64(r))
            .collect::<Vec<_>>()
            .join(", ");
        j.str("mode", self.mode);
        j.int("engines", self.engines as u64);
        j.int("grid_points", self.grid_points as u64);
        j.int("slo_searches", self.slo_searches as u64);
        j.raw("horizon_secs", &json_f64(self.horizon_secs));
        j.raw("elapsed_secs", &json_f64(self.elapsed_secs));
        j.raw("points_per_sec", &json_f64(self.points_per_sec));
        j.int("steady_state_allocs", self.steady_state_allocs);
        j.raw("allocs_per_point", &json_f64(self.allocs_per_point));
        j.int("analytic_fallbacks", self.analytic_fallbacks);
        j.raw("slo_rates_fps", &format!("[{slo_rates}]"));
    }
}

/// Maximum and mean relative p99 drift between two aligned runs, plus the
/// number of grid points compared. Only points where the simulation
/// horizon spans at least [`DRIFT_MIN_RELAXATIONS`] relaxation times
/// contribute — elsewhere the finite-horizon p99 is seed noise, not a
/// reference.
fn p99_drift(analytic: &ServeReport, simulation: &ServeReport) -> (f64, f64, usize) {
    let n = analytic.grid_points / analytic.engines.max(1);
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for (i, (&a, &s)) in analytic
        .p99_ms
        .iter()
        .zip(simulation.p99_ms.iter())
        .enumerate()
    {
        let (engine, model, dtype) = COMBOS[i / n];
        let service = engine
            .latency(model, dtype, 1)
            .expect("combo supported")
            .as_secs_f64();
        let frac = grid_frac(i % n, n);
        let relaxations = simulation.horizon_secs * (1.0 - frac) * (1.0 - frac) / service;
        if relaxations < DRIFT_MIN_RELAXATIONS || !(a > 0.0 && s > 0.0) {
            continue;
        }
        let drift = (a - s).abs() / a.max(s);
        max = max.max(drift);
        sum += drift;
        count += 1;
    }
    (
        max,
        if count == 0 { 0.0 } else { sum / count as f64 },
        count,
    )
}

/// Renders the `BENCH_serve.json` artifact: both runs plus the headline
/// speedup (the acceptance bar is ≥ 5×) and the analytic-vs-simulation
/// drift (must stay within [`P99_DRIFT_TOLERANCE`]). Built on the shared
/// [`crate::harness::JsonBuilder`], which reproduces the retired
/// hand-rolled emitter's byte format exactly (see the byte-identity test).
pub fn comparison_json(analytic: &ServeReport, simulation: &ServeReport) -> String {
    let speedup = if analytic.elapsed_secs > 0.0 {
        simulation.elapsed_secs / analytic.elapsed_secs
    } else {
        f64::INFINITY
    };
    let (drift_max, drift_mean, drift_points) = p99_drift(analytic, simulation);
    let slo_drift_max = analytic
        .slo_rates
        .iter()
        .zip(simulation.slo_rates.iter())
        .map(|(&a, &s)| {
            if a.max(s) > 0.0 {
                (a - s).abs() / a.max(s)
            } else {
                0.0
            }
        })
        .fold(0.0f64, f64::max);
    let mut j = crate::harness::JsonBuilder::new();
    j.str("benchmark", "dl_serving");
    j.object("analytic", |j| analytic.fill(j));
    j.object("simulation", |j| simulation.fill(j));
    j.raw("speedup", &json_f64(speedup));
    j.raw("p99_drift_max", &json_f64(drift_max));
    j.raw("p99_drift_mean", &json_f64(drift_mean));
    j.int("p99_drift_points", drift_points as u64);
    j.raw("slo_rate_drift_max", &json_f64(slo_drift_max));
    j.finish()
}

/// Declares the DL-serving experiment for the unified runner
/// (`bench --run serve`): grid, execute, and the gates that used to
/// live in the `bench` binary's `--serve --check` branch.
pub fn experiment() -> crate::runner::Experiment {
    use crate::runner::{gate_num, ExpConfig, Experiment};
    Experiment {
        name: "serve",
        about: "analytic M/D/1 fast path vs event simulation on the fig. 11/12 grid",
        artifact: "BENCH_serve.json",
        configs: |scale| {
            let defaults = ServeOptions::default();
            let slo_ms = defaults
                .slo_grid_ms
                .iter()
                .map(|&s| format!("{s}"))
                .collect::<Vec<_>>()
                .join(",");
            vec![ExpConfig::new()
                .u64(
                    "points",
                    scale.points.unwrap_or(defaults.points_per_engine) as u64,
                )
                .f64("horizon_secs", defaults.horizon_secs)
                .str("slo_ms", &slo_ms)
                .u64("seed", crate::harness::mix_seed(scale.seed, 0))]
        },
        execute: |cfg, alloc_count| {
            let slo_grid_ms = cfg
                .get_str("slo_ms")
                .split(',')
                .map(|s| s.trim().parse::<f64>())
                .collect::<Result<Vec<f64>, _>>()
                .map_err(|e| format!("bad slo_ms grid: {e}"))?;
            let mut opts = ServeOptions {
                points_per_engine: cfg.get_u64("points") as usize,
                horizon_secs: cfg.get_f64("horizon_secs"),
                slo_grid_ms,
                seed: cfg.seed(),
                analytic: true,
            };
            let analytic = serving(&opts, alloc_count);
            opts.analytic = false;
            let simulation = serving(&opts, alloc_count);
            Ok(comparison_json(&analytic, &simulation))
        },
        gates: |doc| {
            let mut f = Vec::new();
            if let Some(speedup) = gate_num(doc, "dl_serving", "speedup", &mut f) {
                if speedup < 5.0 {
                    f.push(format!(
                        "analytic path no longer ≥5× faster than simulation (speedup {speedup:.2})"
                    ));
                }
            }
            if let Some(allocs) = gate_num(doc, "analytic", "steady_state_allocs", &mut f) {
                if allocs != 0.0 {
                    f.push(format!(
                        "analytic hot path allocated {allocs:.0} times during the measured phase"
                    ));
                }
            }
            if let Some(drift_max) = gate_num(doc, "dl_serving", "p99_drift_max", &mut f) {
                if drift_max > P99_DRIFT_TOLERANCE {
                    f.push(format!(
                        "analytic-vs-simulation p99 drift {drift_max:.3} exceeds {P99_DRIFT_TOLERANCE}"
                    ));
                }
            }
            f
        },
        baseline_gates: |doc, baseline| {
            let mut f = Vec::new();
            let run_pps = gate_num(doc, "analytic", "points_per_sec", &mut f);
            let base_pps = gate_num(baseline, "analytic", "points_per_sec", &mut f);
            if let (Some(run), Some(base)) = (run_pps, base_pps) {
                if run < 0.7 * base {
                    f.push(format!(
                        "analytic points/sec regressed >30%: {run:.0} vs baseline {base:.0}"
                    ));
                }
            }
            f
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(analytic: bool) -> ServeOptions {
        ServeOptions {
            points_per_engine: 8,
            horizon_secs: 60.0,
            slo_grid_ms: vec![25.0, 50.0],
            seed: 7,
            analytic,
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = serving(&small(true), &|| 0);
        let b = serving(&small(true), &|| 0);
        assert_eq!(a.p99_ms, b.p99_ms);
        assert_eq!(a.slo_rates, b.slo_rates);
        assert_eq!(a.analytic_fallbacks, b.analytic_fallbacks);
    }

    #[test]
    fn analytic_and_simulation_agree_within_tolerance() {
        let a = serving(&small(true), &|| 0);
        let s = serving(&small(false), &|| 0);
        assert_eq!(a.p99_ms.len(), s.p99_ms.len());
        let (drift_max, _, points) = p99_drift(&a, &s);
        assert!(points >= 8, "only {points} converged points compared");
        assert!(
            drift_max <= P99_DRIFT_TOLERANCE,
            "p99 drift {drift_max:.3} exceeds {P99_DRIFT_TOLERANCE}"
        );
        // SLO rates: a *well-sampled* simulated search may be arbitrarily
        // conservative (bucket upper bounds on a flat p99 curve) but never
        // optimistic beyond bisection tolerance + noise vs the exact
        // model. Under-sampled searches (slow engine, capacity-scaled
        // horizon) are seed noise in either direction and are only held to
        // basic sanity.
        let slos = small(true).slo_grid_ms.len();
        for (i, (&ar, &sr)) in a.slo_rates.iter().zip(s.slo_rates.iter()).enumerate() {
            let (engine, model, dtype) = COMBOS[i / slos];
            let service = engine.latency(model, dtype, 1).unwrap().as_secs_f64();
            let capacity = 1.0 / service;
            if ar == 0.0 {
                // Service time alone misses the SLO: both searches must
                // agree that no rate works.
                assert_eq!(sr, 0.0, "entry {i}: sim found rate {sr} where none fits");
                continue;
            }
            assert!(sr >= 0.0 && sr <= capacity, "entry {i}: sim rate {sr}");
            let sim_horizon = (2000.0 / capacity).clamp(60.0, 3600.0);
            if 0.01 * sr * sim_horizon >= SLO_MIN_TAIL_SAMPLES {
                assert!(
                    sr <= ar * (1.0 + SLO_RATE_OPTIMISM_TOLERANCE),
                    "entry {i}: simulated rate {sr:.2} optimistic vs exact {ar:.2}"
                );
            }
        }
    }

    #[test]
    fn simulation_mode_never_falls_back() {
        let s = serving(&small(false), &|| 0);
        assert_eq!(s.analytic_fallbacks, 0);
        assert_eq!(s.mode, "simulation");
        assert_eq!(s.grid_points, COMBOS.len() * 8);
        assert_eq!(s.p99_ms.len(), s.grid_points);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let a = serving(&small(true), &|| 0);
        let s = serving(&small(false), &|| 0);
        let doc = comparison_json(&a, &s);
        assert!(doc.contains("\"benchmark\": \"dl_serving\""));
        assert!(doc.contains("\"speedup\""));
        assert!(doc.contains("\"p99_drift_max\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    /// The retired hand-rolled emitter, kept verbatim as the fixture for
    /// the byte-identity test below (the pattern every JsonBuilder port
    /// in this workspace follows). Delete only together with that test.
    fn handrolled_comparison_json(analytic: &ServeReport, simulation: &ServeReport) -> String {
        fn report_to_json(r: &ServeReport) -> String {
            let slo_rates = r
                .slo_rates
                .iter()
                .map(|&x| json_f64(x))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                concat!(
                    "{{\n",
                    "    \"mode\": \"{}\",\n",
                    "    \"engines\": {},\n",
                    "    \"grid_points\": {},\n",
                    "    \"slo_searches\": {},\n",
                    "    \"horizon_secs\": {},\n",
                    "    \"elapsed_secs\": {},\n",
                    "    \"points_per_sec\": {},\n",
                    "    \"steady_state_allocs\": {},\n",
                    "    \"allocs_per_point\": {},\n",
                    "    \"analytic_fallbacks\": {},\n",
                    "    \"slo_rates_fps\": [{}]\n",
                    "  }}"
                ),
                r.mode,
                r.engines,
                r.grid_points,
                r.slo_searches,
                json_f64(r.horizon_secs),
                json_f64(r.elapsed_secs),
                json_f64(r.points_per_sec),
                r.steady_state_allocs,
                json_f64(r.allocs_per_point),
                r.analytic_fallbacks,
                slo_rates,
            )
        }
        let speedup = if analytic.elapsed_secs > 0.0 {
            simulation.elapsed_secs / analytic.elapsed_secs
        } else {
            f64::INFINITY
        };
        let (drift_max, drift_mean, drift_points) = p99_drift(analytic, simulation);
        let slo_drift_max = analytic
            .slo_rates
            .iter()
            .zip(simulation.slo_rates.iter())
            .map(|(&a, &s)| {
                if a.max(s) > 0.0 {
                    (a - s).abs() / a.max(s)
                } else {
                    0.0
                }
            })
            .fold(0.0f64, f64::max);
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"dl_serving\",\n",
                "  \"analytic\": {},\n",
                "  \"simulation\": {},\n",
                "  \"speedup\": {},\n",
                "  \"p99_drift_max\": {},\n",
                "  \"p99_drift_mean\": {},\n",
                "  \"p99_drift_points\": {},\n",
                "  \"slo_rate_drift_max\": {}\n",
                "}}\n"
            ),
            report_to_json(analytic),
            report_to_json(simulation),
            json_f64(speedup),
            json_f64(drift_max),
            json_f64(drift_mean),
            drift_points,
            json_f64(slo_drift_max),
        )
    }

    #[test]
    fn builder_port_is_byte_identical_to_the_handrolled_emitter() {
        let a = serving(&small(true), &|| 0);
        let s = serving(&small(false), &|| 0);
        assert_eq!(comparison_json(&a, &s), handrolled_comparison_json(&a, &s));
        // Degenerate shapes too: zero elapsed (null speedup) and empty
        // SLO grids (inline empty array).
        let mut zero = a.clone();
        zero.elapsed_secs = 0.0;
        zero.slo_rates.clear();
        let mut sim = s.clone();
        sim.slo_rates.clear();
        assert_eq!(
            comparison_json(&zero, &sim),
            handrolled_comparison_json(&zero, &sim)
        );
    }
}
