//! Seeded chaos campaigns over the fault-tolerant orchestration loop.
//!
//! Each campaign loads the 60-SoC cluster to a board-aligned mix of
//! interactive live streams and batch archive jobs, draws a correlated
//! fault schedule (board drops, ESB port-group partitions, PSU brownouts,
//! plus the independent per-SoC kinds) from the campaign seed, and drives
//! the [`RecoveryEngine`] step by step, checking invariants between every
//! pair of events:
//!
//! 1. no Interactive ("critical") workload is ever lost,
//! 2. the workload ledger conserves submissions
//!    (`submitted = running + completed + shed + lost`) and its shed/lost
//!    counts match the telemetry counters,
//! 3. the placement index agrees with a linear scan of the cluster, and
//! 4. post-run availability stays above the campaign floor.
//!
//! Every campaign is paired with an *independent twin* at equal per-SoC
//! death AFR: the twin replays the same base schedule but re-spreads each
//! board drop as five independent flash deaths at seeded uniform times
//! (partitions and brownouts kill nobody, so they have no independent
//! counterpart and are omitted). Comparing the pair isolates the cost of
//! *correlation* — same failure volume, different arrival shape — which is
//! the §8 concern this module quantifies: a burst of five evacuations
//! overwhelms the instantaneous headroom a trickle would be absorbed by.
//!
//! A campaign that violates an invariant is shrunk to a minimal fault
//! schedule by greedy event removal, and the report carries a one-line
//! repro (`bench --chaos --seed N --step K`). Equal seeds give
//! byte-identical replays.

use std::collections::HashSet;
use std::time::Instant;

use crate::harness::JsonBuilder;

use socc_cluster::faults::{
    DomainFault, FailureDomains, FaultEvent, FaultInjector, FaultKind, FaultSchedule,
};
use socc_cluster::orchestrator::OrchestratorConfig;
use socc_cluster::recovery::{RecoveryConfig, RecoveryEngine, WorkloadFate};
use socc_cluster::workload::{WorkloadId, WorkloadSpec};
use socc_sim::rng::SimRng;
use socc_sim::stats::percentile_mut;
use socc_sim::time::{SimDuration, SimTime};

/// Live V1 streams submitted per board quantum (3 SoCs × 13 streams).
const STREAMS_PER_BOARD: usize = 39;
/// Archive jobs per board quantum (each fills one SoC); the last board
/// carries none, leaving two SoCs of headroom a fault trickle can absorb.
const ARCHIVES_PER_BOARD: usize = 2;
/// At most this many whole-board drops per campaign, so the surviving
/// capacity always holds every interactive stream.
const MAX_BOARD_EVENTS: usize = 2;
/// At most one fabric partition per campaign.
const MAX_PARTITIONS: usize = 1;
/// At most one PSU brownout per campaign.
const MAX_BROWNOUTS: usize = 1;
/// Cap on permanent single-SoC deaths (flash/memory) per campaign.
const MAX_PERM_SOC_DEATHS: usize = 8;
/// No per-SoC fault is injected inside this pre-horizon margin: `finish()`
/// conservatively books any workload still mid-recovery as Lost, so every
/// fault needs room for detection plus the full retry/preemption ladder
/// before the books close. Even a transient hang strands its victims if
/// their first retry lands past the horizon.
const STRAND_MARGIN_SECS: u64 = 60;

/// Fault classes with a meaningful MTTR histogram (partitions never
/// migrate anything, so they have none).
const MTTR_CLASSES: [&str; 4] = ["crash", "hang", "thermal_trip", "link_loss"];

/// Campaign-sweep parameters.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Number of campaign *pairs* (each runs correlated + independent).
    pub campaigns: usize,
    /// Master seed; campaign `k` derives its own seed from it.
    pub seed: u64,
    /// Per-campaign horizon in seconds.
    pub horizon_secs: u64,
    /// Post-run availability must not fall below this.
    pub availability_floor: f64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        Self {
            campaigns: 256,
            seed: 42,
            horizon_secs: 600,
            availability_floor: 0.90,
        }
    }
}

/// Per-class MTTR summary from one campaign (or aggregated).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMttr {
    /// Detector class label (`crash`, `hang`, …).
    pub class: &'static str,
    /// Recoveries observed.
    pub count: u64,
    /// Mean repair time in milliseconds.
    pub mean_ms: f64,
    /// Median repair time in milliseconds.
    pub p50_ms: f64,
}

/// Everything one campaign run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Campaign index (the `--step` argument).
    pub index: usize,
    /// `true` for the correlated schedule, `false` for the twin.
    pub correlated: bool,
    /// Scheduled fault events actually injected.
    pub schedule_events: usize,
    /// Events dropped by the safety caps and the pre-horizon margin.
    pub truncated_events: usize,
    /// Post-run availability.
    pub availability: f64,
    /// Invariant violations, empty on a clean run.
    pub violations: Vec<String>,
    /// Workloads shed (brownout envelope + preempting admission).
    pub sheds: u64,
    /// Workloads lost.
    pub losses: u64,
    /// Successful post-fault re-placements.
    pub migrations: u64,
    /// Placement retries.
    pub retries: u64,
    /// Partitioned SoCs the BMC side channel told apart from crashes.
    pub partitions_detected: u64,
    /// Soft anti-affinity placements that fell back to the home board.
    pub anti_affinity_fallbacks: u64,
    /// Per-class MTTR observed this campaign.
    pub mttr: Vec<ClassMttr>,
}

/// One shrunk invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationRecord {
    /// Campaign index.
    pub campaign: usize,
    /// Which side of the pair violated.
    pub correlated: bool,
    /// First violation message.
    pub detail: String,
    /// Events left after greedy shrinking (minimal repro schedule).
    pub minimal_events: usize,
    /// One-line repro command.
    pub repro: String,
}

/// Aggregated result of a chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Options the sweep ran with.
    pub options: ChaosOptions,
    /// Every campaign outcome, correlated and independent interleaved.
    pub outcomes: Vec<CampaignOutcome>,
    /// Shrunk violations (empty on a clean sweep).
    pub violations: Vec<ViolationRecord>,
    /// Mean availability across correlated campaigns.
    pub correlated_mean: f64,
    /// Worst correlated campaign.
    pub correlated_min: f64,
    /// Mean availability across independent twins.
    pub independent_mean: f64,
    /// Worst independent twin.
    pub independent_min: f64,
    /// Per-class MTTR pooled over every campaign.
    pub mttr: Vec<ClassMttr>,
    /// Wall-clock seconds for the sweep.
    pub elapsed_secs: f64,
    /// Engine runs (2 × campaigns) per wall-clock second.
    pub campaigns_per_sec: f64,
}

/// Campaign `k`'s private seed ([`crate::harness::mix_seed`]).
fn campaign_seed(seed: u64, k: usize) -> u64 {
    crate::harness::mix_seed(seed, k)
}

/// Draws campaign `k`'s correlated schedule and its independent twin.
/// Returns `(correlated, independent, truncated_event_count)`.
pub fn campaign_schedules(opts: &ChaosOptions, k: usize) -> (FaultSchedule, FaultSchedule, usize) {
    let domains = FailureDomains::for_cluster(60);
    let horizon = SimDuration::from_secs(opts.horizon_secs);
    let mut rng = SimRng::seed(campaign_seed(opts.seed, k)).split("chaos-schedule");
    // Sweep axes: board-drop intensity by campaign index, partition
    // duration on a coarser stride — nine (tier, duration) combinations.
    let tier = (k % 3 + 1) as f64;
    let partition_secs = [60, 150, 300][(k / 3) % 3];
    // Rates are accelerated so a ten-minute campaign actually sees events:
    // expected counts per campaign ≈ 0.66·tier board drops, 1.5 hangs,
    // 0.5 flash deaths, 0.3 thermal trips, 0.54 partitions, 0.28 brownouts.
    let injector = FaultInjector {
        flash_afr: 440.0,
        hang_afr: 1300.0,
        memory_afr: 0.0,
        thermal_afr: 260.0,
        link_afr: 0.0,
        board_afr: 3000.0 * tier,
        partition_afr: 10_500.0,
        brownout_afr: 7_900.0,
        partition_duration: SimDuration::from_secs(partition_secs),
        brownout_duration: SimDuration::from_secs(150),
    };
    let raw = injector.schedule_all(&domains, horizon, &mut rng);

    let cutoff = SimTime::from_secs(opts.horizon_secs.saturating_sub(STRAND_MARGIN_SECS));
    let mut truncated = 0usize;
    let mut soc = Vec::new();
    let mut perm_deaths = 0usize;
    for e in &raw.soc {
        if e.at > cutoff {
            truncated += 1;
            continue;
        }
        if matches!(e.kind, FaultKind::Flash | FaultKind::Memory) {
            if perm_deaths >= MAX_PERM_SOC_DEATHS {
                truncated += 1;
                continue;
            }
            perm_deaths += 1;
        }
        soc.push(*e);
    }
    let (mut board_events, mut partitions, mut brownouts) = (0usize, 0usize, 0usize);
    let mut domain = Vec::new();
    let mut downed_boards = Vec::new();
    for e in &raw.domain {
        match e.fault {
            DomainFault::BoardDown { board } => {
                if board_events >= MAX_BOARD_EVENTS || e.at > cutoff {
                    truncated += 1;
                    continue;
                }
                board_events += 1;
                downed_boards.push(board);
                domain.push(*e);
            }
            DomainFault::FabricPartition { .. } => {
                if partitions >= MAX_PARTITIONS {
                    truncated += 1;
                    continue;
                }
                partitions += 1;
                domain.push(*e);
            }
            DomainFault::PowerBrownout { .. } => {
                if brownouts >= MAX_BROWNOUTS {
                    truncated += 1;
                    continue;
                }
                brownouts += 1;
                domain.push(*e);
            }
        }
    }
    let correlated = FaultSchedule {
        soc: soc.clone(),
        domain,
    };
    // Independent twin: identical base events, each board burst re-spread
    // as five independent flash deaths at seeded uniform times — the same
    // realized per-SoC death volume without the correlation.
    let mut spread = SimRng::seed(campaign_seed(opts.seed, k)).split("chaos-spread");
    let max_at = opts.horizon_secs.saturating_sub(STRAND_MARGIN_SECS) as f64;
    let mut twin = soc;
    for board in downed_boards {
        for s in domains.socs_of_board(board) {
            twin.push(FaultEvent {
                at: SimTime::from_secs_f64(spread.uniform(0.0, max_at)),
                soc: s,
                kind: FaultKind::Flash,
            });
        }
    }
    twin.sort_by_key(|e| (e.at, e.soc));
    let independent = FaultSchedule {
        soc: twin,
        domain: Vec::new(),
    };
    (correlated, independent, truncated)
}

/// Loads the cluster board-aligned: 39 streams (3 SoCs) + 2 archive jobs
/// (2 SoCs) per board, no archives on the last board. Returns the set of
/// interactive ("critical") ids and the total submitted.
fn submit_load(eng: &mut RecoveryEngine) -> (HashSet<WorkloadId>, usize) {
    let video = socc_video::vbench::by_id("V1").expect("V1 in vbench");
    let boards = eng.domains().boards;
    let mut interactive = HashSet::new();
    let mut submitted = 0usize;
    for board in 0..boards {
        for _ in 0..STREAMS_PER_BOARD {
            let id = eng
                .submit(WorkloadSpec::LiveStreamCpu {
                    video: video.clone(),
                })
                .expect("stream fits the board quantum");
            interactive.insert(id);
            submitted += 1;
        }
        let archives = if board + 1 == boards {
            0
        } else {
            ARCHIVES_PER_BOARD
        };
        for _ in 0..archives {
            eng.submit(WorkloadSpec::ArchiveJob {
                video: video.clone(),
                frames: 1_000_000_000,
            })
            .expect("archive fits the board quantum");
            submitted += 1;
        }
    }
    (interactive, submitted)
}

/// The step invariants. Returns the first violation, if any.
fn invariant_violation(
    eng: &RecoveryEngine,
    interactive: &HashSet<WorkloadId>,
    submitted: usize,
) -> Option<String> {
    let fates = eng.fates();
    if fates.len() != submitted {
        return Some(format!(
            "ledger holds {} fates for {submitted} submissions",
            fates.len()
        ));
    }
    let (mut running, mut completed, mut shed, mut lost) = (0u64, 0u64, 0u64, 0u64);
    for (id, rec) in fates {
        match rec.fate {
            WorkloadFate::Running => running += 1,
            WorkloadFate::Completed => completed += 1,
            WorkloadFate::Shed => shed += 1,
            WorkloadFate::Lost => {
                lost += 1;
                if interactive.contains(id) {
                    return Some(format!("critical workload {} lost", id.0));
                }
            }
        }
    }
    if running + completed + shed + lost != submitted as u64 {
        return Some(format!(
            "conservation broke: {running}+{completed}+{shed}+{lost} != {submitted}"
        ));
    }
    let t = eng.telemetry();
    let shed_counter = t.counter("ft.workloads_shed");
    if shed != shed_counter {
        return Some(format!(
            "{shed} shed fates vs ft.workloads_shed={shed_counter}"
        ));
    }
    let lost_counter = t.counter("ft.workloads_lost");
    if lost != lost_counter {
        return Some(format!(
            "{lost} lost fates vs ft.workloads_lost={lost_counter}"
        ));
    }
    let active = eng.orchestrator().active_workloads() as u64;
    if active > running {
        return Some(format!(
            "{active} active workloads exceed {running} running fates"
        ));
    }
    if !eng.orchestrator().verify_placement_index() {
        return Some("placement index diverged from the linear scan".to_string());
    }
    None
}

/// Runs one campaign against an explicit schedule, checking invariants
/// after every engine step.
fn run_with_schedule(
    opts: &ChaosOptions,
    k: usize,
    correlated: bool,
    schedule: &FaultSchedule,
    truncated: usize,
) -> CampaignOutcome {
    let mut eng = RecoveryEngine::new(
        OrchestratorConfig::default(),
        RecoveryConfig::default(),
        campaign_seed(opts.seed, k),
    );
    let (interactive, submitted) = submit_load(&mut eng);
    let horizon = SimTime::from_secs(opts.horizon_secs);
    let mut violations = Vec::new();
    eng.begin(schedule, horizon);
    while eng.step() {
        if let Some(v) = invariant_violation(&eng, &interactive, submitted) {
            violations.push(format!("mid-run: {v}"));
            break;
        }
    }
    eng.finish();
    if let Some(v) = invariant_violation(&eng, &interactive, submitted) {
        violations.push(format!("final: {v}"));
    }
    let availability = eng.availability();
    if availability + 1e-12 < opts.availability_floor {
        violations.push(format!(
            "availability {availability:.4} below floor {:.2}",
            opts.availability_floor
        ));
    }
    let t = eng.telemetry();
    let mttr = MTTR_CLASSES
        .iter()
        .map(|class| {
            let name = format!("ft.mttr_ms.{class}");
            ClassMttr {
                class,
                count: t.histogram_count(&name),
                mean_ms: t.histogram_mean(&name),
                p50_ms: t.histogram_quantile(&name, 0.5).unwrap_or(0.0),
            }
        })
        .collect();
    CampaignOutcome {
        index: k,
        correlated,
        schedule_events: schedule.len(),
        truncated_events: truncated,
        availability,
        violations,
        sheds: t.counter("ft.workloads_shed"),
        losses: t.counter("ft.workloads_lost"),
        migrations: t.counter("ft.migrations"),
        retries: t.counter("ft.retries"),
        partitions_detected: t.counter("ft.partitions_detected"),
        anti_affinity_fallbacks: t.counter("ft.anti_affinity_fallbacks"),
        mttr,
    }
}

/// Runs campaign `k` of a sweep: the correlated schedule or its twin.
pub fn run_campaign(opts: &ChaosOptions, k: usize, correlated: bool) -> CampaignOutcome {
    let (corr, indep, truncated) = campaign_schedules(opts, k);
    if correlated {
        run_with_schedule(opts, k, true, &corr, truncated)
    } else {
        run_with_schedule(opts, k, false, &indep, 0)
    }
}

/// Greedily removes events from `schedule` while the campaign still
/// violates an invariant, returning the minimal violating schedule.
fn shrink(
    opts: &ChaosOptions,
    k: usize,
    correlated: bool,
    schedule: &FaultSchedule,
) -> FaultSchedule {
    let violates = |s: &FaultSchedule| {
        !run_with_schedule(opts, k, correlated, s, 0)
            .violations
            .is_empty()
    };
    let mut current = schedule.clone();
    loop {
        let mut progressed = false;
        for i in 0..current.domain.len() {
            let mut candidate = current.clone();
            candidate.domain.remove(i);
            if violates(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if progressed {
            continue;
        }
        for i in 0..current.soc.len() {
            let mut candidate = current.clone();
            candidate.soc.remove(i);
            if violates(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Runs the full sweep: `campaigns` correlated/independent pairs, shrink
/// on every violation.
pub fn run_chaos(opts: &ChaosOptions) -> ChaosReport {
    let started = Instant::now();
    let mut outcomes = Vec::with_capacity(opts.campaigns * 2);
    for k in 0..opts.campaigns {
        let (corr, indep, truncated) = campaign_schedules(opts, k);
        outcomes.push(run_with_schedule(opts, k, true, &corr, truncated));
        outcomes.push(run_with_schedule(opts, k, false, &indep, 0));
    }
    let mut violations = Vec::new();
    for o in &outcomes {
        if o.violations.is_empty() {
            continue;
        }
        let (corr, indep, _) = campaign_schedules(opts, o.index);
        let full = if o.correlated { corr } else { indep };
        let minimal = shrink(opts, o.index, o.correlated, &full);
        violations.push(ViolationRecord {
            campaign: o.index,
            correlated: o.correlated,
            detail: o.violations[0].clone(),
            minimal_events: minimal.len(),
            repro: format!(
                "cargo run --release -p socc-bench --bin bench -- --chaos --seed {} --step {}",
                opts.seed, o.index
            ),
        });
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    let stats = |correlated: bool| {
        let vals: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.correlated == correlated)
            .map(|o| o.availability)
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        (mean, if min.is_finite() { min } else { 1.0 })
    };
    let (correlated_mean, correlated_min) = stats(true);
    let (independent_mean, independent_min) = stats(false);
    let mttr = MTTR_CLASSES
        .iter()
        .map(|class| {
            let mut count = 0u64;
            let mut weighted = 0.0f64;
            let mut p50s = Vec::new();
            for o in &outcomes {
                for c in &o.mttr {
                    if c.class == *class && c.count > 0 {
                        count += c.count;
                        weighted += c.count as f64 * c.mean_ms;
                        p50s.push(c.p50_ms);
                    }
                }
            }
            ClassMttr {
                class,
                count,
                mean_ms: if count > 0 {
                    weighted / count as f64
                } else {
                    0.0
                },
                p50_ms: percentile_mut(&mut p50s, 0.5).unwrap_or(0.0),
            }
        })
        .collect();
    let runs = outcomes.len();
    ChaosReport {
        options: opts.clone(),
        outcomes,
        violations,
        correlated_mean,
        correlated_min,
        independent_mean,
        independent_min,
        mttr,
        elapsed_secs,
        campaigns_per_sec: runs as f64 / elapsed_secs.max(1e-9),
    }
}

/// Renders one campaign outcome as deterministic text (no wall-clock).
fn render_outcome(o: &CampaignOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let kind = if o.correlated {
        "correlated"
    } else {
        "independent"
    };
    let _ = writeln!(
        s,
        "campaign {} ({kind}): {} events ({} truncated), availability {:.6}",
        o.index, o.schedule_events, o.truncated_events, o.availability
    );
    let _ = writeln!(
        s,
        "  sheds {} losses {} migrations {} retries {} partitions_detected {} fallbacks {}",
        o.sheds,
        o.losses,
        o.migrations,
        o.retries,
        o.partitions_detected,
        o.anti_affinity_fallbacks
    );
    for c in &o.mttr {
        if c.count > 0 {
            let _ = writeln!(
                s,
                "  mttr {}: n={} mean {:.1} ms p50 {:.1} ms",
                c.class, c.count, c.mean_ms, c.p50_ms
            );
        }
    }
    if o.violations.is_empty() {
        let _ = writeln!(s, "  invariants: ok");
    } else {
        for v in &o.violations {
            let _ = writeln!(s, "  VIOLATION: {v}");
        }
    }
    s
}

/// Replays campaign `k` (both sides of the pair) and renders the outcome.
/// Pure function of `(opts, k)` — two calls give byte-identical strings,
/// which is what makes `--chaos --seed N --step K` a real repro.
pub fn replay(opts: &ChaosOptions, k: usize) -> String {
    let correlated = run_campaign(opts, k, true);
    let independent = run_campaign(opts, k, false);
    format!(
        "{}{}",
        render_outcome(&correlated),
        render_outcome(&independent)
    )
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the `BENCH_chaos.json` artifact on [`JsonBuilder`]. Floats
/// stay on the mode's four-decimal `json_f64` (via `raw`), so the port
/// is byte-identical to the hand-rolled emitter it replaced and the
/// committed baseline stays valid.
pub fn report_json(r: &ChaosReport) -> String {
    let total_truncated: usize = r
        .outcomes
        .iter()
        .filter(|o| o.correlated)
        .map(|o| o.truncated_events)
        .sum();
    let sum = |f: fn(&CampaignOutcome) -> u64| r.outcomes.iter().map(f).sum::<u64>();
    let mut j = JsonBuilder::new();
    j.str("benchmark", "chaos")
        .int("campaigns", r.options.campaigns as u64)
        .int("seed", r.options.seed)
        .int("horizon_secs", r.options.horizon_secs)
        .raw(
            "availability_floor",
            &json_f64(r.options.availability_floor),
        )
        .raw("elapsed_secs", &json_f64(r.elapsed_secs))
        .raw("campaigns_per_sec", &json_f64(r.campaigns_per_sec))
        .int("invariant_violations", r.violations.len() as u64)
        .int("truncated_events", total_truncated as u64);
    j.object("availability", |j| {
        j.raw("independent_mean", &json_f64(r.independent_mean))
            .raw("independent_min", &json_f64(r.independent_min))
            .raw("correlated_mean", &json_f64(r.correlated_mean))
            .raw("correlated_min", &json_f64(r.correlated_min))
            .raw(
                "correlation_gap",
                &json_f64(r.independent_mean - r.correlated_mean),
            );
    });
    j.object("mttr_ms", |j| {
        for c in &r.mttr {
            j.raw(
                c.class,
                &format!(
                    "{{ \"count\": {}, \"mean_ms\": {}, \"p50_ms\": {} }}",
                    c.count,
                    json_f64(c.mean_ms),
                    json_f64(c.p50_ms)
                ),
            );
        }
    });
    j.object("counters", |j| {
        j.int("workloads_shed", sum(|o| o.sheds))
            .int("workloads_lost", sum(|o| o.losses))
            .int("migrations", sum(|o| o.migrations))
            .int("retries", sum(|o| o.retries))
            .int("partitions_detected", sum(|o| o.partitions_detected))
            .int(
                "anti_affinity_fallbacks",
                sum(|o| o.anti_affinity_fallbacks),
            );
    });
    let viols: Vec<String> = r
        .violations
        .iter()
        .map(|v| {
            format!(
                "\"campaign {} ({}): {}; minimal schedule {} events; repro: {}\"",
                v.campaign,
                if v.correlated {
                    "correlated"
                } else {
                    "independent"
                },
                json_escape(&v.detail),
                v.minimal_events,
                json_escape(&v.repro),
            )
        })
        .collect();
    j.list("violations", &viols);
    j.finish()
}

/// MTTR classes the baseline gate watches (must match the report).
pub const MTTR_GATE_CLASSES: [&str; 4] = ["crash", "hang", "thermal_trip", "link_loss"];

/// Declares the enclosure chaos experiment for the unified runner
/// (`bench --run chaos`): grid, execute, and the gates that used to
/// live in the `bench` binary's `--chaos` branch. The smoke tier drops
/// from 256 to 64 campaign pairs (the old CI scale).
pub fn experiment() -> crate::runner::Experiment {
    use crate::runner::{gate_num, ExpConfig, Experiment};
    Experiment {
        name: "chaos",
        about: "correlated vs independent failure-domain campaigns on one enclosure",
        artifact: "BENCH_chaos.json",
        configs: |scale| {
            let full = ChaosOptions::default();
            let campaigns =
                scale
                    .campaigns
                    .unwrap_or(if scale.smoke { 64 } else { full.campaigns });
            vec![ExpConfig::new()
                .u64("campaigns", campaigns as u64)
                .u64("horizon_secs", full.horizon_secs)
                .f64("availability_floor", full.availability_floor)
                .u64("seed", crate::harness::mix_seed(scale.seed, 0))]
        },
        execute: |cfg, _alloc_count| {
            let report = run_chaos(&ChaosOptions {
                campaigns: cfg.get_u64("campaigns") as usize,
                seed: cfg.seed(),
                horizon_secs: cfg.get_u64("horizon_secs"),
                availability_floor: cfg.get_f64("availability_floor"),
            });
            Ok(report_json(&report))
        },
        gates: |doc| {
            let mut f = Vec::new();
            for v in crate::harness::extract_list(doc, "violations") {
                f.push(format!("invariant violation: {v}"));
            }
            let corr = gate_num(doc, "availability", "correlated_mean", &mut f);
            let indep = gate_num(doc, "availability", "independent_mean", &mut f);
            if let (Some(corr), Some(indep)) = (corr, indep) {
                if corr >= indep {
                    f.push(format!(
                        "correlated availability {corr:.4} not below independent {indep:.4} — \
                         the domain model lost its teeth"
                    ));
                }
            }
            f
        },
        baseline_gates: |doc, baseline| {
            let mut f = Vec::new();
            for class in MTTR_GATE_CLASSES {
                let (Some(base_p50), Some(run_p50)) = (
                    crate::harness::extract_num(baseline, class, "p50_ms"),
                    crate::harness::extract_num(doc, class, "p50_ms"),
                ) else {
                    continue;
                };
                if base_p50 > 0.0 && run_p50 > 1.3 * base_p50 {
                    f.push(format!(
                        "{class} MTTR p50 regressed >30%: {run_p50:.1} ms vs baseline {base_p50:.1} ms"
                    ));
                }
            }
            f
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChaosOptions {
        ChaosOptions {
            campaigns: 4,
            seed: 42,
            horizon_secs: 600,
            availability_floor: 0.90,
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_campaign(&small(), 1, true);
        let b = run_campaign(&small(), 1, true);
        assert_eq!(a, b);
        assert_eq!(replay(&small(), 2), replay(&small(), 2));
    }

    #[test]
    fn schedules_respect_safety_caps() {
        let opts = small();
        for k in 0..12 {
            let (corr, indep, _) = campaign_schedules(&opts, k);
            let boards = corr
                .domain
                .iter()
                .filter(|e| matches!(e.fault, DomainFault::BoardDown { .. }))
                .count();
            assert!(boards <= MAX_BOARD_EVENTS);
            assert!(indep.domain.is_empty());
            // The twin carries five spread deaths per board drop.
            assert_eq!(indep.soc.len(), corr.soc.len() + 5 * boards);
            let cutoff = SimTime::from_secs(opts.horizon_secs - STRAND_MARGIN_SECS);
            for e in corr.soc.iter().chain(indep.soc.iter()) {
                assert!(e.at <= cutoff, "soc fault inside the pre-horizon margin");
            }
        }
    }

    #[test]
    fn clean_sweep_has_no_violations() {
        let report = run_chaos(&small());
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        assert_eq!(report.outcomes.len(), 8);
        for o in &report.outcomes {
            assert!(
                o.availability >= 0.90,
                "campaign {}: {}",
                o.index,
                o.availability
            );
        }
    }

    #[test]
    fn correlated_availability_sits_below_independent() {
        // Deterministic for the fixed seed: the paired sweep must show the
        // correlation penalty the model is built to expose.
        let opts = ChaosOptions {
            campaigns: 12,
            ..small()
        };
        let report = run_chaos(&opts);
        assert!(
            report.correlated_mean < report.independent_mean,
            "correlated {} vs independent {}",
            report.correlated_mean,
            report.independent_mean
        );
    }

    #[test]
    fn impossible_floor_shrinks_to_the_empty_schedule() {
        // With a floor above 1.0 every schedule violates — including the
        // empty one — so greedy shrinking must strip every event.
        let opts = ChaosOptions {
            campaigns: 1,
            seed: 7,
            horizon_secs: 600,
            availability_floor: 1.01,
        };
        let (corr, _, _) = campaign_schedules(&opts, 0);
        if corr.is_empty() {
            return; // nothing to shrink at this seed
        }
        let minimal = shrink(&opts, 0, true, &corr);
        assert!(minimal.is_empty(), "{} events left", minimal.len());
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = run_chaos(&ChaosOptions {
            campaigns: 2,
            ..small()
        });
        let doc = report_json(&report);
        assert!(doc.contains("\"benchmark\": \"chaos\""));
        assert!(doc.contains("\"correlation_gap\""));
        assert!(doc.contains("\"crash\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    /// The retired hand-rolled emitter, kept verbatim as the fixture the
    /// [`JsonBuilder`] port must reproduce byte for byte (the committed
    /// `BENCH_chaos.json` baseline was generated with this code).
    fn handrolled_report_json(r: &ChaosReport) -> String {
        use std::fmt::Write as _;
        let total_truncated: usize = r
            .outcomes
            .iter()
            .filter(|o| o.correlated)
            .map(|o| o.truncated_events)
            .sum();
        let sum = |f: fn(&CampaignOutcome) -> u64| r.outcomes.iter().map(f).sum::<u64>();
        let mut mttr = String::new();
        for (i, c) in r.mttr.iter().enumerate() {
            let _ = writeln!(
                mttr,
                "    \"{}\": {{ \"count\": {}, \"mean_ms\": {}, \"p50_ms\": {} }}{}",
                c.class,
                c.count,
                json_f64(c.mean_ms),
                json_f64(c.p50_ms),
                if i + 1 == r.mttr.len() { "" } else { "," }
            );
        }
        let mut viols = String::new();
        for (i, v) in r.violations.iter().enumerate() {
            let _ = writeln!(
                viols,
                "    \"campaign {} ({}): {}; minimal schedule {} events; repro: {}\"{}",
                v.campaign,
                if v.correlated {
                    "correlated"
                } else {
                    "independent"
                },
                json_escape(&v.detail),
                v.minimal_events,
                json_escape(&v.repro),
                if i + 1 == r.violations.len() { "" } else { "," }
            );
        }
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"chaos\",\n",
                "  \"campaigns\": {},\n",
                "  \"seed\": {},\n",
                "  \"horizon_secs\": {},\n",
                "  \"availability_floor\": {},\n",
                "  \"elapsed_secs\": {},\n",
                "  \"campaigns_per_sec\": {},\n",
                "  \"invariant_violations\": {},\n",
                "  \"truncated_events\": {},\n",
                "  \"availability\": {{\n",
                "    \"independent_mean\": {},\n",
                "    \"independent_min\": {},\n",
                "    \"correlated_mean\": {},\n",
                "    \"correlated_min\": {},\n",
                "    \"correlation_gap\": {}\n",
                "  }},\n",
                "  \"mttr_ms\": {{\n",
                "{}",
                "  }},\n",
                "  \"counters\": {{\n",
                "    \"workloads_shed\": {},\n",
                "    \"workloads_lost\": {},\n",
                "    \"migrations\": {},\n",
                "    \"retries\": {},\n",
                "    \"partitions_detected\": {},\n",
                "    \"anti_affinity_fallbacks\": {}\n",
                "  }},\n",
                "  \"violations\": [\n",
                "{}",
                "  ]\n",
                "}}\n"
            ),
            r.options.campaigns,
            r.options.seed,
            r.options.horizon_secs,
            json_f64(r.options.availability_floor),
            json_f64(r.elapsed_secs),
            json_f64(r.campaigns_per_sec),
            r.violations.len(),
            total_truncated,
            json_f64(r.independent_mean),
            json_f64(r.independent_min),
            json_f64(r.correlated_mean),
            json_f64(r.correlated_min),
            json_f64(r.independent_mean - r.correlated_mean),
            mttr,
            sum(|o| o.sheds),
            sum(|o| o.losses),
            sum(|o| o.migrations),
            sum(|o| o.retries),
            sum(|o| o.partitions_detected),
            sum(|o| o.anti_affinity_fallbacks),
            viols,
        )
    }

    #[test]
    fn report_json_is_byte_identical_to_the_handrolled_emitter() {
        // A clean sweep pins the empty-array shape every committed
        // baseline carries.
        let clean = run_chaos(&small());
        assert!(clean.violations.is_empty(), "fixture sweep must be clean");
        assert_eq!(report_json(&clean), handrolled_report_json(&clean));

        // Synthetic violations exercise the array items and the
        // escaping path the clean sweep leaves idle.
        let mut dirty = clean;
        dirty.violations.push(ViolationRecord {
            campaign: 3,
            correlated: true,
            detail: "availability 0.80 < floor \"0.90\" (path \\x)".to_string(),
            minimal_events: 5,
            repro: "bench --chaos --seed 42 --step 3".to_string(),
        });
        dirty.violations.push(ViolationRecord {
            campaign: 4,
            correlated: false,
            detail: "workload lost".to_string(),
            minimal_events: 2,
            repro: "bench --chaos --seed 42 --step 4".to_string(),
        });
        assert_eq!(report_json(&dirty), handrolled_report_json(&dirty));
    }
}
