//! Shared bench-harness plumbing: seed mixing, JSON emission, and
//! allocation probes.
//!
//! Every `bench` mode used to hand-roll the same three things — a
//! `seed ^ case` mixer, a `format!`-built JSON artifact, and
//! before/after sampling of the counting allocator. This module is the
//! single copy (ROADMAP item 5's first step): [`mix_seed`] for case
//! derivation, [`JsonBuilder`] for the artifact format every committed
//! `BENCH_*.json` already uses (so ports are byte-identical), and
//! [`AllocProbe`] for steady-state allocation deltas. The counting
//! `GlobalAlloc` itself stays in the `bench` binary — installing a global
//! allocator requires `unsafe`, which this crate forbids — and reaches
//! the library as a plain `&dyn Fn() -> u64`.

use std::fmt::Write as _;

/// Derives case `k`'s private seed from a campaign master seed: a
/// golden-ratio multiply and rotate so neighbouring cases land in
/// unrelated streams, XORed into the master so every case stays
/// reproducible in isolation (`--seed S --step K` re-derives case `K`
/// without replaying the campaign).
///
/// This is the exact mixing the committed chaos/netval artifacts and
/// their repro lines were generated with; changing it would orphan them.
pub fn mix_seed(seed: u64, k: usize) -> u64 {
    seed ^ (k as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
}

/// Renders a float as fixed three-decimal JSON, or `null` when not
/// finite (JSON has no `inf`/`nan`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Builds the harness's JSON artifact format: two-space indentation per
/// nesting level, one `"key": value` per line, no trailing newline
/// before the root's closing brace.
///
/// The workspace deliberately carries no JSON dependency; this replaces
/// the per-mode `format!(concat!(...))` blocks and reproduces their
/// byte format exactly, so porting a mode onto it does not invalidate
/// its committed `BENCH_*.json` baseline.
#[derive(Debug)]
pub struct JsonBuilder {
    out: String,
    depth: usize,
    first: bool,
}

impl JsonBuilder {
    /// Starts the root object.
    pub fn new() -> Self {
        Self {
            out: String::from("{"),
            depth: 1,
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
        let _ = write!(self.out, "\"{key}\": ");
    }

    /// Emits a pre-rendered JSON value.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.out.push_str(value);
        self
    }

    /// Emits a string value (the artifact vocabulary needs no escaping).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "\"{value}\"");
        self
    }

    /// Emits an unsigned integer value.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Emits a bool value.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Emits a float via [`json_f64`].
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        let rendered = json_f64(value);
        self.key(key);
        self.out.push_str(&rendered);
        self
    }

    /// Emits a nested object built by `fill`.
    pub fn object(&mut self, key: &str, fill: impl FnOnce(&mut Self)) -> &mut Self {
        self.key(key);
        self.out.push('{');
        self.depth += 1;
        self.first = true;
        fill(self);
        self.depth -= 1;
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
        self.out.push('}');
        self.first = false;
        self
    }

    /// Emits an array of pre-rendered items, one per line at one deeper
    /// indent — the hand-rolled `violations`/`failures` array format.
    /// Items carry their own quoting and escaping; an empty slice
    /// renders as an open bracket, a newline, and a closing bracket at
    /// the current indent.
    pub fn list(&mut self, key: &str, items: &[String]) -> &mut Self {
        self.key(key);
        self.out.push_str("[\n");
        for (i, item) in items.iter().enumerate() {
            for _ in 0..=self.depth {
                self.out.push_str("  ");
            }
            self.out.push_str(item);
            if i + 1 != items.len() {
                self.out.push(',');
            }
            self.out.push('\n');
        }
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
        self.out.push(']');
        self
    }

    /// Closes the root object (with the trailing newline every
    /// `BENCH_*.json` ends in) and returns the document.
    pub fn finish(mut self) -> String {
        self.out.push_str("\n}\n");
        self.out
    }
}

impl Default for JsonBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Samples an allocation counter across a measured phase.
pub struct AllocProbe<'a> {
    count: &'a dyn Fn() -> u64,
    start: u64,
}

impl<'a> AllocProbe<'a> {
    /// Starts a probe at the counter's current reading. Pass the `bench`
    /// binary's counting-allocator reading, or `&|| 0` to measure
    /// nothing.
    pub fn start(count: &'a dyn Fn() -> u64) -> Self {
        Self {
            start: count(),
            count,
        }
    }

    /// Allocations observed since [`Self::start`].
    pub fn delta(&self) -> u64 {
        (self.count)() - self.start
    }

    /// Resets the probe's baseline to now.
    pub fn restart(&mut self) {
        self.start = (self.count)();
    }
}

/// Pulls `"key": <number>` out of the JSON `section` object of `doc`.
/// Good enough for the harness's own artifact format; the workspace
/// carries no JSON parser by design.
pub fn extract_num(doc: &str, section: &str, key: &str) -> Option<f64> {
    let start = doc.find(&format!("\"{section}\""))?;
    let tail = &doc[start..];
    let kpos = tail.find(&format!("\"{key}\""))?;
    let after = &tail[kpos..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"key": "<string>"` out of the JSON `section` object of `doc`
/// (the artifact vocabulary carries no escapes inside string values).
pub fn extract_str<'a>(doc: &'a str, section: &str, key: &str) -> Option<&'a str> {
    let start = doc.find(&format!("\"{section}\""))?;
    let tail = &doc[start..];
    let kpos = tail.find(&format!("\"{key}\""))?;
    let after = &tail[kpos..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Pulls `"key": true|false` out of the JSON `section` object of `doc`.
pub fn extract_bool(doc: &str, section: &str, key: &str) -> Option<bool> {
    let start = doc.find(&format!("\"{section}\""))?;
    let tail = &doc[start..];
    let kpos = tail.find(&format!("\"{key}\""))?;
    let after = &tail[kpos..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Pulls the string items of the `"key": [ ... ]` array emitted by
/// [`JsonBuilder::list`] — one quoted item per line, as in the
/// `violations`/`failures` arrays of the committed artifacts.
pub fn extract_list(doc: &str, key: &str) -> Vec<String> {
    let mut items = Vec::new();
    let Some(start) = doc.find(&format!("\"{key}\": [")) else {
        return items;
    };
    let tail = &doc[start..];
    let Some(open) = tail.find('[') else {
        return items;
    };
    let Some(close) = tail.find(']') else {
        return items;
    };
    for line in tail[open + 1..close].lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(inner) = line.strip_prefix('"').and_then(|l| l.strip_suffix('"')) {
            items.push(inner.to_string());
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_matches_the_committed_artifacts() {
        // Pinned to the mixing the chaos/netval artifacts were generated
        // with; changing it silently would orphan their repro lines.
        assert_eq!(mix_seed(42, 0), 42);
        assert_eq!(
            mix_seed(42, 17),
            42 ^ (17u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
        );
        // Distinct cases get distinct seeds even for a zero master seed.
        assert_ne!(mix_seed(0, 1), mix_seed(0, 2));
    }

    #[test]
    fn builder_reproduces_the_handrolled_format() {
        let mut j = JsonBuilder::new();
        j.str("benchmark", "demo");
        j.object("inner", |j| {
            j.str("mode", "fast");
            j.int("count", 7);
            j.f64("ratio", 1.5);
        });
        j.f64("headline", f64::INFINITY);
        let doc = j.finish();
        let expected = concat!(
            "{\n",
            "  \"benchmark\": \"demo\",\n",
            "  \"inner\": {\n",
            "    \"mode\": \"fast\",\n",
            "    \"count\": 7,\n",
            "    \"ratio\": 1.500\n",
            "  },\n",
            "  \"headline\": null\n",
            "}\n"
        );
        assert_eq!(doc, expected);
    }

    #[test]
    fn list_reproduces_the_handrolled_array_format() {
        // Non-empty: items at one deeper indent, comma on all but the
        // last, closing bracket back at the key's indent.
        let mut j = JsonBuilder::new();
        j.int("count", 2);
        j.list(
            "failures",
            &[
                "\"case 0: bad\"".to_string(),
                "\"case 1: worse\"".to_string(),
            ],
        );
        let doc = j.finish();
        let expected = concat!(
            "{\n",
            "  \"count\": 2,\n",
            "  \"failures\": [\n",
            "    \"case 0: bad\",\n",
            "    \"case 1: worse\"\n",
            "  ]\n",
            "}\n"
        );
        assert_eq!(doc, expected);

        // Empty: open bracket, newline, closing bracket — the clean-sweep
        // shape every committed chaos/netval baseline carries.
        let mut j = JsonBuilder::new();
        j.int("count", 0);
        j.list("failures", &[]);
        let doc = j.finish();
        let expected = concat!(
            "{\n",
            "  \"count\": 0,\n",
            "  \"failures\": [\n",
            "  ]\n",
            "}\n"
        );
        assert_eq!(doc, expected);
    }

    #[test]
    fn extract_num_reads_builder_output() {
        let mut j = JsonBuilder::new();
        j.object("stats", |j| {
            j.f64("speedup", 4.25);
            j.int("windows", 721);
        });
        let doc = j.finish();
        assert_eq!(extract_num(&doc, "stats", "speedup"), Some(4.25));
        assert_eq!(extract_num(&doc, "stats", "windows"), Some(721.0));
        assert_eq!(extract_num(&doc, "stats", "missing"), None);
    }

    #[test]
    fn extract_str_bool_and_list_read_builder_output() {
        let mut j = JsonBuilder::new();
        j.object("determinism", |j| {
            j.str("digest", "00c0ffee00c0ffee");
            j.bool("digests_match", true);
        });
        j.int("count", 2);
        j.list(
            "violations",
            &["\"w 3: drop\"".to_string(), "\"w 9: stall\"".to_string()],
        );
        let doc = j.finish();
        assert_eq!(
            extract_str(&doc, "determinism", "digest"),
            Some("00c0ffee00c0ffee")
        );
        assert_eq!(extract_str(&doc, "determinism", "missing"), None);
        assert_eq!(
            extract_bool(&doc, "determinism", "digests_match"),
            Some(true)
        );
        assert_eq!(extract_bool(&doc, "determinism", "digest"), None);
        assert_eq!(
            extract_list(&doc, "violations"),
            vec!["w 3: drop".to_string(), "w 9: stall".to_string()]
        );
        assert!(extract_list(&doc, "failures").is_empty());

        let mut j = JsonBuilder::new();
        j.list("violations", &[]);
        assert!(extract_list(&j.finish(), "violations").is_empty());
    }

    #[test]
    fn alloc_probe_measures_deltas() {
        use std::cell::Cell;
        let reads = Cell::new(100u64);
        let count = || reads.get();
        let mut probe = AllocProbe::start(&count);
        reads.set(140);
        assert_eq!(probe.delta(), 40);
        probe.restart();
        assert_eq!(probe.delta(), 0);
    }
}
