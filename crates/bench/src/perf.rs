//! Deterministic churn microbenchmark for the flow-level network simulator.
//!
//! [`churn`] drives a [`FlowNet`] over the paper's SoC-Cluster fabric
//! through a seeded mix of stream add/remove, transfer start, and clock
//! advances, then reports throughput (events/sec), per-event latency
//! percentiles, waterfilling work counters, and heap allocations observed
//! during the measured phase. Running it twice — once on the incremental
//! allocator and once with full recomputation forced — quantifies the
//! incremental speedup; [`comparison_json`] renders both runs as the
//! `BENCH_net.json` perf-trajectory artifact.
//!
//! The operation sequence is a pure function of [`PerfOptions::seed`], and
//! a warm-up pass sized like the measured pass runs first so every buffer,
//! hash table, and route-cache entry reaches its peak size before timing
//! starts — which is what makes the `steady_state_allocs == 0` check
//! meaningful rather than flaky.

use std::time::Instant;

use crate::harness::JsonBuilder;
use socc_net::sim::FlowNet;
use socc_net::tcp::TcpModel;
use socc_net::topology::{NodeId, Topology};
use socc_sim::rng::SimRng;
use socc_sim::stats::percentile_mut;
use socc_sim::time::SimDuration;
use socc_sim::units::{DataRate, DataSize};

/// Ceiling on concurrently in-flight transfers in the churn mix; beyond it
/// the workload drains instead of starting more.
const MAX_TRANSFERS: usize = 64;
/// Stream population is held within ±this slack of `PerfOptions::flows`.
const STREAM_SLACK: usize = 8;

/// Parameters of one churn run.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Target number of concurrently attached streams.
    pub flows: usize,
    /// Number of churn events in the measured phase (the warm-up phase runs
    /// the same count).
    pub churn_events: usize,
    /// Seed for the operation mix; equal seeds give identical op sequences.
    pub seed: u64,
    /// Force the from-scratch waterfill on every reallocation (the
    /// comparison baseline) instead of the incremental path.
    pub force_full: bool,
}

impl Default for PerfOptions {
    fn default() -> Self {
        Self {
            flows: 2000,
            churn_events: 1000,
            seed: 42,
            force_full: false,
        }
    }
}

/// Results of one churn run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// `"incremental"` or `"full"`.
    pub mode: &'static str,
    /// Target stream population.
    pub flows: usize,
    /// Measured churn events.
    pub events: usize,
    /// Wall-clock seconds of the measured phase.
    pub elapsed_secs: f64,
    /// Churn events per second.
    pub events_per_sec: f64,
    /// Allocation updates performed during the measured phase.
    pub reallocations: u64,
    /// Allocation updates per second.
    pub reallocations_per_sec: f64,
    /// Median per-event wall-clock cost, microseconds.
    pub p50_event_us: f64,
    /// 99th-percentile per-event wall-clock cost, microseconds.
    pub p99_event_us: f64,
    /// Waterfilling rounds during the measured phase.
    pub waterfill_rounds: u64,
    /// Flow-link visits inside waterfilling rounds (the core O(flows ×
    /// links) work term the incremental path is designed to shrink).
    pub waterfill_touches: u64,
    /// Flow-link visits spent checking/expanding the bottleneck
    /// certificate (incremental-path overhead; zero in full mode).
    pub cert_touches: u64,
    /// Reallocations that fell back to (or were forced onto) the
    /// from-scratch waterfill.
    pub full_recomputes: u64,
    /// Heap allocations observed during the measured phase (0 when the
    /// harness runs under the counting allocator and the hot path is
    /// clean; also 0 when no counting allocator is installed).
    pub steady_state_allocs: u64,
    /// Max |maintained − from-scratch reference| over final rates, bits/s.
    pub final_drift_bps: f64,
}

/// Runs the churn workload once and reports.
///
/// `alloc_count` is sampled immediately before and after the measured
/// phase; pass a counting-allocator reading (see the `bench` binary) to
/// measure steady-state allocations, or `&|| 0` to skip that measurement.
pub fn churn(opts: &PerfOptions, alloc_count: &dyn Fn() -> u64) -> PerfReport {
    let fabric = Topology::soc_cluster(60);
    let mut net = FlowNet::new(fabric.topology.clone(), TcpModel::inter_soc());
    net.set_force_full_recompute(opts.force_full);

    // Endpoint pool: same-PCB pairs, cross-PCB pairs, and SoC↔external —
    // the three traffic classes of the paper's fabric. Fixed and small so
    // the route cache covers every pair after pre-warming.
    let mut pool: Vec<(NodeId, NodeId)> = Vec::new();
    for i in 0..30 {
        pool.push((fabric.socs[2 * i], fabric.socs[2 * i + 1])); // same PCB
        pool.push((fabric.socs[i], fabric.socs[(i + 17) % 60])); // mostly cross-PCB
        pool.push((fabric.socs[i], fabric.external));
        pool.push((fabric.external, fabric.socs[(i * 7) % 60]));
    }

    let mut rng = SimRng::seed(opts.seed).split("net-churn");
    let mut live = Vec::with_capacity(opts.flows + STREAM_SLACK + 1);
    let mut completed = Vec::with_capacity(MAX_TRANSFERS);

    // Pre-warm: visit every endpoint pair once (fills the route cache and
    // interns every route), push the stream table to its population
    // ceiling, saturate the transfer cap, and touch the full-recompute
    // scratch path once so its buffers reach live-flow size.
    for &(src, dst) in &pool {
        let id = net
            .add_stream(src, dst, DataRate::mbps(5.0))
            .expect("pool endpoints routable");
        net.remove_stream(id).expect("just added");
    }
    while live.len() < opts.flows + STREAM_SLACK {
        let (src, dst) = pool[rng.uniform_usize(0, pool.len())];
        let demand = DataRate::mbps(rng.uniform(2.0, 20.0));
        live.push(net.add_stream(src, dst, demand).expect("routable"));
    }
    while live.len() > opts.flows {
        let id = live.swap_remove(rng.uniform_usize(0, live.len()));
        net.remove_stream(id).expect("live stream");
    }
    while net.active_transfers() < MAX_TRANSFERS {
        let (src, dst) = pool[rng.uniform_usize(0, pool.len())];
        net.start_transfer(src, dst, DataSize::megabytes(rng.uniform(1.0, 8.0)))
            .expect("routable");
    }
    {
        // One forced full recompute at peak population sizes the
        // full-waterfill scratch buffers (the incremental path falls back
        // to them when an update cascades cluster-wide).
        let forced = opts.force_full;
        net.set_force_full_recompute(true);
        let (src, dst) = pool[0];
        let id = net
            .add_stream(src, dst, DataRate::mbps(5.0))
            .expect("routable");
        net.set_force_full_recompute(forced);
        net.remove_stream(id).expect("just added");
    }

    // Warm-up churn: same policy and length as the measured phase.
    for e in 0..opts.churn_events {
        churn_event(
            &mut net,
            &mut rng,
            &pool,
            &mut live,
            &mut completed,
            opts.flows,
            e,
        );
    }

    // Measured phase.
    let mut event_ns: Vec<f64> = Vec::with_capacity(opts.churn_events);
    let stats_before = net.fairness_stats();
    let allocs_before = alloc_count();
    let started = Instant::now();
    for e in 0..opts.churn_events {
        let t0 = Instant::now();
        churn_event(
            &mut net,
            &mut rng,
            &pool,
            &mut live,
            &mut completed,
            opts.flows,
            e,
        );
        event_ns.push(t0.elapsed().as_nanos() as f64);
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    let allocs_after = alloc_count();
    let stats = net.fairness_stats();

    let reallocations = stats.reallocations - stats_before.reallocations;
    PerfReport {
        mode: if opts.force_full {
            "full"
        } else {
            "incremental"
        },
        flows: opts.flows,
        events: opts.churn_events,
        elapsed_secs,
        events_per_sec: opts.churn_events as f64 / elapsed_secs,
        reallocations,
        reallocations_per_sec: reallocations as f64 / elapsed_secs,
        p50_event_us: percentile_mut(&mut event_ns, 0.5).unwrap_or(0.0) / 1e3,
        p99_event_us: percentile_mut(&mut event_ns, 0.99).unwrap_or(0.0) / 1e3,
        waterfill_rounds: stats.waterfill_rounds - stats_before.waterfill_rounds,
        waterfill_touches: stats.waterfill_touches - stats_before.waterfill_touches,
        cert_touches: stats.cert_touches - stats_before.cert_touches,
        full_recomputes: stats.full_recomputes - stats_before.full_recomputes,
        steady_state_allocs: allocs_after - allocs_before,
        final_drift_bps: net.fairness_drift_vs_reference(),
    }
}

/// One deterministic churn event. `e % 4` picks the op: add stream, remove
/// stream, start/drain transfer, advance the clock — with hard caps so
/// state sizes stay inside the envelope the warm-up already visited.
fn churn_event(
    net: &mut FlowNet,
    rng: &mut SimRng,
    pool: &[(NodeId, NodeId)],
    live: &mut Vec<socc_net::sim::StreamId>,
    completed: &mut Vec<socc_net::sim::TransferId>,
    flows: usize,
    e: usize,
) {
    match e % 4 {
        0 if live.len() < flows + STREAM_SLACK => {
            let (src, dst) = pool[rng.uniform_usize(0, pool.len())];
            let demand = DataRate::mbps(rng.uniform(2.0, 20.0));
            live.push(net.add_stream(src, dst, demand).expect("routable"));
        }
        1 | 0 if live.len() > flows.saturating_sub(STREAM_SLACK) => {
            let id = live.swap_remove(rng.uniform_usize(0, live.len()));
            net.remove_stream(id).expect("live stream");
        }
        2 if net.active_transfers() < MAX_TRANSFERS => {
            let (src, dst) = pool[rng.uniform_usize(0, pool.len())];
            net.start_transfer(src, dst, DataSize::megabytes(rng.uniform(1.0, 8.0)))
                .expect("routable");
        }
        2 => {
            if let Some(t) = net.next_completion() {
                completed.clear();
                net.advance_into(t, completed);
            }
        }
        _ => {
            let step = SimDuration::from_millis(rng.uniform_usize(5, 50) as u64);
            completed.clear();
            net.advance_into(net.now() + step, completed);
        }
    }
}

impl PerfReport {
    /// Writes the report's fields into a [`JsonBuilder`] object.
    fn fill(&self, j: &mut JsonBuilder) {
        j.str("mode", self.mode);
        j.int("flows", self.flows as u64);
        j.int("events", self.events as u64);
        j.f64("elapsed_secs", self.elapsed_secs);
        j.f64("events_per_sec", self.events_per_sec);
        j.int("reallocations", self.reallocations);
        j.f64("reallocations_per_sec", self.reallocations_per_sec);
        j.f64("p50_event_us", self.p50_event_us);
        j.f64("p99_event_us", self.p99_event_us);
        j.int("waterfill_rounds", self.waterfill_rounds);
        j.int("waterfill_touches", self.waterfill_touches);
        j.int("cert_touches", self.cert_touches);
        j.int("full_recomputes", self.full_recomputes);
        j.int("steady_state_allocs", self.steady_state_allocs);
        j.f64("final_drift_bps", self.final_drift_bps);
    }
}

/// Renders the `BENCH_net.json` artifact: both runs plus the headline
/// ratio of from-scratch waterfilling work to incremental work (the
/// acceptance bar is ≥ 5). Built on the shared [`JsonBuilder`], which
/// reproduces the committed artifact's byte format exactly.
pub fn comparison_json(incremental: &PerfReport, full: &PerfReport) -> String {
    let ratio = if incremental.waterfill_touches > 0 {
        full.waterfill_touches as f64 / incremental.waterfill_touches as f64
    } else {
        f64::INFINITY
    };
    let mut j = JsonBuilder::new();
    j.str("benchmark", "net_churn");
    j.object("incremental", |j| incremental.fill(j));
    j.object("full", |j| full.fill(j));
    j.f64("waterfill_touch_ratio", ratio);
    j.finish()
}

/// Declares the churn microbenchmark for the unified runner
/// (`bench --run perf`): grid, execute, and the gates that used to live
/// in the `bench` binary's `--perf --check` branch.
pub fn experiment() -> crate::runner::Experiment {
    use crate::runner::{gate_num, ExpConfig, Experiment};
    Experiment {
        name: "perf",
        about: "incremental vs full max-min waterfilling under churn",
        artifact: "BENCH_net.json",
        configs: |scale| {
            vec![ExpConfig::new()
                .u64("flows", scale.flows.unwrap_or(2000) as u64)
                .u64("events", scale.events.unwrap_or(1000) as u64)
                .u64("seed", crate::harness::mix_seed(scale.seed, 0))]
        },
        execute: |cfg, alloc_count| {
            let incremental = churn(
                &PerfOptions {
                    flows: cfg.get_u64("flows") as usize,
                    churn_events: cfg.get_u64("events") as usize,
                    seed: cfg.seed(),
                    force_full: false,
                },
                alloc_count,
            );
            let full = churn(
                &PerfOptions {
                    flows: cfg.get_u64("flows") as usize,
                    churn_events: cfg.get_u64("events") as usize,
                    seed: cfg.seed(),
                    force_full: true,
                },
                alloc_count,
            );
            Ok(comparison_json(&incremental, &full))
        },
        gates: |doc| {
            let mut f = Vec::new();
            if let Some(ratio) = gate_num(doc, "net_churn", "waterfill_touch_ratio", &mut f) {
                if ratio < 5.0 {
                    f.push(format!(
                        "incremental waterfilling no longer ≥5× cheaper (ratio {ratio:.2})"
                    ));
                }
            }
            if let Some(allocs) = gate_num(doc, "incremental", "steady_state_allocs", &mut f) {
                if allocs != 0.0 {
                    f.push(format!(
                        "hot path allocated {allocs:.0} times during the measured phase"
                    ));
                }
            }
            if let Some(drift) = gate_num(doc, "incremental", "final_drift_bps", &mut f) {
                if drift > 1.0 {
                    f.push(format!(
                        "incremental allocation drifted {drift} bps from the reference"
                    ));
                }
            }
            f
        },
        baseline_gates: |doc, baseline| {
            let mut f = Vec::new();
            let run_eps = gate_num(doc, "incremental", "events_per_sec", &mut f);
            let base_eps = gate_num(baseline, "incremental", "events_per_sec", &mut f);
            if let (Some(run), Some(base)) = (run_eps, base_eps) {
                if run < 0.7 * base {
                    f.push(format!(
                        "events/sec regressed >30%: {run:.0} vs baseline {base:.0}"
                    ));
                }
            }
            f
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PerfOptions {
        PerfOptions {
            flows: 40,
            churn_events: 80,
            seed: 7,
            force_full: false,
        }
    }

    #[test]
    fn churn_is_deterministic_in_op_sequence() {
        let a = churn(&small(), &|| 0);
        let b = churn(&small(), &|| 0);
        assert_eq!(a.reallocations, b.reallocations);
        assert_eq!(a.waterfill_touches, b.waterfill_touches);
        assert_eq!(a.full_recomputes, b.full_recomputes);
    }

    #[test]
    fn incremental_tracks_reference_under_churn() {
        let r = churn(&small(), &|| 0);
        assert!(
            r.final_drift_bps < 1.0,
            "drift {} bps vs from-scratch reference",
            r.final_drift_bps
        );
    }

    #[test]
    fn incremental_does_less_waterfill_work_than_full() {
        let inc = churn(&small(), &|| 0);
        let full = churn(
            &PerfOptions {
                force_full: true,
                ..small()
            },
            &|| 0,
        );
        assert!(
            full.waterfill_touches > inc.waterfill_touches,
            "full {} vs incremental {}",
            full.waterfill_touches,
            inc.waterfill_touches
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = churn(&small(), &|| 0);
        let doc = comparison_json(&r, &r);
        assert!(doc.contains("\"benchmark\": \"net_churn\""));
        assert!(doc.contains("\"waterfill_touch_ratio\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
