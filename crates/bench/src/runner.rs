//! Unified cached experiment runner (ROADMAP item 5).
//!
//! Every bench mode used to be its own CLI flag with bespoke JSON
//! emission, bespoke `--check` logic, and a hand-wired CI step. This
//! module replaces that plumbing with one registry: an experiment is a
//! *name*, a *config grid* (serializable [`ExpConfig`] rows whose seeds
//! derive from the master seed via [`crate::harness::mix_seed`]), an
//! *execute* function returning the mode's artifact document, and its
//! *gates* (absolute plus baseline-relative), all declared next to the
//! code they measure — `bench --run <exp> --check` is the whole CI
//! story.
//!
//! Results land as JSONL rows under a shared envelope schema
//! (`schema`, `experiment`, `config_hash`, `seed`, `wall_ms`, `config`,
//! `artifact`), cached on disk keyed by a stable FNV-1a hash of the
//! config's sorted `name=value` pairs. Re-running a sweep executes only
//! configurations whose hash is missing from the cache; an interrupted
//! sweep resumes from the rows already appended instead of restarting —
//! which is what makes thousand-candidate searches (the TCO planner,
//! >1000-site fleet grids) affordable as incremental campaigns.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Envelope schema version; bump on any row-shape change. Rows carrying
/// a different version are ignored by [`Cache::load`] (and thus
/// re-executed), so a bump invalidates stale caches instead of
/// misreading them.
pub const SCHEMA_VERSION: u64 = 1;

/// Default on-disk cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = ".bench-cache";

/// 64-bit FNV-1a over a byte stream — the same cheap, stable hash the
/// fleet digests use; no dependency, identical on every platform.
pub fn fnv1a64(bytes: &[u8], mut state: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(PRIME);
    }
    state
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// One typed config field value. The tag participates in the config
/// hash, so `U64(1)` and `Str("1")` never collide.
#[derive(Debug, Clone, PartialEq)]
pub enum CfgValue {
    /// Unsigned integer field.
    U64(u64),
    /// Float field (canonical shortest-round-trip rendering).
    F64(f64),
    /// Boolean field.
    Bool(bool),
    /// String field (artifact vocabulary: no quotes or control chars).
    Str(String),
}

impl CfgValue {
    /// Canonical rendering used for both hashing and the envelope's
    /// `config` object. Floats use Rust's shortest round-trip `Display`,
    /// which is deterministic for a given bit pattern.
    fn render(&self) -> String {
        match self {
            CfgValue::U64(v) => format!("{v}"),
            CfgValue::F64(v) => format!("{v}"),
            CfgValue::Bool(v) => format!("{v}"),
            CfgValue::Str(v) => format!("\"{v}\""),
        }
    }

    fn type_tag(&self) -> &'static str {
        match self {
            CfgValue::U64(_) => "u64",
            CfgValue::F64(_) => "f64",
            CfgValue::Bool(_) => "bool",
            CfgValue::Str(_) => "str",
        }
    }
}

/// A serializable experiment configuration: ordered `(name, value)`
/// fields. Declaration order drives the envelope's `config` object;
/// the hash sorts by field name first, so two configs with the same
/// fields in different declaration order hash identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExpConfig {
    fields: Vec<(&'static str, CfgValue)>,
}

impl ExpConfig {
    /// Empty config.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, name: &'static str, value: CfgValue) -> Self {
        debug_assert!(
            self.fields.iter().all(|(n, _)| *n != name),
            "duplicate config field {name}"
        );
        self.fields.push((name, value));
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(self, name: &'static str, v: u64) -> Self {
        self.push(name, CfgValue::U64(v))
    }

    /// Adds a float field.
    pub fn f64(self, name: &'static str, v: f64) -> Self {
        self.push(name, CfgValue::F64(v))
    }

    /// Adds a boolean field.
    pub fn bool(self, name: &'static str, v: bool) -> Self {
        self.push(name, CfgValue::Bool(v))
    }

    /// Adds a string field.
    pub fn str(self, name: &'static str, v: &str) -> Self {
        self.push(name, CfgValue::Str(v.to_string()))
    }

    fn lookup(&self, name: &str) -> &CfgValue {
        self.fields
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("config field {name} missing"))
    }

    /// Reads a `u64` field; panics on a missing or mistyped name (the
    /// experiment owns both the grid builder and the execute fn, so a
    /// mismatch is a programming error, not an input error).
    pub fn get_u64(&self, name: &str) -> u64 {
        match self.lookup(name) {
            CfgValue::U64(v) => *v,
            other => panic!("config field {name} is {other:?}, not u64"),
        }
    }

    /// Reads an `f64` field (panics like [`Self::get_u64`]).
    pub fn get_f64(&self, name: &str) -> f64 {
        match self.lookup(name) {
            CfgValue::F64(v) => *v,
            other => panic!("config field {name} is {other:?}, not f64"),
        }
    }

    /// Reads a string field (panics like [`Self::get_u64`]).
    pub fn get_str(&self, name: &str) -> &str {
        match self.lookup(name) {
            CfgValue::Str(v) => v,
            other => panic!("config field {name} is {other:?}, not str"),
        }
    }

    /// The config's seed field — every experiment grid carries one,
    /// derived from the master seed by [`crate::harness::mix_seed`].
    pub fn seed(&self) -> u64 {
        self.get_u64("seed")
    }

    /// Field names and type tags in declaration order (the envelope
    /// golden test pins these so schema drift fails loudly).
    pub fn field_schema(&self) -> String {
        let mut out = String::new();
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(name);
            out.push(':');
            out.push_str(value.type_tag());
        }
        out
    }

    /// Stable FNV-1a hash of the config: fields are sorted by name, then
    /// each `name=tag:rendered;` run through the hash sequentially —
    /// insensitive to declaration order, sensitive to any single field's
    /// name, type, or value.
    pub fn hash(&self) -> u64 {
        let mut sorted: Vec<&(&'static str, CfgValue)> = self.fields.iter().collect();
        sorted.sort_by_key(|(name, _)| *name);
        let mut h = FNV_OFFSET;
        for (name, value) in sorted {
            h = fnv1a64(name.as_bytes(), h);
            h = fnv1a64(b"=", h);
            h = fnv1a64(value.type_tag().as_bytes(), h);
            h = fnv1a64(b":", h);
            h = fnv1a64(value.render().as_bytes(), h);
            h = fnv1a64(b";", h);
        }
        h
    }

    /// The hash as the 16-hex-digit cache key.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash())
    }

    /// Compact JSON object in declaration order (the envelope's
    /// `config` value).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.render());
        }
        out.push('}');
        out
    }
}

/// Escapes a string for embedding as a JSON string value (the artifact
/// documents carry newlines and quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 16);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`json_escape`]; returns `None` on a malformed escape.
pub fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            '"' => out.push('"'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// One cached result: the JSONL envelope around an experiment artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Experiment name.
    pub experiment: String,
    /// 16-hex-digit [`ExpConfig::hash_hex`] cache key.
    pub config_hash: String,
    /// The config's derived seed (provenance; also inside `config`).
    pub seed: u64,
    /// Wall-clock of the execute call, milliseconds. Excluded from
    /// [`rows_digest`]: it is the one envelope field that legitimately
    /// differs between an interrupted-and-resumed sweep and an
    /// uninterrupted one.
    pub wall_ms: f64,
    /// Compact JSON object of the config fields (declaration order).
    pub config_json: String,
    /// The experiment's artifact document, verbatim (the bytes that
    /// become `BENCH_*.json`).
    pub artifact: String,
}

impl Row {
    /// Renders the envelope as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"schema\":{},\"experiment\":\"{}\",\"config_hash\":\"{}\",\"seed\":{},\"wall_ms\":{:.3},\"config\":{},\"artifact\":\"{}\"}}",
            SCHEMA_VERSION,
            self.experiment,
            self.config_hash,
            self.seed,
            self.wall_ms,
            self.config_json,
            json_escape(&self.artifact),
        )
    }

    /// Parses one JSONL line back into a row. Returns `None` for
    /// malformed lines (including a partial final line left by a killed
    /// sweep) and rows from a different schema version.
    pub fn parse(line: &str) -> Option<Row> {
        if field_u64(line, "schema")? != SCHEMA_VERSION {
            return None;
        }
        let experiment = field_raw_str(line, "experiment")?.to_string();
        let config_hash = field_raw_str(line, "config_hash")?.to_string();
        if config_hash.len() != 16 || !config_hash.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        // Seeds are full-range u64s (mix_seed output); routing them
        // through f64 would silently round above 2^53.
        let seed = field_u64(line, "seed")?;
        let wall_ms = field_num(line, "wall_ms")?;
        let config_json = field_object(line, "config")?.to_string();
        let artifact = json_unescape(field_escaped_str(line, "artifact")?)?;
        Some(Row {
            experiment,
            config_hash,
            seed,
            wall_ms,
            config_json,
            artifact,
        })
    }

    /// Digest contribution of this row, ignoring `wall_ms`.
    fn content_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for part in [
            self.experiment.as_str(),
            self.config_hash.as_str(),
            &format!("{}", self.seed),
            self.config_json.as_str(),
            self.artifact.as_str(),
        ] {
            h = fnv1a64(part.as_bytes(), h);
            h = fnv1a64(b"\x1f", h);
        }
        h
    }
}

/// Order-insensitive digest over a row set, with wall-clock masked: a
/// resumed sweep and an uninterrupted one produce the same digest when
/// (and only when) they produced the same result rows.
pub fn rows_digest(rows: &[Row]) -> u64 {
    rows.iter()
        .fold(0u64, |acc, r| acc.wrapping_add(r.content_digest()))
}

fn after_key<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)?;
    Some(&line[at + pat.len()..])
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = after_key(line, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Exact u64 field parse — full-range integers (seeds) must not round
/// through f64.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let rest = after_key(line, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A string field that contains no escapes (names and hex keys).
fn field_raw_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = after_key(line, key)?.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// A string field read up to the first unescaped quote (still escaped).
fn field_escaped_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = after_key(line, key)?.strip_prefix('"')?;
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&rest[..i]),
            _ => i += 1,
        }
    }
    None
}

/// A brace-balanced, string-aware object field.
fn field_object<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = after_key(line, key)?;
    if !rest.starts_with('{') {
        return None;
    }
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'{' if !in_str => depth += 1,
            b'}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// The disk cache: one JSONL file per experiment under a root
/// directory. Rows are appended as each configuration completes, so a
/// killed sweep leaves every finished row behind and a re-run resumes.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// A cache rooted at `dir` (created lazily on first append).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The JSONL file backing `experiment`.
    pub fn path_for(&self, experiment: &str) -> PathBuf {
        self.dir.join(format!("{experiment}.jsonl"))
    }

    /// Loads every parseable row for `experiment`, keyed by config
    /// hash. Malformed lines (a partial tail from a killed run, foreign
    /// schema versions) are skipped, not errors; a later duplicate hash
    /// wins, so a deliberately re-executed config supersedes its
    /// predecessor.
    pub fn load(&self, experiment: &str) -> HashMap<String, Row> {
        let mut rows = HashMap::new();
        let Ok(text) = fs::read_to_string(self.path_for(experiment)) else {
            return rows;
        };
        for line in text.lines() {
            if let Some(row) = Row::parse(line) {
                if row.experiment == experiment {
                    rows.insert(row.config_hash.clone(), row);
                }
            }
        }
        rows
    }

    /// Appends one completed row to the experiment's JSONL file,
    /// flushed so the row survives a kill immediately after.
    pub fn append(&self, row: &Row) -> Result<(), String> {
        fs::create_dir_all(&self.dir).map_err(|e| format!("creating {:?}: {e}", self.dir))?;
        let path = self.path_for(&row.experiment);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("opening {path:?}: {e}"))?;
        let line = row.to_jsonl();
        file.write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.flush())
            .map_err(|e| format!("appending to {path:?}: {e}"))
    }

    /// Drops the experiment's cached rows (`--force`).
    pub fn invalidate(&self, experiment: &str) -> Result<(), String> {
        let path = self.path_for(experiment);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(format!("removing {path:?}: {e}")),
        }
    }
}

/// Scale knobs shared by every grid builder: the master seed, the
/// smoke/full switch, and the optional CLI overrides the legacy
/// per-mode flags map onto. `None` means "the experiment's declared
/// default for this tier".
#[derive(Debug, Clone, Default)]
pub struct GridScale {
    /// Master seed; config `k` of a grid seeds itself with
    /// `mix_seed(seed, k)`.
    pub seed: u64,
    /// CI-smoke tier (reduced campaign counts where the full tier is
    /// expensive; identical where it is not).
    pub smoke: bool,
    /// `--flows` override (perf).
    pub flows: Option<usize>,
    /// `--events` override (perf).
    pub events: Option<usize>,
    /// `--points` override (serve).
    pub points: Option<usize>,
    /// `--cases` override (netval).
    pub cases: Option<usize>,
    /// `--campaigns` override (chaos, fleetchaos).
    pub campaigns: Option<usize>,
    /// `--sites` override (fleet).
    pub sites: Option<usize>,
    /// `--hours` override (fleet, video).
    pub hours: Option<u64>,
    /// `--window` override (fleet).
    pub window: Option<u64>,
    /// `--socs` override (video).
    pub socs: Option<usize>,
    /// `--peak` override (video).
    pub peak: Option<f64>,
    /// `--reps` override (trace, video).
    pub reps: Option<usize>,
}

impl GridScale {
    /// The default full-scale grid at the conventional master seed.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The CI-smoke grid at the conventional master seed.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            smoke: true,
            ..Self::default()
        }
    }
}

/// An experiment's execute function: one configuration in, the artifact
/// document out. `Err` aborts the sweep (completed rows stay cached).
pub type ExecFn = fn(&ExpConfig, &dyn Fn() -> u64) -> Result<String, String>;

/// One registered experiment: the declaration that replaces a bespoke
/// bench mode, its JSON emitter wiring, and its hand-wired CI step.
pub struct Experiment {
    /// Registry name (`bench --run <name>`).
    pub name: &'static str,
    /// One-line description for `--list` and the docs.
    pub about: &'static str,
    /// The committed baseline artifact this experiment reproduces and
    /// `--check` compares against (e.g. `BENCH_net.json`).
    pub artifact: &'static str,
    /// Builds the config grid for a scale tier. Config `k` must seed
    /// itself with `mix_seed(scale.seed, k)`.
    pub configs: fn(&GridScale) -> Vec<ExpConfig>,
    /// Executes one configuration.
    pub execute: ExecFn,
    /// Absolute gates on an artifact document: the experiment's own
    /// contract, checked on every run (cached or executed).
    pub gates: fn(&str) -> Vec<String>,
    /// Baseline-relative gates: run document vs the committed baseline
    /// document, checked under `--check`.
    pub baseline_gates: fn(&str, &str) -> Vec<String>,
}

/// Outcome of one experiment sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Experiment name.
    pub name: &'static str,
    /// Configurations executed this run.
    pub executed: usize,
    /// Configurations answered from the cache.
    pub cached: usize,
    /// One row per grid configuration, in grid order.
    pub rows: Vec<Row>,
}

/// Runs one experiment's grid against the cache: configurations whose
/// hash is already cached are answered from disk; the rest execute and
/// append. On an execute error the completed rows stay cached and the
/// error propagates — re-running resumes where the sweep died.
pub fn run_experiment(
    exp: &Experiment,
    scale: &GridScale,
    cache: &Cache,
    alloc_count: &dyn Fn() -> u64,
) -> Result<SweepOutcome, String> {
    let configs = (exp.configs)(scale);
    let known = cache.load(exp.name);
    let mut outcome = SweepOutcome {
        name: exp.name,
        executed: 0,
        cached: 0,
        rows: Vec::with_capacity(configs.len()),
    };
    for cfg in &configs {
        let key = cfg.hash_hex();
        if let Some(row) = known.get(&key) {
            outcome.cached += 1;
            outcome.rows.push(row.clone());
            continue;
        }
        let started = Instant::now();
        let artifact = (exp.execute)(cfg, alloc_count)
            .map_err(|e| format!("{}: config {key}: {e}", exp.name))?;
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let row = Row {
            experiment: exp.name.to_string(),
            config_hash: key,
            seed: cfg.seed(),
            wall_ms,
            config_json: cfg.to_json(),
            artifact,
        };
        cache.append(&row)?;
        outcome.executed += 1;
        outcome.rows.push(row);
    }
    Ok(outcome)
}

/// Every registered experiment, in canonical order. The eight bench
/// modes all live here; adding a mode means adding a declaration, not a
/// CLI branch, an emitter, and a CI step.
pub fn registry() -> Vec<Experiment> {
    vec![
        crate::perf::experiment(),
        crate::serve::experiment(),
        crate::chaos::experiment(),
        crate::tracebench::experiment(),
        crate::netvalidate::experiment(),
        crate::fleet::experiment(),
        crate::fleetchaos::experiment(),
        crate::video::experiment(),
    ]
}

/// Looks up experiments by name, with `all` expanding to the full
/// registry in canonical order.
pub fn resolve(names: &[String]) -> Result<Vec<Experiment>, String> {
    let mut all = registry();
    if names.iter().any(|n| n == "all") {
        return Ok(all);
    }
    let mut picked = Vec::new();
    for name in names {
        let at = all
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| format!("unknown experiment {name} (try --list)"))?;
        picked.push(all.swap_remove(at));
    }
    Ok(picked)
}

/// The envelope + per-experiment config schema description the golden
/// test pins: field names and types only, no values, so legitimate
/// retuning never churns it but silent schema drift fails loudly.
pub fn schema_description() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "envelope v{SCHEMA_VERSION}: schema:u64 experiment:str config_hash:hex16 seed:u64 wall_ms:f64 config:object artifact:str\n"
    ));
    let scale = GridScale::full(42);
    for exp in registry() {
        let grid = (exp.configs)(&scale);
        out.push_str(&format!(
            "{} [{}]: {}\n",
            exp.name,
            exp.artifact,
            grid.first().map_or_else(String::new, |c| c.field_schema()),
        ));
    }
    out
}

/// Reads a required numeric gate input from an artifact document,
/// recording a failure (instead of silently passing) when absent.
pub fn gate_num(doc: &str, section: &str, key: &str, failures: &mut Vec<String>) -> Option<f64> {
    let v = crate::harness::extract_num(doc, section, key);
    if v.is_none() {
        failures.push(format!("artifact missing {section}.{key}"));
    }
    v
}

/// Reads a required string gate input from an artifact document,
/// recording a failure when absent.
pub fn gate_str<'a>(
    doc: &'a str,
    section: &str,
    key: &str,
    failures: &mut Vec<String>,
) -> Option<&'a str> {
    let v = crate::harness::extract_str(doc, section, key);
    if v.is_none() {
        failures.push(format!("artifact missing {section}.{key}"));
    }
    v
}

/// Reads a required boolean gate input from an artifact document,
/// recording a failure when absent.
pub fn gate_bool(doc: &str, section: &str, key: &str, failures: &mut Vec<String>) -> Option<bool> {
    let v = crate::harness::extract_bool(doc, section, key);
    if v.is_none() {
        failures.push(format!("artifact missing {section}.{key}"));
    }
    v
}

/// `true` when the run document and the baseline agree on every listed
/// `config` key — the guard every digest-pinning baseline gate uses, so
/// a deliberately rescaled run is not compared against a full-scale
/// baseline.
pub fn same_config(doc: &str, baseline: &str, keys: &[&str]) -> bool {
    keys.iter().all(|key| {
        let run = crate::harness::extract_num(doc, "config", key);
        run.is_some() && run == crate::harness::extract_num(baseline, "config", key)
    })
}

/// Reads the committed baseline document for an experiment, looking in
/// the working directory first and the workspace root second (so the
/// bin works from either).
pub fn read_baseline(path: &str) -> Result<String, String> {
    if let Ok(doc) = fs::read_to_string(path) {
        return Ok(doc);
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(path);
    fs::read_to_string(&root).map_err(|e| format!("reading baseline {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::mix_seed;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn demo_config() -> ExpConfig {
        ExpConfig::new()
            .u64("campaigns", 256)
            .u64("seed", 42)
            .f64("floor", 0.9)
            .bool("fast", true)
            .str("grid", "15,20,25")
    }

    #[test]
    fn config_hash_is_stable_and_order_insensitive() {
        let a = demo_config();
        // Same fields declared in a different order.
        let b = ExpConfig::new()
            .str("grid", "15,20,25")
            .bool("fast", true)
            .f64("floor", 0.9)
            .u64("seed", 42)
            .u64("campaigns", 256);
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.hash(), demo_config().hash());
        // Pinned: changing the algorithm silently would orphan every
        // on-disk cache (they would all re-execute, not misread).
        assert_eq!(a.hash_hex().len(), 16);
    }

    #[test]
    fn config_hash_sees_every_field() {
        let base = demo_config();
        let variants = [
            demo_config().u64("extra", 1),
            ExpConfig::new()
                .u64("campaigns", 257)
                .u64("seed", 42)
                .f64("floor", 0.9)
                .bool("fast", true)
                .str("grid", "15,20,25"),
            ExpConfig::new()
                .u64("campaigns", 256)
                .u64("seed", 43)
                .f64("floor", 0.9)
                .bool("fast", true)
                .str("grid", "15,20,25"),
            ExpConfig::new()
                .u64("campaigns", 256)
                .u64("seed", 42)
                .f64("floor", 0.91)
                .bool("fast", true)
                .str("grid", "15,20,25"),
            ExpConfig::new()
                .u64("campaigns", 256)
                .u64("seed", 42)
                .f64("floor", 0.9)
                .bool("fast", false)
                .str("grid", "15,20,25"),
            ExpConfig::new()
                .u64("campaigns", 256)
                .u64("seed", 42)
                .f64("floor", 0.9)
                .bool("fast", true)
                .str("grid", "15,20"),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base.hash(), v.hash(), "variant {i} collided");
        }
        // Type tags keep same-rendering values apart.
        let int = ExpConfig::new().u64("x", 1).u64("seed", 0);
        let text = ExpConfig::new().str("x", "1").u64("seed", 0);
        assert_ne!(int.hash(), text.hash());
    }

    #[test]
    fn escape_round_trips_artifact_documents() {
        let doc = "{\n  \"k\": \"v\",\n  \"q\": \"a \\\"b\\\" c\",\n  \"t\": \"tab\\there\"\n}\n";
        let escaped = json_escape(doc);
        assert!(!escaped.contains('\n'));
        assert_eq!(json_unescape(&escaped).as_deref(), Some(doc));
        let control = "a\u{1}b";
        assert_eq!(
            json_unescape(&json_escape(control)).as_deref(),
            Some(control)
        );
    }

    #[test]
    fn row_round_trips_through_jsonl() {
        let cfg = demo_config();
        let row = Row {
            experiment: "demo".to_string(),
            config_hash: cfg.hash_hex(),
            // Above 2^53: pins the exact-u64 seed parse (an f64 round
            // trip would corrupt the low bits).
            seed: 17_542_363_414_333_701_188,
            wall_ms: 12.345,
            config_json: cfg.to_json(),
            artifact: "{\n  \"benchmark\": \"demo\",\n  \"n\": 7\n}\n".to_string(),
        };
        let line = row.to_jsonl();
        assert!(!line.contains('\n'));
        let parsed = Row::parse(&line).expect("round trip");
        assert_eq!(parsed, row);
        // Partial tail lines (killed mid-append) parse to None.
        assert_eq!(Row::parse(&line[..line.len() / 2]), None);
        assert_eq!(Row::parse(""), None);
    }

    #[test]
    fn rows_digest_masks_wall_and_ignores_order() {
        let mk = |hash: &str, wall: f64| Row {
            experiment: "demo".to_string(),
            config_hash: hash.to_string(),
            seed: 1,
            wall_ms: wall,
            config_json: "{\"seed\":1}".to_string(),
            artifact: format!("{{\n  \"h\": \"{hash}\"\n}}\n"),
        };
        let a = vec![mk("aaaaaaaaaaaaaaaa", 1.0), mk("bbbbbbbbbbbbbbbb", 2.0)];
        let b = vec![mk("bbbbbbbbbbbbbbbb", 9.0), mk("aaaaaaaaaaaaaaaa", 7.5)];
        assert_eq!(rows_digest(&a), rows_digest(&b));
        let c = vec![mk("aaaaaaaaaaaaaaaa", 1.0), mk("cccccccccccccccc", 2.0)];
        assert_ne!(rows_digest(&a), rows_digest(&c));
    }

    fn temp_cache(tag: &str) -> Cache {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "socc-runner-{tag}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Cache::new(dir)
    }

    static DEMO_EXECS: AtomicU64 = AtomicU64::new(0);
    /// Serializes the tests that run [`demo_experiment`] — the exec
    /// counter is a process-wide static, so concurrent tests would race.
    static DEMO_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn demo_experiment() -> Experiment {
        Experiment {
            name: "demo",
            about: "runner self-test",
            artifact: "BENCH_demo.json",
            configs: |scale| {
                (0..4)
                    .map(|k| {
                        ExpConfig::new()
                            .u64("x", k as u64)
                            .u64("seed", mix_seed(scale.seed, k))
                    })
                    .collect()
            },
            execute: |cfg, _| {
                DEMO_EXECS.fetch_add(1, Ordering::Relaxed);
                Ok(format!(
                    "{{\n  \"x\": {},\n  \"seed\": {}\n}}\n",
                    cfg.get_u64("x"),
                    cfg.seed()
                ))
            },
            gates: |_| Vec::new(),
            baseline_gates: |_, _| Vec::new(),
        }
    }

    #[test]
    fn equal_hash_means_cache_hit_and_zero_executions() {
        let _guard = DEMO_LOCK.lock().unwrap();
        let cache = temp_cache("hit");
        let exp = demo_experiment();
        let scale = GridScale::full(42);
        let before = DEMO_EXECS.load(Ordering::Relaxed);
        let first = run_experiment(&exp, &scale, &cache, &|| 0).unwrap();
        assert_eq!(first.executed, 4);
        assert_eq!(first.cached, 0);
        let second = run_experiment(&exp, &scale, &cache, &|| 0).unwrap();
        assert_eq!(second.executed, 0, "equal hashes must all hit the cache");
        assert_eq!(second.cached, 4);
        assert_eq!(
            DEMO_EXECS.load(Ordering::Relaxed) - before,
            4,
            "second sweep must not execute"
        );
        // Cached rows come back identical apart from wall-clock (the
        // JSONL envelope rounds it to 3 decimals), which the digest
        // masks.
        for (a, b) in first.rows.iter().zip(second.rows.iter()) {
            let mut masked = b.clone();
            masked.wall_ms = a.wall_ms;
            assert_eq!(*a, masked);
        }
        assert_eq!(rows_digest(&first.rows), rows_digest(&second.rows));
        // A different master seed misses (every config re-hashes).
        let third = run_experiment(&exp, &GridScale::full(43), &cache, &|| 0).unwrap();
        assert_eq!(third.executed, 4);
        let _ = fs::remove_dir_all(cache.path_for("demo").parent().unwrap());
    }

    #[test]
    fn grid_seeds_follow_the_mix_seed_contract() {
        let exp = demo_experiment();
        let grid = (exp.configs)(&GridScale::full(42));
        for (k, cfg) in grid.iter().enumerate() {
            assert_eq!(cfg.seed(), mix_seed(42, k));
        }
        // Config 0 keeps the master seed itself — the property that lets
        // single-config experiments reproduce their committed artifacts.
        assert_eq!(grid[0].seed(), 42);
    }

    #[test]
    fn corrupt_cache_lines_are_skipped_not_fatal() {
        let _guard = DEMO_LOCK.lock().unwrap();
        let cache = temp_cache("corrupt");
        let exp = demo_experiment();
        let scale = GridScale::full(7);
        run_experiment(&exp, &scale, &cache, &|| 0).unwrap();
        // Simulate a kill mid-append: truncate the file mid-line.
        let path = cache.path_for("demo");
        let text = fs::read_to_string(&path).unwrap();
        let cut = text.len() - 25;
        fs::write(&path, &text[..cut]).unwrap();
        let reloaded = cache.load("demo");
        assert_eq!(reloaded.len(), 3, "the torn row is dropped");
        let resumed = run_experiment(&exp, &scale, &cache, &|| 0).unwrap();
        assert_eq!(resumed.executed, 1, "only the torn config re-executes");
        assert_eq!(resumed.cached, 3);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
