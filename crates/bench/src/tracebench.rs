//! Observability overhead benchmark: what do structured spans cost?
//!
//! Two phases, both deterministic in everything but wall-clock:
//!
//! 1. **Recording micro-cost** — a pre-sized [`EventLog`] ring takes a
//!    burst of [`EventLog::record`] calls with recording enabled and again
//!    with it disabled, under the bench binary's counting allocator. The
//!    enabled path must not allocate (the ring is pre-allocated at
//!    construction); the disabled path must be a single branch.
//! 2. **Engine overhead** — the fault-loop end-to-end scenario (30 live
//!    streams, four distinct fault kinds, 400 s horizon) runs with spans
//!    on and spans off in interleaved repetitions. One engine run is
//!    short (~1 ms), so each timing sample covers a small batch of
//!    back-to-back runs and each side reports its *minimum* sample —
//!    scheduler noise only ever adds time, so the minimum is the robust
//!    estimator of true cost. The relative overhead is gated at 10%.
//!
//! [`report_json`] renders the committed `BENCH_trace.json` artifact and
//! includes the event-log digest so a baseline comparison also catches
//! accidental changes to *what* is recorded, not just how fast.

use std::time::Instant;

use crate::harness::JsonBuilder;
use socc_cluster::faults::{FaultEvent, FaultKind};
use socc_cluster::orchestrator::OrchestratorConfig;
use socc_cluster::recovery::{RecoveryConfig, RecoveryEngine};
use socc_cluster::workload::WorkloadSpec;
use socc_sim::span::{EventKind, EventLog, Scope};
use socc_sim::time::SimTime;

/// Relative engine overhead (spans-on vs spans-off) the check gate allows.
pub const MAX_OVERHEAD_PCT: f64 = 10.0;

/// Parameters of one trace-overhead run.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// `record()` calls per micro-phase burst.
    pub record_calls: usize,
    /// Ring capacity of the micro-phase log.
    pub ring_capacity: usize,
    /// Interleaved (spans-on, spans-off) timing samples of the engine
    /// scenario; the minimum of each side is reported.
    pub reps: usize,
    /// Live streams submitted to the engine scenario.
    pub streams: usize,
    /// Engine scenario horizon, seconds.
    pub horizon_secs: u64,
    /// Seed for the recovery engine.
    pub seed: u64,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            record_calls: 1_000_000,
            ring_capacity: 4096,
            reps: 9,
            streams: 30,
            horizon_secs: 400,
            seed: 42,
        }
    }
}

/// Results of one trace-overhead run.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Options the run used.
    pub options: TraceOptions,
    /// Mean cost of one `record()` call with recording enabled, ns.
    pub ns_per_event_enabled: f64,
    /// Mean cost of one `record()` call with recording disabled, ns.
    pub ns_per_event_disabled: f64,
    /// Heap allocations during the enabled burst (ring is pre-allocated,
    /// so this must be 0).
    pub allocs_enabled: u64,
    /// Heap allocations during the disabled burst (must be 0).
    pub allocs_disabled: u64,
    /// Best per-run engine wall-clock with spans on, milliseconds.
    pub spans_on_ms: f64,
    /// Best per-run engine wall-clock with spans off, milliseconds.
    pub spans_off_ms: f64,
    /// Relative overhead of spans-on over spans-off, percent.
    pub overhead_pct: f64,
    /// Events captured by one spans-on engine run (recorded, including
    /// any beyond ring capacity).
    pub events_captured: u64,
    /// Order-sensitive FNV digest of the spans-on engine event log —
    /// machine-independent, so baselines catch content drift.
    pub digest_hex: String,
}

/// Runs the micro burst: `calls` records into a pre-sized ring.
fn record_burst(log: &mut EventLog, calls: usize) -> f64 {
    let started = Instant::now();
    for i in 0..calls {
        log.record(
            SimTime::from_nanos(i as u64),
            Scope::Placement,
            EventKind::Placed {
                workload: i as u64,
                soc: (i % 60) as u32,
            },
        );
    }
    started.elapsed().as_nanos() as f64 / calls as f64
}

/// Builds the fault-loop scenario engine and runs it to the horizon.
/// Returns the engine so the caller can inspect its event log.
fn engine_run(opts: &TraceOptions, spans_on: bool) -> RecoveryEngine {
    let mut eng = RecoveryEngine::new(
        OrchestratorConfig::default(),
        RecoveryConfig::default(),
        opts.seed,
    );
    eng.set_tracing(spans_on);
    let video = socc_video::vbench::by_id("V1").expect("vbench V1");
    for _ in 0..opts.streams {
        eng.submit(WorkloadSpec::LiveStreamCpu {
            video: video.clone(),
        })
        .expect("capacity");
    }
    let faults = [
        (20, 0, FaultKind::Flash),
        (40, 1, FaultKind::SocHang),
        (60, 2, FaultKind::ThermalTrip),
        (80, 3, FaultKind::LinkLoss),
    ]
    .map(|(at, soc, kind)| FaultEvent {
        at: SimTime::from_secs(at),
        soc,
        kind,
    });
    eng.run(&faults, SimTime::from_secs(opts.horizon_secs));
    eng
}

/// Runs the full overhead benchmark.
///
/// `alloc_count` is sampled around each micro burst; pass the bench
/// binary's counting-allocator reading, or `&|| 0` to skip allocation
/// accounting (as the unit tests do).
pub fn trace_overhead(opts: &TraceOptions, alloc_count: &dyn Fn() -> u64) -> TraceReport {
    // Micro phase: one warm-up burst sizes nothing (the ring is allocated
    // up front), but it faults in the pages and warms the branch
    // predictor so the measured bursts are steady-state.
    let mut log = EventLog::new(opts.ring_capacity);
    record_burst(&mut log, opts.record_calls.min(8192));
    let before = alloc_count();
    let ns_per_event_enabled = record_burst(&mut log, opts.record_calls);
    let allocs_enabled = alloc_count() - before;

    log.set_enabled(false);
    record_burst(&mut log, opts.record_calls.min(8192));
    let before = alloc_count();
    let ns_per_event_disabled = record_burst(&mut log, opts.record_calls);
    let allocs_disabled = alloc_count() - before;

    // Macro phase: interleave spans-on and spans-off samples so slow
    // drift (thermal, scheduler) hits both sides equally. A single run is
    // ~1 ms — too short to time reliably — so each sample batches
    // RUNS_PER_SAMPLE back-to-back runs, and each side keeps its fastest
    // sample: noise only ever adds time, so the minimum estimates the
    // true cost.
    const RUNS_PER_SAMPLE: usize = 4;
    let mut on_ms = f64::INFINITY;
    let mut off_ms = f64::INFINITY;
    let eng = engine_run(opts, true); // warm-up (code + data caches)
    let events_captured = eng.events().recorded();
    let digest_hex = eng.events().digest_hex();
    drop(eng);
    for _ in 0..opts.reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..RUNS_PER_SAMPLE {
            engine_run(opts, true);
        }
        on_ms = on_ms.min(t0.elapsed().as_secs_f64() * 1e3 / RUNS_PER_SAMPLE as f64);

        let t0 = Instant::now();
        for _ in 0..RUNS_PER_SAMPLE {
            engine_run(opts, false);
        }
        off_ms = off_ms.min(t0.elapsed().as_secs_f64() * 1e3 / RUNS_PER_SAMPLE as f64);
    }
    let spans_on_ms = if on_ms.is_finite() { on_ms } else { 0.0 };
    let spans_off_ms = if off_ms.is_finite() { off_ms } else { 0.0 };
    let overhead_pct = if spans_off_ms > 0.0 {
        (spans_on_ms - spans_off_ms) / spans_off_ms * 100.0
    } else {
        0.0
    };

    TraceReport {
        options: opts.clone(),
        ns_per_event_enabled,
        ns_per_event_disabled,
        allocs_enabled,
        allocs_disabled,
        spans_on_ms,
        spans_off_ms,
        overhead_pct,
        events_captured,
        digest_hex,
    }
}

/// Runs the engine scenario once with spans on and renders its event log
/// in Chrome `trace_event` format (load the result in `about:tracing` or
/// Perfetto).
pub fn chrome_trace(opts: &TraceOptions) -> String {
    engine_run(opts, true).events().to_chrome_trace()
}

/// Renders the `BENCH_trace.json` artifact on [`JsonBuilder`]. This
/// mode's floats were always three-decimal — exactly the harness's
/// [`crate::harness::json_f64`] — so the port uses `f64` directly and
/// stays byte-identical to the hand-rolled emitter it replaced.
pub fn report_json(r: &TraceReport) -> String {
    let mut j = JsonBuilder::new();
    j.str("benchmark", "trace_overhead");
    j.object("recording", |j| {
        j.int("record_calls", r.options.record_calls as u64)
            .int("ring_capacity", r.options.ring_capacity as u64)
            .f64("ns_per_event_enabled", r.ns_per_event_enabled)
            .f64("ns_per_event_disabled", r.ns_per_event_disabled)
            .int("allocs_enabled", r.allocs_enabled)
            .int("allocs_disabled", r.allocs_disabled);
    });
    j.object("engine_overhead", |j| {
        j.str("scenario", "fault_loop_e2e")
            .int("streams", r.options.streams as u64)
            .int("horizon_secs", r.options.horizon_secs)
            .int("reps", r.options.reps as u64)
            .f64("spans_on_ms", r.spans_on_ms)
            .f64("spans_off_ms", r.spans_off_ms)
            .f64("overhead_pct", r.overhead_pct)
            .int("events_captured", r.events_captured)
            .str("digest", &r.digest_hex);
    });
    j.finish()
}

/// Declares the trace-overhead experiment for the unified runner
/// (`bench --run trace`): grid, execute, and the gates that used to
/// live in the `bench` binary's `--trace` branch.
pub fn experiment() -> crate::runner::Experiment {
    use crate::runner::{gate_num, gate_str, ExpConfig, Experiment};
    Experiment {
        name: "trace",
        about: "structured-span recording and engine overhead vs spans-off",
        artifact: "BENCH_trace.json",
        configs: |scale| {
            let full = TraceOptions::default();
            vec![ExpConfig::new()
                .u64("record_calls", full.record_calls as u64)
                .u64("ring_capacity", full.ring_capacity as u64)
                .u64("reps", scale.reps.unwrap_or(full.reps) as u64)
                .u64("streams", full.streams as u64)
                .u64("horizon_secs", full.horizon_secs)
                .u64("seed", crate::harness::mix_seed(scale.seed, 0))]
        },
        execute: |cfg, alloc_count| {
            let report = trace_overhead(
                &TraceOptions {
                    record_calls: cfg.get_u64("record_calls") as usize,
                    ring_capacity: cfg.get_u64("ring_capacity") as usize,
                    reps: cfg.get_u64("reps") as usize,
                    streams: cfg.get_u64("streams") as usize,
                    horizon_secs: cfg.get_u64("horizon_secs"),
                    seed: cfg.seed(),
                },
                alloc_count,
            );
            Ok(report_json(&report))
        },
        gates: |doc| {
            let mut f = Vec::new();
            if let Some(pct) = gate_num(doc, "engine_overhead", "overhead_pct", &mut f) {
                if pct > MAX_OVERHEAD_PCT {
                    f.push(format!(
                        "spans-on engine overhead {pct:.2}% exceeds {MAX_OVERHEAD_PCT}% budget"
                    ));
                }
            }
            for key in ["allocs_enabled", "allocs_disabled"] {
                if let Some(allocs) = gate_num(doc, "recording", key, &mut f) {
                    if allocs != 0.0 {
                        f.push(format!("{key} recording path allocated {allocs:.0} times"));
                    }
                }
            }
            f
        },
        baseline_gates: |doc, baseline| {
            let mut f = Vec::new();
            let run_events = gate_num(doc, "engine_overhead", "events_captured", &mut f);
            let base_events = gate_num(baseline, "engine_overhead", "events_captured", &mut f);
            if let (Some(run), Some(base)) = (run_events, base_events) {
                if run != base {
                    f.push(format!(
                        "events captured changed: {run:.0} vs baseline {base:.0} — \
                         instrumentation drifted; refresh BENCH_trace.json deliberately"
                    ));
                }
            }
            if let Some(digest) = gate_str(doc, "engine_overhead", "digest", &mut f) {
                if !baseline.contains(&format!("\"digest\": \"{digest}\"")) {
                    f.push(format!(
                        "event-log digest {digest} differs from baseline — \
                         recorded content drifted; refresh BENCH_trace.json deliberately"
                    ));
                }
            }
            f
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TraceOptions {
        TraceOptions {
            record_calls: 20_000,
            ring_capacity: 512,
            reps: 1,
            streams: 8,
            horizon_secs: 120,
            seed: 7,
        }
    }

    #[test]
    fn engine_digest_is_deterministic_and_spans_off_is_silent() {
        let a = engine_run(&small(), true);
        let b = engine_run(&small(), true);
        assert_eq!(a.events().digest_hex(), b.events().digest_hex());
        assert!(a.events().recorded() > 0);
        let off = engine_run(&small(), false);
        assert_eq!(off.events().recorded(), 0, "disabled log must stay empty");
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let r = trace_overhead(&small(), &|| 0);
        let doc = report_json(&r);
        assert!(doc.contains("\"benchmark\": \"trace_overhead\""));
        assert!(doc.contains("\"overhead_pct\""));
        assert!(doc.contains("\"digest\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(r.events_captured > 0);
    }

    /// The retired hand-rolled emitter, kept verbatim as the fixture the
    /// [`JsonBuilder`] port must reproduce byte for byte (the committed
    /// `BENCH_trace.json` baseline was generated with this code).
    fn handrolled_report_json(r: &TraceReport) -> String {
        fn json_f64(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.3}")
            } else {
                "null".to_string()
            }
        }
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"trace_overhead\",\n",
                "  \"recording\": {{\n",
                "    \"record_calls\": {},\n",
                "    \"ring_capacity\": {},\n",
                "    \"ns_per_event_enabled\": {},\n",
                "    \"ns_per_event_disabled\": {},\n",
                "    \"allocs_enabled\": {},\n",
                "    \"allocs_disabled\": {}\n",
                "  }},\n",
                "  \"engine_overhead\": {{\n",
                "    \"scenario\": \"fault_loop_e2e\",\n",
                "    \"streams\": {},\n",
                "    \"horizon_secs\": {},\n",
                "    \"reps\": {},\n",
                "    \"spans_on_ms\": {},\n",
                "    \"spans_off_ms\": {},\n",
                "    \"overhead_pct\": {},\n",
                "    \"events_captured\": {},\n",
                "    \"digest\": \"{}\"\n",
                "  }}\n",
                "}}\n"
            ),
            r.options.record_calls,
            r.options.ring_capacity,
            json_f64(r.ns_per_event_enabled),
            json_f64(r.ns_per_event_disabled),
            r.allocs_enabled,
            r.allocs_disabled,
            r.options.streams,
            r.options.horizon_secs,
            r.options.reps,
            json_f64(r.spans_on_ms),
            json_f64(r.spans_off_ms),
            json_f64(r.overhead_pct),
            r.events_captured,
            r.digest_hex,
        )
    }

    #[test]
    fn report_json_is_byte_identical_to_the_handrolled_emitter() {
        let mut r = trace_overhead(&small(), &|| 0);
        assert_eq!(report_json(&r), handrolled_report_json(&r));
        // Non-finite timings render as null on both sides.
        r.overhead_pct = f64::NAN;
        assert_eq!(report_json(&r), handrolled_report_json(&r));
    }
}
