//! Parallel parameter sweeps: fan experiment points across worker threads.
//!
//! Fine-grained figure series (a 200-point Fig. 12 curve, a seed ensemble
//! of gaming replays) are embarrassingly parallel; `parallel_map` runs them
//! on a crossbeam scope while preserving input order.

use crossbeam::thread;

/// Maps `f` over `inputs` using up to `workers` threads, preserving order.
///
/// # Panics
///
/// Propagates panics from `f` (the sweep is only as good as its points).
pub fn parallel_map<T, R, F>(inputs: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1);
    let n = inputs.len();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    if chunk == 0 {
        return Vec::new();
    }
    thread::scope(|scope| {
        for (inputs_chunk, results_chunk) in inputs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (input, slot) in inputs_chunk.iter().zip(results_chunk.iter_mut()) {
                    *slot = Some(f(input));
                }
            });
        }
    })
    .expect("sweep worker panicked");
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// A dense Fig. 12-style load sweep computed in parallel: returns
/// `(offered_fps, cluster samples/J, A100 samples/J)` triples.
pub fn dense_fig12(points: usize, max_fps: f64, workers: usize) -> Vec<(f64, f64, f64)> {
    use socc_cluster::experiments::cluster_serving_efficiency;
    use socc_dl::serving::ServingUnit;
    use socc_dl::{DType, Engine, ModelId};
    let loads: Vec<f64> = (1..=points)
        .map(|i| max_fps * i as f64 / points as f64)
        .collect();
    parallel_map(loads, workers, |&load| {
        let (cluster, _) =
            cluster_serving_efficiency(ModelId::ResNet50, DType::Fp32, load).unwrap_or((0.0, 0));
        let a100 = ServingUnit::new(Engine::TensorRtA100, ModelId::ResNet50, DType::Fp32)
            .at_load(load)
            .map(|r| r.samples_per_joule())
            .unwrap_or(0.0);
        (load, cluster, a100)
    })
}

/// An ensemble of gaming replays across seeds, in parallel: returns each
/// seed's sleep-savings fraction.
pub fn gaming_ensemble(seeds: std::ops::Range<u64>, workers: usize) -> Vec<f64> {
    use socc_cluster::gaming::replay_gaming_trace;
    use socc_sim::time::SimDuration;
    let seeds: Vec<u64> = seeds.collect();
    parallel_map(seeds, workers, |&seed| {
        replay_gaming_trace(12, SimDuration::from_mins(30), 10.0, seed).sleep_savings()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 7, |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_many() {
        let inputs: Vec<u64> = (1..=40).collect();
        let a = parallel_map(inputs.clone(), 1, |&x| x * x);
        let b = parallel_map(inputs, 8, |&x| x * x);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn dense_fig12_crossover_exists() {
        let series = dense_fig12(60, 1800.0, 8);
        assert_eq!(series.len(), 60);
        // Cluster wins at the left edge; the A100 wins at the right.
        let first = series.first().unwrap();
        let last = series.last().unwrap();
        assert!(first.1 > first.2, "cluster should win at light load");
        assert!(last.2 > last.1, "A100 should win near saturation");
        // Loads are ascending.
        for w in series.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn gaming_ensemble_consistent_savings() {
        let savings = gaming_ensemble(0..6, 6);
        assert_eq!(savings.len(), 6);
        for (seed, s) in savings.iter().enumerate() {
            assert!((0.05..=0.9).contains(s), "seed {seed}: savings {s}");
        }
    }
}
