//! Parallel parameter sweeps: fan experiment points across worker threads.
//!
//! Fine-grained figure series (a 200-point Fig. 12 curve, a seed ensemble
//! of gaming replays) are embarrassingly parallel; `parallel_map` runs them
//! on a crossbeam scope while preserving input order. Workers claim points
//! one at a time from a shared atomic counter (work stealing), so a few
//! expensive points — an SLO bisection near saturation takes orders of
//! magnitude longer than a light-load point — no longer serialize the
//! whole static chunk they used to land in.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::thread;

/// Maps `f` over `inputs` using up to `workers` threads, preserving order.
///
/// Scheduling is dynamic: each worker repeatedly claims the next
/// unprocessed index from an atomic counter, so load imbalance across
/// points costs at most one in-flight point per worker, not a chunk.
///
/// # Panics
///
/// Propagates the panic of the first failing point (lowest input index),
/// prefixed with that index so the offending parameters can be found. The
/// remaining workers stop claiming new points once a failure is observed.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let inputs = &inputs;
    type Fail = (usize, Box<dyn Any + Send + 'static>);
    let per_worker: Vec<Result<Vec<(usize, R)>, Fail>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (f, next, poisoned) = (&f, &next, &poisoned);
                scope.spawn(move |_| -> Result<Vec<(usize, R)>, Fail> {
                    let mut out = Vec::new();
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&inputs[i]))) {
                            Ok(r) => out.push((i, r)),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Relaxed);
                                return Err((i, payload));
                            }
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker thread died outside a point"))
            .collect()
    })
    .expect("crossbeam scope");

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut failure: Option<Fail> = None;
    for result in per_worker {
        match result {
            Ok(pairs) => {
                for (i, r) in pairs {
                    slots[i] = Some(r);
                }
            }
            // Near-simultaneous failures race; keep the lowest index so
            // the report is deterministic.
            Err((i, payload)) => {
                if failure.as_ref().is_none_or(|(j, _)| i < *j) {
                    failure = Some((i, payload));
                }
            }
        }
    }
    if let Some((i, payload)) = failure {
        // Re-panic with the point identified; keep the original payload
        // text when it is the usual &str/String.
        if let Some(msg) = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
        {
            panic!("sweep point {i} panicked: {msg}");
        }
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every non-poisoned slot filled"))
        .collect()
}

/// [`parallel_map`] with owned items and per-worker scratch state.
///
/// Items are moved into `f` (not borrowed), so stateful jobs — a fleet
/// shard with its arenas — cross threads by value and come back in the
/// result. Each worker builds one scratch with `make_scratch(worker)`
/// and threads it through every item it claims, so per-item working
/// state (timing accumulators, reusable buffers) is allocated once per
/// worker rather than once per item or per barrier window. Returns the
/// ordered results plus each worker's final scratch.
///
/// Scheduling is the same dynamic claim counter as [`parallel_map`];
/// which worker processes which item is nondeterministic, so `f` must
/// not let scratch state influence results if callers rely on
/// run-to-run determinism (timings are fine; semantic state is not).
///
/// # Panics
///
/// Propagates the panic of the first failing item (lowest index), like
/// [`parallel_map`].
pub fn parallel_map_with<T, S, R, FS, F>(
    inputs: Vec<T>,
    workers: usize,
    make_scratch: FS,
    f: F,
) -> (Vec<R>, Vec<S>)
where
    T: Send,
    S: Send,
    R: Send,
    FS: Fn(usize) -> S + Sync,
    F: Fn(&mut S, T, usize) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let workers = workers.clamp(1, n);
    // Hand-off cells: the crate forbids `unsafe`, so workers take
    // ownership of claimed items through a mutex each locks exactly once
    // (uncontended — the claim counter already serializes ownership).
    let cells: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cells = &cells;
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    type Fail = (usize, Box<dyn Any + Send + 'static>);
    type WorkerOut<R, S> = (Result<Vec<(usize, R)>, Fail>, S);
    let per_worker: Vec<WorkerOut<R, S>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (f, make_scratch, next, poisoned) = (&f, &make_scratch, &next, &poisoned);
                scope.spawn(move |_| {
                    let mut scratch = make_scratch(w);
                    let mut out = Vec::new();
                    let mut fail: Option<Fail> = None;
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = cells[i]
                            .lock()
                            .expect("hand-off cell")
                            .take()
                            .expect("each index claimed once");
                        match catch_unwind(AssertUnwindSafe(|| f(&mut scratch, item, i))) {
                            Ok(r) => out.push((i, r)),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Relaxed);
                                fail = Some((i, payload));
                                break;
                            }
                        }
                    }
                    (fail.map_or(Ok(out), Err), scratch)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker thread died outside a point"))
            .collect()
    })
    .expect("crossbeam scope");

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut scratches = Vec::with_capacity(workers);
    let mut failure: Option<Fail> = None;
    for (result, scratch) in per_worker {
        scratches.push(scratch);
        match result {
            Ok(pairs) => {
                for (i, r) in pairs {
                    slots[i] = Some(r);
                }
            }
            Err((i, payload)) => {
                if failure.as_ref().is_none_or(|(j, _)| i < *j) {
                    failure = Some((i, payload));
                }
            }
        }
    }
    if let Some((i, payload)) = failure {
        if let Some(msg) = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
        {
            panic!("sweep point {i} panicked: {msg}");
        }
        resume_unwind(payload);
    }
    let results = slots
        .into_iter()
        .map(|r| r.expect("every non-poisoned slot filled"))
        .collect();
    (results, scratches)
}

/// A dense Fig. 12-style load sweep computed in parallel: returns
/// `(offered_fps, cluster samples/J, A100 samples/J)` triples.
pub fn dense_fig12(points: usize, max_fps: f64, workers: usize) -> Vec<(f64, f64, f64)> {
    use socc_cluster::experiments::cluster_serving_efficiency;
    use socc_dl::serving::ServingUnit;
    use socc_dl::{DType, Engine, ModelId};
    let loads: Vec<f64> = (1..=points)
        .map(|i| max_fps * i as f64 / points as f64)
        .collect();
    parallel_map(loads, workers, |&load| {
        let (cluster, _) =
            cluster_serving_efficiency(ModelId::ResNet50, DType::Fp32, load).unwrap_or((0.0, 0));
        let a100 = ServingUnit::new(Engine::TensorRtA100, ModelId::ResNet50, DType::Fp32)
            .at_load(load)
            .map(|r| r.samples_per_joule())
            .unwrap_or(0.0);
        (load, cluster, a100)
    })
}

/// An ensemble of gaming replays across seeds, in parallel: returns each
/// seed's sleep-savings fraction.
pub fn gaming_ensemble(seeds: std::ops::Range<u64>, workers: usize) -> Vec<f64> {
    use socc_cluster::gaming::replay_gaming_trace;
    use socc_sim::time::SimDuration;
    let seeds: Vec<u64> = seeds.collect();
    parallel_map(seeds, workers, |&seed| {
        replay_gaming_trace(12, SimDuration::from_mins(30), 10.0, seed).sleep_savings()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 7, |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_many() {
        let inputs: Vec<u64> = (1..=40).collect();
        let a = parallel_map(inputs.clone(), 1, |&x| x * x);
        let b = parallel_map(inputs, 8, |&x| x * x);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn skewed_point_costs_do_not_serialize() {
        // One point 1000x the cost of the rest: with work stealing the
        // result is still ordered and complete regardless of where the
        // expensive point lands.
        let out = parallel_map((0..64).collect(), 4, |&x: &u64| {
            let spins = if x == 3 { 200_000 } else { 200 };
            (0..spins).fold(x, |acc, _| {
                acc.wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407)
            });
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn panic_identifies_the_failing_point() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..32).collect(), 4, |&x: &i32| {
                if x == 17 {
                    panic!("bisection diverged at load {x}");
                }
                x
            })
        })
        .expect_err("sweep must propagate the panic");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a string");
        assert!(msg.contains("sweep point 17"), "missing index: {msg}");
        assert!(
            msg.contains("bisection diverged at load 17"),
            "original payload lost: {msg}"
        );
    }

    #[test]
    fn with_variant_preserves_order_and_moves_items() {
        // Items are moved in and returned; results stay input-ordered.
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let (out, scratches) = parallel_map_with(
            items,
            4,
            |_| 0u64,
            |count: &mut u64, s: String, i| {
                *count += 1;
                (i, s)
            },
        );
        for (k, (i, s)) in out.iter().enumerate() {
            assert_eq!(k, *i);
            assert_eq!(s, &format!("item-{k}"));
        }
        // Every item was processed by exactly one worker's scratch.
        assert_eq!(scratches.iter().sum::<u64>(), 50);
        assert!(scratches.len() <= 4);
    }

    #[test]
    fn with_variant_single_worker_matches_many() {
        let run =
            |workers| parallel_map_with((0..40u64).collect(), workers, |_| (), |(), x, _| x * x).0;
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn with_variant_empty_input_is_fine() {
        let (out, scratches) = parallel_map_with(Vec::<u8>::new(), 4, |_| 0u8, |_, x, _| x);
        assert!(out.is_empty());
        assert!(scratches.is_empty());
    }

    #[test]
    fn with_variant_propagates_panics_with_index() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map_with(
                (0..32).collect(),
                4,
                |_| (),
                |(), x: i32, _| {
                    if x == 11 {
                        panic!("shard {x} diverged");
                    }
                    x
                },
            )
        })
        .expect_err("must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(msg.contains("sweep point 11"), "{msg}");
        assert!(msg.contains("shard 11 diverged"), "{msg}");
    }

    #[test]
    fn dense_fig12_crossover_exists() {
        let series = dense_fig12(60, 1800.0, 8);
        assert_eq!(series.len(), 60);
        // Cluster wins at the left edge; the A100 wins at the right.
        let first = series.first().unwrap();
        let last = series.last().unwrap();
        assert!(first.1 > first.2, "cluster should win at light load");
        assert!(last.2 > last.1, "A100 should win near saturation");
        // Loads are ascending.
        for w in series.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn gaming_ensemble_consistent_savings() {
        let savings = gaming_ensemble(0..6, 6);
        assert_eq!(savings.len(), 6);
        for (seed, s) in savings.iter().enumerate() {
            assert!((0.05..=0.9).contains(s), "seed {seed}: savings {s}");
        }
    }
}
