//! Parallel parameter sweeps: fan experiment points across worker threads.
//!
//! Fine-grained figure series (a 200-point Fig. 12 curve, a seed ensemble
//! of gaming replays) are embarrassingly parallel; `parallel_map` runs them
//! on a crossbeam scope while preserving input order. Workers claim points
//! one at a time from a shared atomic counter (work stealing), so a few
//! expensive points — an SLO bisection near saturation takes orders of
//! magnitude longer than a light-load point — no longer serialize the
//! whole static chunk they used to land in.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam::thread;

/// Maps `f` over `inputs` using up to `workers` threads, preserving order.
///
/// Scheduling is dynamic: each worker repeatedly claims the next
/// unprocessed index from an atomic counter, so load imbalance across
/// points costs at most one in-flight point per worker, not a chunk.
///
/// # Panics
///
/// Propagates the panic of the first failing point (lowest input index),
/// prefixed with that index so the offending parameters can be found. The
/// remaining workers stop claiming new points once a failure is observed.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let inputs = &inputs;
    type Fail = (usize, Box<dyn Any + Send + 'static>);
    let per_worker: Vec<Result<Vec<(usize, R)>, Fail>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (f, next, poisoned) = (&f, &next, &poisoned);
                scope.spawn(move |_| -> Result<Vec<(usize, R)>, Fail> {
                    let mut out = Vec::new();
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&inputs[i]))) {
                            Ok(r) => out.push((i, r)),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Relaxed);
                                return Err((i, payload));
                            }
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker thread died outside a point"))
            .collect()
    })
    .expect("crossbeam scope");

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut failure: Option<Fail> = None;
    for result in per_worker {
        match result {
            Ok(pairs) => {
                for (i, r) in pairs {
                    slots[i] = Some(r);
                }
            }
            // Near-simultaneous failures race; keep the lowest index so
            // the report is deterministic.
            Err((i, payload)) => {
                if failure.as_ref().is_none_or(|(j, _)| i < *j) {
                    failure = Some((i, payload));
                }
            }
        }
    }
    if let Some((i, payload)) = failure {
        // Re-panic with the point identified; keep the original payload
        // text when it is the usual &str/String.
        if let Some(msg) = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
        {
            panic!("sweep point {i} panicked: {msg}");
        }
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every non-poisoned slot filled"))
        .collect()
}

/// A dense Fig. 12-style load sweep computed in parallel: returns
/// `(offered_fps, cluster samples/J, A100 samples/J)` triples.
pub fn dense_fig12(points: usize, max_fps: f64, workers: usize) -> Vec<(f64, f64, f64)> {
    use socc_cluster::experiments::cluster_serving_efficiency;
    use socc_dl::serving::ServingUnit;
    use socc_dl::{DType, Engine, ModelId};
    let loads: Vec<f64> = (1..=points)
        .map(|i| max_fps * i as f64 / points as f64)
        .collect();
    parallel_map(loads, workers, |&load| {
        let (cluster, _) =
            cluster_serving_efficiency(ModelId::ResNet50, DType::Fp32, load).unwrap_or((0.0, 0));
        let a100 = ServingUnit::new(Engine::TensorRtA100, ModelId::ResNet50, DType::Fp32)
            .at_load(load)
            .map(|r| r.samples_per_joule())
            .unwrap_or(0.0);
        (load, cluster, a100)
    })
}

/// An ensemble of gaming replays across seeds, in parallel: returns each
/// seed's sleep-savings fraction.
pub fn gaming_ensemble(seeds: std::ops::Range<u64>, workers: usize) -> Vec<f64> {
    use socc_cluster::gaming::replay_gaming_trace;
    use socc_sim::time::SimDuration;
    let seeds: Vec<u64> = seeds.collect();
    parallel_map(seeds, workers, |&seed| {
        replay_gaming_trace(12, SimDuration::from_mins(30), 10.0, seed).sleep_savings()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 7, |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_many() {
        let inputs: Vec<u64> = (1..=40).collect();
        let a = parallel_map(inputs.clone(), 1, |&x| x * x);
        let b = parallel_map(inputs, 8, |&x| x * x);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn skewed_point_costs_do_not_serialize() {
        // One point 1000x the cost of the rest: with work stealing the
        // result is still ordered and complete regardless of where the
        // expensive point lands.
        let out = parallel_map((0..64).collect(), 4, |&x: &u64| {
            let spins = if x == 3 { 200_000 } else { 200 };
            (0..spins).fold(x, |acc, _| {
                acc.wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407)
            });
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn panic_identifies_the_failing_point() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..32).collect(), 4, |&x: &i32| {
                if x == 17 {
                    panic!("bisection diverged at load {x}");
                }
                x
            })
        })
        .expect_err("sweep must propagate the panic");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a string");
        assert!(msg.contains("sweep point 17"), "missing index: {msg}");
        assert!(
            msg.contains("bisection diverged at load 17"),
            "original payload lost: {msg}"
        );
    }

    #[test]
    fn dense_fig12_crossover_exists() {
        let series = dense_fig12(60, 1800.0, 8);
        assert_eq!(series.len(), 60);
        // Cluster wins at the left edge; the A100 wins at the right.
        let first = series.first().unwrap();
        let last = series.last().unwrap();
        assert!(first.1 > first.2, "cluster should win at light load");
        assert!(last.2 > last.1, "A100 should win near saturation");
        // Loads are ascending.
        for w in series.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn gaming_ensemble_consistent_savings() {
        let savings = gaming_ensemble(0..6, 6);
        assert_eq!(savings.len(), 6);
        for (seed, s) in savings.iter().enumerate() {
            assert!((0.05..=0.9).contains(s), "seed {seed}: savings {s}");
        }
    }
}
