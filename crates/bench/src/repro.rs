//! Table/figure reproduction: one function per paper artifact, each
//! returning the formatted table the `repro` binary prints.

use socc_cluster::capacity::network_bound_analysis;
use socc_cluster::experiments as exp;
use socc_cluster::faults::FaultInjector;
use socc_cluster::orchestrator::OrchestratorConfig;
use socc_cluster::recovery::{RecoveryConfig, RecoveryEngine, WorkloadFate};
use socc_cluster::workload::WorkloadSpec;
use socc_dl::parallel::sweep as collab_sweep;
use socc_dl::{DType, ModelId};
use socc_hw::generations::{longitudinal_devices, SocGeneration};
use socc_hw::microbench::{BenchPlatform, MicroBenchmark};
use socc_hw::spec::ServerSpec;
use socc_sim::report::{dollars, fnum, pct, Table};
use socc_sim::rng::SimRng;
use socc_sim::time::{SimDuration, SimTime};
use socc_tco::tpc::{archive_tpc, dl_tpc, live_tpc, HardwareRow};
use socc_tco::Platform;
use socc_workloads::gaming::{trace_stats, GamingTraceConfig};
use socc_workloads::vmtrace::VmPopulation;

/// Fig. 1 — CDF of VM resource subscriptions and fit-in-SoC fractions.
pub fn fig1() -> String {
    let mut rng = SimRng::seed(1);
    let mut out = String::new();
    for pop in [VmPopulation::Azure, VmPopulation::AlibabaEns] {
        let n = 100_000;
        let vms = pop.sample_many(n, &mut rng);
        let mut cores: Vec<f64> = vms.iter().map(|v| v.cores as f64).collect();
        let cdf = socc_workloads::vmtrace::empirical_cdf(&mut cores);
        let fit = vms.iter().filter(|v| v.fits_in_soc()).count() as f64 / n as f64;
        let mut t = Table::new(["vCPU cores", "CDF"]).with_title(format!(
            "Fig.1 {:?} ({} synthetic VMs; paper dataset {})",
            pop,
            n,
            pop.dataset_size()
        ));
        for (v, f) in &cdf {
            t.row([fnum(*v, 0), pct(*f)]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "fits in one SoC: {} (paper: {})\n\n",
            pct(fit),
            pct(pop.paper_fit_fraction())
        ));
    }
    out
}

/// Table 1 — hardware platforms.
pub fn tab1() -> String {
    let cluster = ServerSpec::soc_cluster();
    let edge = ServerSpec::traditional_edge();
    let mut t = Table::new(["Hardware", "SoC Cluster", "Traditional Server"])
        .with_title("Table 1: platforms");
    t.row(["CPU", &cluster.cpu_desc, &edge.cpu_desc]);
    t.row(["GPU", &cluster.gpu_desc, &edge.gpu_desc]);
    t.row(["Memory", &cluster.memory_desc, &edge.memory_desc]);
    t.row(["Disk/Flash", &cluster.storage_desc, &edge.storage_desc]);
    t.row(["OS", &cluster.os_desc, &edge.os_desc]);
    t.row(["Network", &cluster.network_desc, &edge.network_desc]);
    t.row([
        "Form Factor".to_string(),
        format!("{} RU", cluster.rack_units),
        format!("{} RU", edge.rack_units),
    ]);
    t.render()
}

/// Table 2 — Geekbench-style micro-benchmarks.
pub fn tab2() -> String {
    let mut t = Table::new([
        "Benchmark",
        "Ours/core",
        "Trad/core",
        "G2/core",
        "G3/core",
        "Ours",
        "Trad.",
        "G2",
        "G3",
    ])
    .with_title("Table 2: micro-benchmarks (per-core | whole server)");
    for b in MicroBenchmark::ALL {
        let per: Vec<String> = BenchPlatform::ALL
            .iter()
            .map(|p| fnum(p.per_core(b), 1))
            .collect();
        let whole: Vec<String> = BenchPlatform::ALL
            .iter()
            .map(|p| fnum(p.whole_server_modeled(b), 0))
            .collect();
        t.row([
            b.label().to_string(),
            per[0].clone(),
            per[1].clone(),
            per[2].clone(),
            per[3].clone(),
            whole[0].clone(),
            whole[1].clone(),
            whole[2].clone(),
            whole[3].clone(),
        ]);
    }
    t.render()
}

/// Fig. 5 — 38 h in-the-wild gaming traffic.
pub fn fig5() -> String {
    let cfg = GamingTraceConfig::default();
    let mut rng = SimRng::seed(5);
    let trace = cfg.generate(
        SimDuration::from_hours(38),
        SimDuration::from_mins(30),
        &mut rng,
    );
    let stats = trace_stats(&trace, 20.0).expect("non-empty trace");
    let mut t = Table::new(["hour", "Gbps"]).with_title("Fig.5: gaming traffic (30-min samples)");
    for (time, v) in trace.samples() {
        t.row([fnum(time.as_hours_f64(), 1), fnum(*v, 2)]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "peak {:.2} Gbps, trough {:.2} Gbps, dynamic range {:.1}x (paper: up to 25x), mean utilization {} of 20 Gbps (paper: <20%)\n",
        stats.peak_gbps, stats.trough_gbps, stats.dynamic_range, pct(stats.mean_utilization)
    ));
    out
}

/// Table 3 — video metadata and network-bound analysis.
pub fn tab3() -> String {
    let mut t = Table::new([
        "Video",
        "Resolution",
        "FPS",
        "Entropy",
        "Source",
        "Target",
        "CPU",
        "HW",
        "PCB Mbps",
        "PCB%",
        "Server Mbps",
        "Server%",
    ])
    .with_title("Table 3: vbench videos + network bound analysis");
    let videos = socc_video::vbench::videos();
    for (v, row) in videos.iter().zip(network_bound_analysis()) {
        t.row([
            format!("{}: {}", v.id, v.name),
            format!("{}", v.resolution),
            fnum(v.fps, 0),
            fnum(v.entropy, 1),
            format!("{:.1} Mbps", v.source_bitrate.as_mbps()),
            format!("{:.1} Mbps", v.target_bitrate.as_mbps()),
            format!("{}", row.cpu_streams),
            format!("{}", row.hw_streams),
            fnum(row.pcb_mbps, 0),
            pct(row.pcb_frac),
            fnum(row.server_mbps, 0),
            pct(row.server_frac),
        ]);
    }
    t.render()
}

/// Table 3 (full backend matrix) — `max_live_streams` for every
/// transcode unit × vbench video, per unit and per whole server.
pub fn tab3_full() -> String {
    use socc_video::backend::TranscodeUnit;
    let mut t = Table::new([
        "Video",
        "SoC CPU",
        "SoC HW codec",
        "Intel CPU",
        "NVIDIA A40",
        "SoC CPU/server",
        "SoC HW/server",
        "Intel/server",
        "A40/server",
    ])
    .with_title("Table 3 (full): max concurrent live streams per unit and per server");
    for v in socc_video::vbench::videos() {
        let per_unit: Vec<usize> = TranscodeUnit::ALL
            .iter()
            .map(|u| u.max_live_streams(&v))
            .collect();
        let per_server: Vec<usize> = TranscodeUnit::ALL
            .iter()
            .zip(&per_unit)
            .map(|(u, n)| n * u.units_per_server())
            .collect();
        t.row([
            v.id.to_string(),
            format!("{}", per_unit[0]),
            format!("{}", per_unit[1]),
            format!("{}", per_unit[2]),
            format!("{}", per_unit[3]),
            format!("{}", per_server[0]),
            format!("{}", per_server[1]),
            format!("{}", per_server[2]),
            format!("{}", per_server[3]),
        ]);
    }
    t.render()
}

/// Fig. 6 — transcoding energy efficiency.
pub fn fig6() -> String {
    let mut a = Table::new([
        "Video",
        "SoC CPU",
        "Intel CPU",
        "A40",
        "SoC/Intel",
        "SoC/A40",
    ])
    .with_title("Fig.6a: live streaming TpE (streams/W)");
    for row in exp::fig6a_live_tpe() {
        a.row([
            row.video_id.clone(),
            fnum(row.soc_cpu, 3),
            fnum(row.intel, 3),
            fnum(row.a40, 3),
            fnum(row.soc_cpu / row.intel, 2),
            fnum(row.soc_cpu / row.a40, 2),
        ]);
    }
    let mut b = Table::new(["Video", "SoC CPU", "Intel CPU", "A40"])
        .with_title("Fig.6b: archive TpE (frames/J)");
    for row in exp::fig6b_archive_tpe() {
        b.row([
            row.video_id.clone(),
            fnum(row.soc_cpu, 2),
            fnum(row.intel, 2),
            fnum(row.a40, 2),
        ]);
    }
    format!("{}\n{}", a.render(), b.render())
}

/// Fig. 7 — live TpE vs concurrent streams (V4 and V5).
pub fn fig7() -> String {
    let mut out = String::new();
    for id in ["V4", "V5"] {
        let video = socc_video::vbench::by_id(id).expect("vbench video");
        let mut t = Table::new(["streams", "SoC CPU", "Intel CPU", "A40"])
            .with_title(format!("Fig.7: live TpE (streams/W) vs load, {id}"));
        for p in exp::fig7_sweep(&video, 20) {
            t.row([
                format!("{}", p.streams),
                fnum(p.soc_cpu, 3),
                fnum(p.intel, 3),
                fnum(p.a40, 3),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig. 8 — SoC CPU vs hardware codec.
pub fn fig8() -> String {
    let mut t = Table::new([
        "Video",
        "CPU streams",
        "HW streams",
        "gain",
        "CPU TpE",
        "HW TpE",
        "TpE gain",
    ])
    .with_title("Fig.8: whole-cluster live transcoding, CPU vs HW codec");
    for row in exp::fig8_hw_codec() {
        t.row([
            row.video_id.clone(),
            format!("{}", row.cpu_streams),
            format!("{}", row.hw_streams),
            fnum(row.hw_streams as f64 / row.cpu_streams as f64, 2),
            fnum(row.cpu_tpe, 3),
            fnum(row.hw_tpe, 3),
            fnum(row.hw_tpe / row.cpu_tpe, 2),
        ]);
    }
    t.render()
}

/// Fig. 9 — target vs output bitrate.
pub fn fig9() -> String {
    let mut t = Table::new([
        "Video",
        "target kbps",
        "source kbps",
        "x264 out",
        "MediaCodec out",
    ])
    .with_title("Fig.9: live transcoding bitrate tracking");
    for row in exp::fig9_bitrates() {
        t.row([
            row.video_id.clone(),
            fnum(row.target_kbps, 1),
            fnum(row.source_kbps, 1),
            fnum(row.x264_kbps, 1),
            fnum(row.mediacodec_kbps, 1),
        ]);
    }
    t.render()
}

/// Fig. 10 — transcoding quality (PSNR).
pub fn fig10() -> String {
    let mut t = Table::new(["Video", "x264 (SoC)", "x264 (Intel)", "NVENC", "MediaCodec"])
        .with_title("Fig.10: PSNR (dB) at identical bitrate constraints");
    for row in exp::fig10_quality() {
        t.row([
            row.video_id.clone(),
            fnum(row.x264_soc, 2),
            fnum(row.x264_intel, 2),
            fnum(row.nvenc, 2),
            fnum(row.mediacodec, 2),
        ]);
    }
    t.render()
}

/// Fig. 11 — DL serving latency and energy efficiency.
pub fn fig11() -> String {
    let mut t = Table::new([
        "Engine",
        "Model",
        "Prec",
        "Batch",
        "Latency ms",
        "samples/J",
    ])
    .with_title("Fig.11: DL serving performance");
    for row in exp::fig11_dl_serving() {
        t.row([
            row.engine.to_string(),
            row.model.to_string(),
            row.dtype.to_string(),
            format!("{}", row.batch),
            fnum(row.latency_ms, 1),
            fnum(row.samples_per_joule, 2),
        ]);
    }
    t.render()
}

/// Fig. 12 — energy efficiency under offered load.
pub fn fig12() -> String {
    let loads = [
        5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 1500.0, 1800.0,
    ];
    let mut out = String::new();
    for (model, dtype) in [
        (ModelId::ResNet50, DType::Fp32),
        (ModelId::ResNet152, DType::Fp32),
    ] {
        let mut t =
            Table::new(["offered fps", "cluster s/J", "A100 s/J", "SoCs awake"]).with_title(
                format!("Fig.12: efficiency vs load, {} {}", model.label(), "FP32"),
            );
        for p in exp::fig12_load_sweep(model, dtype, &loads) {
            t.row([
                fnum(p.offered_fps, 0),
                fnum(p.cluster, 2),
                fnum(p.a100, 2),
                format!("{}", p.socs_active),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig. 13 — SoC-collaborative inference.
pub fn fig13() -> String {
    let mut out = String::new();
    for pipelined in [false, true] {
        let title = if pipelined {
            "Fig.13 (right): tensor parallelism with pipelining"
        } else {
            "Fig.13 (left): tensor parallelism"
        };
        let mut t = Table::new([
            "SoCs",
            "compute ms",
            "comm ms",
            "total ms",
            "comm share",
            "speedup",
        ])
        .with_title(title);
        let reports = collab_sweep(ModelId::ResNet50, 5, pipelined);
        let single = reports[0].total.as_millis_f64();
        for r in &reports {
            t.row([
                format!("{}", r.socs),
                fnum(r.compute.as_millis_f64(), 1),
                fnum(r.comm.as_millis_f64(), 1),
                fnum(r.total.as_millis_f64(), 1),
                pct(r.comm_share()),
                fnum(single / r.total.as_millis_f64(), 2),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Table 4 — CapEx/OpEx/monthly TCO.
pub fn tab4() -> String {
    let mut out = String::new();
    for platform in Platform::ALL {
        let b = socc_tco::breakdown(platform);
        let mut t = Table::new(["Component", "Cost"]).with_title(format!(
            "Table 4: {} (avg peak {} W)",
            platform.label(),
            fnum(b.avg_peak_power_w, 0)
        ));
        for item in platform.capex_items() {
            t.row([item.name.to_string(), dollars(item.cost)]);
        }
        t.row(["Total CapEx".to_string(), dollars(b.total_capex)]);
        t.row(["CapEx / 36 months".to_string(), dollars(b.monthly_capex)]);
        t.row(["Monthly kWh (50% util)".to_string(), fnum(b.monthly_kwh, 0)]);
        t.row([
            "Server electricity".to_string(),
            dollars(b.server_electricity),
        ]);
        t.row([
            "PUE overhead (PUE=2.0)".to_string(),
            dollars(b.pue_overhead),
        ]);
        t.row([
            "Monthly electricity".to_string(),
            dollars(b.monthly_electricity),
        ]);
        t.row(["Monthly TCO".to_string(), dollars(b.monthly_tco)]);
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Table 5 — throughput per cost.
pub fn tab5() -> String {
    let videos = socc_video::vbench::videos();
    let mut out = String::new();

    let mut live = Table::new(["Hardware", "V1", "V2", "V3", "V4", "V5", "V6"])
        .with_title("Table 5: live streaming TpC (streams/$)");
    let mut archive = Table::new(["Hardware", "V1", "V2", "V3", "V4", "V5", "V6"])
        .with_title("Table 5: archive TpC (frames/s/$)");
    for row in HardwareRow::ALL {
        let live_cells: Vec<String> = videos
            .iter()
            .map(|v| live_tpc(row, v).map_or("-".into(), |x| fnum(x, 3)))
            .collect();
        if live_cells.iter().any(|c| c != "-") {
            let mut cells = vec![row.label().to_string()];
            cells.extend(live_cells);
            live.row(cells);
        }
        let arch_cells: Vec<String> = videos
            .iter()
            .map(|v| archive_tpc(row, v).map_or("-".into(), |x| fnum(x, 3)))
            .collect();
        if arch_cells.iter().any(|c| c != "-") {
            let mut cells = vec![row.label().to_string()];
            cells.extend(arch_cells);
            archive.row(cells);
        }
    }
    out.push_str(&live.render());
    out.push('\n');
    out.push_str(&archive.render());
    out.push('\n');

    let mut dl = Table::new([
        "Hardware",
        "R-50 FP32",
        "R-152 FP32",
        "YOLO FP32",
        "BERT FP32",
        "R-50 INT8",
        "R-152 INT8",
    ])
    .with_title("Table 5: DL serving TpC (samples/s/$)");
    let columns: [(ModelId, DType); 6] = [
        (ModelId::ResNet50, DType::Fp32),
        (ModelId::ResNet152, DType::Fp32),
        (ModelId::YoloV5x, DType::Fp32),
        (ModelId::BertBase, DType::Fp32),
        (ModelId::ResNet50, DType::Int8),
        (ModelId::ResNet152, DType::Int8),
    ];
    for row in HardwareRow::ALL {
        let mut cells = vec![row.label().to_string()];
        let mut any = false;
        for (model, dtype) in columns {
            match dl_tpc(row, model, dtype) {
                Some(x) => {
                    any = true;
                    cells.push(fnum(x, 3));
                }
                None => cells.push("-".into()),
            }
        }
        if any {
            dl.row(cells);
        }
    }
    out.push_str(&dl.render());
    out
}

/// §8 what-if — availability and goodput under the closed recovery loop,
/// sweeping an accelerated annual-failure-rate multiplier against the
/// failure-detection window. The cluster is loaded adversarially: 55 SoCs
/// are pinned by whole-SoC archive jobs (batch priority), and 40 live
/// streams share the 5 remaining SoCs, so every fault forces the loop to
/// migrate, retry with backoff, shed batch work, or concede a loss.
pub fn avail() -> String {
    let horizon = SimDuration::from_hours(1);
    let socs = 60;
    let mut t = Table::new([
        "AFR x",
        "win s",
        "faults",
        "det",
        "migr",
        "retry",
        "pcycle",
        "shed",
        "lost",
        "det p99 ms",
        "MTTR p50 ms",
        "goodput",
        "avail",
    ])
    .with_title(format!(
        "avail: accelerated AFR x detection window ({socs} SoCs, {} horizon, seed 7)",
        horizon
    ));
    for mult in [2_000.0, 8_000.0] {
        for window_s in [1u64, 3, 10] {
            let base = FaultInjector {
                thermal_afr: 0.05,
                link_afr: 0.05,
                ..FaultInjector::default()
            };
            let injector = FaultInjector {
                flash_afr: base.flash_afr * mult,
                hang_afr: base.hang_afr * mult,
                memory_afr: base.memory_afr * mult,
                thermal_afr: base.thermal_afr * mult,
                link_afr: base.link_afr * mult,
                ..base
            };
            let config = RecoveryConfig {
                detection_window: SimDuration::from_secs(window_s),
                ..RecoveryConfig::default()
            };
            let mut eng = RecoveryEngine::new(OrchestratorConfig::default(), config, 7);
            let video = socc_video::vbench::by_id("V1").expect("vbench V1");
            for _ in 0..(socs - 5) {
                eng.submit(WorkloadSpec::ArchiveJob {
                    video: video.clone(),
                    frames: 100_000_000,
                })
                .expect("archive capacity");
            }
            for _ in 0..40 {
                eng.submit(WorkloadSpec::LiveStreamCpu {
                    video: video.clone(),
                })
                .expect("live capacity");
            }
            let submitted = eng.fates().len();
            let faults = injector.schedule(socs, horizon, &mut SimRng::seed(0xFA));
            eng.run(&faults, SimTime::ZERO + horizon);
            let tele = eng.telemetry();
            let ok = eng
                .fates()
                .values()
                .filter(|r| matches!(r.fate, WorkloadFate::Running | WorkloadFate::Completed))
                .count();
            let q = |name: &str, q: f64| {
                tele.histogram_quantile(name, q)
                    .map_or("-".to_string(), |ms| fnum(ms, 0))
            };
            t.row([
                fnum(mult, 0),
                format!("{window_s}"),
                format!("{}", tele.counter("ft.faults_injected")),
                format!("{}", tele.counter("ft.faults_detected")),
                format!("{}", tele.counter("ft.migrations")),
                format!("{}", tele.counter("ft.retries")),
                format!("{}", tele.counter("ft.power_cycles")),
                format!("{}", tele.counter("ft.workloads_shed")),
                format!("{}", tele.counter("ft.workloads_lost")),
                q("ft.detection_ms", 0.99),
                q("ft.mttr_ms", 0.5),
                pct(ok as f64 / submitted as f64),
                format!("{:.4}%", 100.0 * eng.availability()),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "fixed seeds end to end: same invocation is byte-identical. Shape: the \
         detection window sets the MTTR floor (p50 tracks window + sweep cadence), \
         and raising AFR degrades goodput gracefully — batch jobs are shed or lost \
         before live streams, which keep >98% availability even at 8000x \
         accelerated aging.\n",
    );
    out
}

/// §8 what-if — availability under correlated failure domains vs an
/// independent-failure model at equal per-SoC death rate. Each chaos
/// campaign pairs a correlated schedule (whole-board drops, fabric
/// partitions, PSU brownouts) with an independent twin that re-spreads
/// every board burst as five single-SoC deaths at seeded uniform times, so
/// the gap isolates the cost of *correlation* — same failure volume,
/// different arrival shape.
pub fn fig_avail_domains() -> String {
    let opts = crate::chaos::ChaosOptions {
        campaigns: 12,
        seed: 42,
        ..crate::chaos::ChaosOptions::default()
    };
    let report = crate::chaos::run_chaos(&opts);
    let mut t = Table::new([
        "board AFR x",
        "pairs",
        "indep avail",
        "corr avail",
        "gap",
        "corr sheds",
        "corr losses",
    ])
    .with_title(format!(
        "fig-avail-domains: correlated vs independent failures ({} campaign pairs, seed {})",
        opts.campaigns, opts.seed
    ));
    // Campaign k's board-drop intensity tier is k % 3 + 1 (see
    // `chaos::campaign_schedules`); group the sweep by tier.
    for tier in 1usize..=3 {
        let of_tier = |correlated: bool| {
            report
                .outcomes
                .iter()
                .filter(|o| o.index % 3 + 1 == tier && o.correlated == correlated)
                .collect::<Vec<_>>()
        };
        let mean = |os: &[&crate::chaos::CampaignOutcome]| {
            os.iter().map(|o| o.availability).sum::<f64>() / os.len().max(1) as f64
        };
        let corr = of_tier(true);
        let indep = of_tier(false);
        let (ca, ia) = (mean(&corr), mean(&indep));
        t.row([
            format!("{tier}"),
            format!("{}", corr.len()),
            format!("{:.4}%", 100.0 * ia),
            format!("{:.4}%", 100.0 * ca),
            format!("{:.4}pp", 100.0 * (ia - ca)),
            format!("{}", corr.iter().map(|o| o.sheds).sum::<u64>()),
            format!("{}", corr.iter().map(|o| o.losses).sum::<u64>()),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "overall: independent {:.4} vs correlated {:.4} (gap {:.4}); a burst of five \
         co-failing SoCs overwhelms the instantaneous placement headroom that a \
         trickle of the same deaths would be absorbed by, and brownouts shed batch \
         work that independent deaths never touch. {} invariant violations.\n",
        report.independent_mean,
        report.correlated_mean,
        report.independent_mean - report.correlated_mean,
        report.violations.len(),
    ));
    out
}

/// Table 6 — longitudinal device registry.
pub fn tab6() -> String {
    let mut t = Table::new(["Device", "SoC", "RAM", "OS", "Release"])
        .with_title("Table 6: longitudinal study devices");
    for d in longitudinal_devices() {
        t.row([
            d.device.to_string(),
            d.soc.name().to_string(),
            format!("{} GB", d.ram_gb),
            d.os.to_string(),
            d.release.to_string(),
        ]);
    }
    t.render()
}

/// Table 7 — physical vs virtualized SoCs.
pub fn tab7() -> String {
    let mut t = Table::new([
        "Model",
        "Processor",
        "Phy ms",
        "Vir ms",
        "Phy mem%",
        "Vir mem%",
    ])
    .with_title("Table 7: physical vs containerized Android");
    for row in exp::tab7_virtualization() {
        t.row([
            row.model.to_string(),
            row.processor.to_string(),
            fnum(row.phy_ms, 1),
            fnum(row.vir_ms, 1),
            fnum(row.phy_mem_pct, 1),
            fnum(row.vir_mem_pct, 1),
        ]);
    }
    t.render()
}

/// Fig. 14 — six-generation SoC evolution.
pub fn fig14() -> String {
    let mut t = Table::new([
        "SoC",
        "Year",
        "R50 CPU ms",
        "R50 GPU ms",
        "R50 DSP ms",
        "V4 CPU fps",
        "V4 HW fps",
        "V5 CPU fps",
        "V5 HW fps",
    ])
    .with_title("Fig.14: SoC performance evolution 2017-2022");
    for row in exp::fig14_longitudinal() {
        t.row([
            row.generation.name().to_string(),
            format!("{}", row.generation.release_year()),
            fnum(row.dl_cpu_ms, 1),
            fnum(row.dl_gpu_ms, 1),
            row.dl_dsp_ms.map_or("-".into(), |v| fnum(v, 1)),
            fnum(row.v4_cpu_fps, 0),
            fnum(row.v4_hw_fps, 0),
            fnum(row.v5_cpu_fps, 0),
            fnum(row.v5_hw_fps, 0),
        ]);
    }
    let base = SocGeneration::Sd865;
    let mut out = t.render();
    out.push_str(&format!(
        "anchors: CPU 4.8x, GPU 3.2x (2017->2022); DSP 8.4x (845->8+Gen1); V4 CPU on {} = 2.3x of SD835\n",
        base.name()
    ));
    out
}

/// Live transcoding farm day (beyond the paper's artifacts): the default
/// production-scale diurnal day on one enclosure, advanced by the
/// analytic steady-state fast path, with a board-down fault at the
/// 21:00 peak and GOP-checkpoint-priced migrations.
pub fn farm() -> String {
    use socc_cluster::videofarm::{generate_schedule, run_farm, FarmConfig, FarmMode};
    let cfg = FarmConfig::default();
    let schedule = generate_schedule(&cfg);
    let r = run_farm(&cfg, &schedule, FarmMode::Analytic, &|| 0);
    let mut t = Table::new(["metric", "value"]).with_title(format!(
        "Live transcoding farm: {} SoCs, {} h day, fault at t={} s",
        cfg.socs,
        cfg.horizon_secs / 3600,
        cfg.fault.map_or(0, |f| f.at_secs),
    ));
    t.row([
        "sessions planned".into(),
        format!("{}", schedule.session_count()),
    ]);
    t.row([
        "admitted / rejected".into(),
        format!("{} / {}", r.admitted, r.rejected),
    ]);
    t.row([
        "hw / cpu encoded".into(),
        format!("{} / {}", r.hw_sessions, r.cpu_sessions),
    ]);
    t.row(["peak concurrent".into(), format!("{}", r.peak_concurrent)]);
    t.row(["live at fault".into(), format!("{}", r.concurrent_at_fault)]);
    t.row([
        "migrations / fault drops".into(),
        format!("{} / {}", r.migrations, r.fault_drops),
    ]);
    t.row([
        "MTTR mean / max".into(),
        format!(
            "{} / {} ms",
            fnum(r.mttr_mean_ms(), 1),
            fnum(r.mttr_max_ms, 1)
        ),
    ]);
    t.row([
        "checkpoint state moved".into(),
        format!("{} MB", fnum(r.checkpoint_bytes / 1e6, 1)),
    ]);
    t.row([
        "ABR switches / drops".into(),
        format!("{} / {}", r.abr_switches, r.abr_drops),
    ]);
    t.row([
        "mean PSNR".into(),
        format!("{} dB", fnum(r.mean_psnr_db(), 2)),
    ]);
    t.row([
        "energy / session-hour".into(),
        format!("{} J", fnum(r.energy_per_session_hour_j(), 0)),
    ]);
    t.row([
        "analytic spans vs events".into(),
        format!("{} vs {}", r.spans, schedule.event_count()),
    ]);
    t.render()
}

/// All experiment ids in paper order (what-if artifacts follow the paper's
/// tables/figures).
pub const ALL_IDS: [&str; 22] = [
    "fig1",
    "tab1",
    "tab2",
    "fig5",
    "tab3",
    "tab3_full",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "tab4",
    "tab5",
    "tab6",
    "tab7",
    "fig14",
    "avail",
    "fig-avail-domains",
    "farm",
];

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<String> {
    Some(match id {
        "fig1" => fig1(),
        "tab1" => tab1(),
        "tab2" => tab2(),
        "fig5" => fig5(),
        "tab3" => tab3(),
        "tab3_full" => tab3_full(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "tab4" => tab4(),
        "tab5" => tab5(),
        "tab6" => tab6(),
        "tab7" => tab7(),
        "fig14" => fig14(),
        "avail" => avail(),
        "fig-avail-domains" => fig_avail_domains(),
        "farm" => farm(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_runs_and_produces_output() {
        for id in ALL_IDS {
            let out = run(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(out.len() > 100, "{id} output too short");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99").is_none());
    }

    #[test]
    fn tab5_contains_all_three_workloads() {
        let out = tab5();
        assert!(out.contains("live streaming TpC"));
        assert!(out.contains("archive TpC"));
        assert!(out.contains("DL serving TpC"));
        assert!(out.contains("SoC Cluster SoC-DSP"));
    }

    #[test]
    fn avail_is_deterministic_and_covers_the_sweep() {
        let a = avail();
        let b = avail();
        assert_eq!(a, b, "fixed seeds must give byte-identical output");
        // Two AFR multipliers × three windows = six data rows.
        let rows = a
            .lines()
            .filter(|l| l.starts_with("2000") || l.starts_with("8000"))
            .count();
        assert_eq!(rows, 6, "sweep rows missing:\n{a}");
        assert!(a.contains("win s"));
    }

    #[test]
    fn fig_avail_domains_shows_the_correlation_penalty() {
        let a = fig_avail_domains();
        assert_eq!(a, fig_avail_domains(), "fixed seeds must be byte-identical");
        assert!(a.contains("0 invariant violations"), "violations:\n{a}");
        // Three board-AFR tiers, four pairs each.
        assert_eq!(a.matches("pp").count(), 3, "tier rows missing:\n{a}");
        // The overall gap is positive: correlated sits strictly below.
        let overall = a.lines().find(|l| l.starts_with("overall:")).unwrap();
        assert!(
            !overall.contains("gap -") && !overall.contains("gap 0.0000"),
            "no correlation penalty:\n{a}"
        );
    }

    #[test]
    fn fig13_contains_both_variants() {
        let out = fig13();
        assert!(out.contains("with pipelining"));
        assert!(out.matches("Fig.13").count() == 2);
    }
}
