//! Fleet-level chaos campaigns: site-tier faults over the sharded fleet
//! simulator, with live inter-site migration under the microscope.
//!
//! Each campaign builds a fleet whose per-site session capacity sits
//! deliberately close to the diurnal demand envelope, then injects one
//! *correlated* site-tier schedule — a regional WAN partition storm, a
//! full-site blackout, and a rail brownout all striking at the same sync
//! window — and an *independent twin* that re-spreads the same fault
//! volume (every storm site as a lone partition of equal length, the
//! blackout and brownout at re-drawn windows) across the run. The pair
//! isolates the cost of correlation one tier above `--chaos`: a regional
//! storm displaces several sites' sessions into the fleet's
//! *instantaneous* headroom at once, where the same sites partitioned one
//! at a time are absorbed by headroom that has time to recover.
//!
//! Invariants checked after **every** barrier window, on every run:
//!
//! 1. session accounting stays closed fleet-wide
//!    (`routed = finished + live + rejected + in-flight`, migration flows
//!    balance per site — [`FleetSim::verify_session_accounting`]);
//! 2. a blacked-out site's power sits at its chassis floor (the energy
//!    ledger flatlines, it does not coast at the pre-fault level);
//!
//! and at end of run:
//!
//! 3. per-site energy conservation (meter vs component ledger) and the
//!    fleet total equal to the sum of per-site ledgers;
//! 4. every displaced session drained: migrations landed or cancelled,
//!    no orphaned instances, no pending heals;
//! 5. availability above the campaign floor;
//! 6. no site orchestrator silently dropped a workload.
//!
//! The correlated side runs once per [`WORKER_COUNTS`] entry and the
//! fleet digests must be bit-identical — chaos must not cost the
//! conservative-sync determinism the fleet simulator is built on. A
//! violating campaign is shrunk to a minimal fault schedule by greedy
//! event removal and reported with a `--fleetchaos --seed N --step K`
//! repro line. Equal seeds give byte-identical replays.

use std::time::Instant;

use crate::harness::{mix_seed, JsonBuilder};
use crate::sweep::parallel_map_with;

use socc_cluster::evacuation::EvacuationPacing;
use socc_cluster::faults::{SiteFault, SiteFaultEvent};
use socc_cluster::fleet::{gaming_checkpoint, FleetConfig, FleetReport, FleetSim};
use socc_net::wan::WanFabric;
use socc_sim::rng::SimRng;
use socc_sim::time::SimDuration;
use socc_sim::units::DataRate;

/// Worker counts the correlated side of every campaign runs at; the
/// fleet digest must be bit-identical across all of them.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Fraction of fault-displaced sessions that must complete a live
/// inter-site migration over the sweep (the rest may only be cancelled
/// by their own users leaving — never lost).
pub const MIN_LIVE_MIGRATION_RATE: f64 = 0.90;

/// A dark site's instantaneous power may exceed its chassis floor by at
/// most this factor (the fan spins down over minutes, not instantly).
pub const DARK_POWER_SLACK: f64 = 1.05;

/// Storm durations in windows, swept by campaign index.
const STORM_WINDOWS: [usize; 3] = [2, 4, 8];
/// Blackout durations in windows, swept on a coarser stride.
const BLACKOUT_WINDOWS: [usize; 3] = [1, 2, 4];
/// Brownout durations in windows, swept on the coarsest stride.
const BROWNOUT_WINDOWS: [usize; 2] = [3, 6];

/// Per-site session capacity the campaigns run at. Deliberately close to
/// the peak of the phased demand envelope: a regional storm's burst of
/// displaced sessions must compete for real headroom, which is where the
/// correlated/independent gap lives.
const SESSION_CAPACITY: usize = 150;

/// Migration lane the campaigns reserve out of each site's WAN uplink —
/// narrow enough that a whole-site evacuation drains in waves.
const MIGRATION_LANE_MBPS: f64 = 200.0;

/// Concurrent checkpoint transfers per displaced site.
const MIGRATION_STREAMS: usize = 4;

/// Campaign-sweep parameters.
#[derive(Debug, Clone)]
pub struct FleetChaosOptions {
    /// Number of campaign *pairs* (each runs correlated + independent).
    pub campaigns: usize,
    /// Master seed; campaign `k` derives its own seed from it.
    pub seed: u64,
    /// Sites in each campaign fleet.
    pub sites: usize,
    /// WAN regions (the storm blast radius is one region block).
    pub regions: usize,
    /// Simulated hours per campaign.
    pub hours: u64,
    /// Synchronization window, seconds.
    pub window_secs: u64,
    /// Post-run availability must not fall below this.
    pub availability_floor: f64,
}

impl Default for FleetChaosOptions {
    fn default() -> Self {
        Self {
            campaigns: 64,
            seed: 42,
            sites: 12,
            regions: 4,
            hours: 4,
            window_secs: 120,
            availability_floor: 0.80,
        }
    }
}

impl FleetChaosOptions {
    /// Barrier windows per campaign run.
    pub fn windows(&self) -> usize {
        (self.hours * 3600 / self.window_secs) as usize
    }

    /// The fleet every campaign run of pair `k` is built from.
    pub fn fleet_config(&self, k: usize) -> FleetConfig {
        FleetConfig {
            sites: self.sites,
            regions: self.regions,
            hours: self.hours,
            window: SimDuration::from_secs(self.window_secs),
            seed: mix_seed(self.seed, k),
            session_capacity: SESSION_CAPACITY,
            // Site-tier chaos owns the fault plane: the legacy Poisson
            // partition stream is off so the twin comparison is clean.
            mean_partitions: 0.0,
            migration: EvacuationPacing {
                max_concurrent: MIGRATION_STREAMS,
                state_size: gaming_checkpoint(10.0),
                bottleneck: DataRate::mbps(MIGRATION_LANE_MBPS),
            },
            ..FleetConfig::default()
        }
    }
}

/// Draws campaign `k`'s correlated schedule and its independent twin.
///
/// Correlated: a regional storm, a blackout outside the storm region and
/// a brownout at a third site, all at the same window. Independent: the
/// same fault volume — each storm site as a single-site partition of the
/// same duration, blackout and brownout unchanged — at windows re-drawn
/// independently over the same injection range.
pub fn campaign_schedules(
    opts: &FleetChaosOptions,
    k: usize,
) -> (Vec<SiteFaultEvent>, Vec<SiteFaultEvent>) {
    let windows = opts.windows();
    // Faults land in the first ~five-eighths of the run so every
    // migration has windows left to drain before the books close.
    let (lo, hi) = (windows / 8, windows * 5 / 8);
    let wan = WanFabric::edge_fleet_regions(opts.sites, opts.regions);
    let mut rng = SimRng::seed(mix_seed(opts.seed, k)).split("fleetchaos-schedule");

    let storm_at = rng.uniform_usize(lo, hi);
    let region = rng.uniform_usize(0, opts.regions);
    let block: Vec<usize> = wan.sites_of_region(region).collect();
    let outside: Vec<usize> = (0..opts.sites).filter(|s| !block.contains(s)).collect();
    let blackout_site = outside[rng.uniform_usize(0, outside.len())];
    let brownout_site = {
        let rest: Vec<usize> = outside
            .iter()
            .copied()
            .filter(|&s| s != blackout_site)
            .collect();
        rest[rng.uniform_usize(0, rest.len())]
    };
    let storm_dur = STORM_WINDOWS[k % STORM_WINDOWS.len()];
    let blackout_dur = BLACKOUT_WINDOWS[(k / 3) % BLACKOUT_WINDOWS.len()];
    let brownout_dur = BROWNOUT_WINDOWS[(k / 9) % BROWNOUT_WINDOWS.len()];

    let correlated = vec![
        SiteFaultEvent {
            window: storm_at,
            fault: SiteFault::RegionStorm {
                region,
                windows: storm_dur,
            },
        },
        SiteFaultEvent {
            window: storm_at,
            fault: SiteFault::Blackout {
                site: blackout_site,
                windows: blackout_dur,
            },
        },
        SiteFaultEvent {
            window: storm_at,
            fault: SiteFault::Brownout {
                site: brownout_site,
                windows: brownout_dur,
            },
        },
    ];

    let mut spread = SimRng::seed(mix_seed(opts.seed, k)).split("fleetchaos-spread");
    let mut independent: Vec<SiteFaultEvent> = block
        .iter()
        .map(|&site| SiteFaultEvent {
            window: spread.uniform_usize(lo, hi),
            fault: SiteFault::Partition {
                site,
                windows: storm_dur,
            },
        })
        .collect();
    independent.push(SiteFaultEvent {
        window: spread.uniform_usize(lo, hi),
        fault: SiteFault::Blackout {
            site: blackout_site,
            windows: blackout_dur,
        },
    });
    independent.push(SiteFaultEvent {
        window: spread.uniform_usize(lo, hi),
        fault: SiteFault::Brownout {
            site: brownout_site,
            windows: brownout_dur,
        },
    });
    independent.sort_by_key(|e| (e.window, e.fault.order()));
    (correlated, independent)
}

/// One fleet run of a campaign side.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// Fleet result digest.
    pub digest: u64,
    /// Digest as hex (what the artifact and repro text show).
    pub digest_hex: String,
    /// Fleet totals.
    pub report: FleetReport,
    /// Invariant violations, empty on a clean run.
    pub violations: Vec<String>,
}

/// Runs one side of a campaign at `workers` step threads, checking the
/// per-window and end-of-run invariants.
pub fn run_side(
    cfg: FleetConfig,
    schedule: &[SiteFaultEvent],
    workers: usize,
    availability_floor: f64,
) -> CampaignRun {
    let mut fleet = FleetSim::with_site_faults(cfg, schedule.to_vec());
    let mut violations = Vec::new();
    while fleet.plan_window() {
        let jobs = fleet.take_window();
        let (jobs, _) = parallel_map_with(
            jobs,
            workers,
            |_| (),
            |_, mut job, _| {
                job.step();
                job
            },
        );
        fleet.absorb(jobs);
        let w = fleet.windows_done() - 1;
        if let Err(e) = fleet.verify_session_accounting() {
            violations.push(format!("window {w}: {e}"));
        }
        for site in 0..cfg.sites {
            if !fleet.is_dark(site) {
                continue;
            }
            let orch = fleet.shard(site).orchestrator();
            let power = orch.power().as_watts();
            let floor = orch.cluster().chassis_power().as_watts();
            if power > floor * DARK_POWER_SLACK {
                violations.push(format!(
                    "window {w}: dark site {site} draws {power:.1} W \
                     (chassis floor {floor:.1} W) — the blackout ledger is leaking"
                ));
            }
        }
        if violations.len() >= 8 {
            break; // a broken run repeats itself; keep the report short
        }
    }
    let report = fleet.report();
    if fleet.done() {
        if report.in_flight != 0 {
            violations.push(format!(
                "{} migrations still in flight at end of run",
                report.in_flight
            ));
        }
        if fleet.orphaned_instances() != 0 {
            violations.push(format!(
                "{} orphaned instances never reaped",
                fleet.orphaned_instances()
            ));
        }
        if fleet.pending_heals() != 0 {
            violations.push(format!("{} heals never fired", fleet.pending_heals()));
        }
        let availability = report.availability();
        if availability + 1e-12 < availability_floor {
            violations.push(format!(
                "availability {availability:.4} below floor {availability_floor:.2}"
            ));
        }
        let mut ledger_kwh = 0.0;
        for site in 0..cfg.sites {
            let orch = fleet.shard(site).orchestrator();
            if let Err(err) = orch.verify_energy_conservation(1e-6) {
                violations.push(format!(
                    "site {site} energy conservation off by {err:.2e} relative"
                ));
            }
            if orch.stats().dropped != 0 {
                violations.push(format!(
                    "site {site} silently dropped {} workloads",
                    orch.stats().dropped
                ));
            }
            ledger_kwh += orch.energy().as_joules() / 3.6e6;
        }
        let fleet_err = (report.fleet_kwh - ledger_kwh).abs() / ledger_kwh.max(1e-12);
        if fleet_err > 1e-9 {
            violations.push(format!(
                "fleet energy {:.6} kWh != sum of site ledgers {ledger_kwh:.6} kWh",
                report.fleet_kwh
            ));
        }
    }
    CampaignRun {
        digest: fleet.digest(),
        digest_hex: fleet.digest_hex(),
        report,
        violations,
    }
}

/// Outcome of one campaign pair.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Campaign index (the `--step` argument).
    pub index: usize,
    /// Correlated run (workers = 1; the other worker counts must agree
    /// bit for bit).
    pub correlated: CampaignRun,
    /// Independent twin (workers = 1).
    pub independent: CampaignRun,
    /// Correlated digests at every [`WORKER_COUNTS`] entry.
    pub worker_digests: Vec<String>,
    /// Violations across the pair, tagged with the side they came from.
    pub violations: Vec<String>,
}

impl PairOutcome {
    /// True when every worker-count run produced the same digest.
    pub fn digests_match(&self) -> bool {
        self.worker_digests
            .iter()
            .all(|d| *d == self.worker_digests[0])
    }
}

/// Runs campaign pair `k`: the correlated side at every worker count,
/// the independent twin once.
pub fn run_campaign(opts: &FleetChaosOptions, k: usize) -> PairOutcome {
    let (corr_schedule, ind_schedule) = campaign_schedules(opts, k);
    let cfg = opts.fleet_config(k);
    let mut worker_runs: Vec<(usize, CampaignRun)> = WORKER_COUNTS
        .iter()
        .map(|&w| (w, run_side(cfg, &corr_schedule, w, opts.availability_floor)))
        .collect();
    let independent = run_side(cfg, &ind_schedule, 1, opts.availability_floor);

    let worker_digests: Vec<String> = worker_runs
        .iter()
        .map(|(_, r)| r.digest_hex.clone())
        .collect();
    let mut violations = Vec::new();
    if worker_digests.iter().any(|d| *d != worker_digests[0]) {
        violations.push(format!(
            "correlated: digest differs across worker counts {WORKER_COUNTS:?}: \
             {worker_digests:?} — chaos broke conservative-sync determinism"
        ));
    }
    let correlated = worker_runs.swap_remove(0).1;
    for v in &correlated.violations {
        violations.push(format!("correlated: {v}"));
    }
    for v in &independent.violations {
        violations.push(format!("independent: {v}"));
    }
    PairOutcome {
        index: k,
        correlated,
        independent,
        worker_digests,
        violations,
    }
}

/// One shrunk invariant violation.
#[derive(Debug, Clone)]
pub struct ViolationRecord {
    /// Campaign index.
    pub campaign: usize,
    /// First violation message (side-tagged).
    pub detail: String,
    /// Events left after greedy shrinking (minimal repro schedule).
    pub minimal_events: usize,
    /// One-line repro command.
    pub repro: String,
}

/// Greedily removes events from `schedule` while the side still
/// violates, returning the minimal violating schedule. Digest-mismatch
/// violations shrink too: the check re-runs the subset at one and eight
/// workers.
fn shrink(opts: &FleetChaosOptions, k: usize, schedule: &[SiteFaultEvent]) -> Vec<SiteFaultEvent> {
    let cfg = opts.fleet_config(k);
    let violates = |s: &[SiteFaultEvent]| {
        let one = run_side(cfg, s, 1, opts.availability_floor);
        if !one.violations.is_empty() {
            return true;
        }
        one.digest != run_side(cfg, s, 8, opts.availability_floor).digest
    };
    let mut current = schedule.to_vec();
    loop {
        let mut progressed = false;
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if violates(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Aggregated result of a fleet-chaos sweep.
#[derive(Debug, Clone)]
pub struct FleetChaosReport {
    /// Options the sweep ran with.
    pub options: FleetChaosOptions,
    /// Every campaign pair.
    pub outcomes: Vec<PairOutcome>,
    /// Shrunk violations (empty on a clean sweep).
    pub violations: Vec<ViolationRecord>,
    /// Mean availability across correlated campaigns.
    pub correlated_mean: f64,
    /// Worst correlated campaign.
    pub correlated_min: f64,
    /// Mean availability across independent twins.
    pub independent_mean: f64,
    /// Worst independent twin.
    pub independent_min: f64,
    /// Sessions displaced by site faults, summed over every run.
    pub stranded: u64,
    /// Displaced sessions that completed a live migration.
    pub migrated: u64,
    /// Displaced sessions whose users left mid-transfer.
    pub migration_cancelled: u64,
    /// Migration placements deferred a window.
    pub migration_retries: u64,
    /// FNV fold of every correlated digest, hex — the sweep's identity
    /// for `--check`.
    pub digest_hex: String,
    /// Wall-clock seconds for the sweep.
    pub elapsed_secs: f64,
    /// Fleet runs per wall-clock second.
    pub runs_per_sec: f64,
}

impl FleetChaosReport {
    /// Fraction of displaced sessions that completed a live migration,
    /// of those whose users did not leave mid-transfer.
    pub fn live_migration_rate(&self) -> f64 {
        if self.stranded == 0 {
            return 1.0;
        }
        self.migrated as f64 / self.stranded as f64
    }
}

/// Runs the full sweep: `campaigns` pairs, shrink on every violation.
pub fn run_fleet_chaos(opts: &FleetChaosOptions) -> FleetChaosReport {
    let started = Instant::now();
    let outcomes: Vec<PairOutcome> = (0..opts.campaigns).map(|k| run_campaign(opts, k)).collect();

    let mut violations = Vec::new();
    for o in &outcomes {
        if o.violations.is_empty() {
            continue;
        }
        let (corr, ind) = campaign_schedules(opts, o.index);
        let side = if o.violations[0].starts_with("independent:") {
            ind
        } else {
            corr
        };
        let minimal = shrink(opts, o.index, &side);
        violations.push(ViolationRecord {
            campaign: o.index,
            detail: o.violations[0].clone(),
            minimal_events: minimal.len(),
            repro: format!(
                "cargo run --release -p socc-bench --bin bench -- --fleetchaos --seed {} --step {}",
                opts.seed, o.index
            ),
        });
    }

    let stats = |f: fn(&PairOutcome) -> f64| {
        let vals: Vec<f64> = outcomes.iter().map(f).collect();
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        (mean, if min.is_finite() { min } else { 1.0 })
    };
    let (correlated_mean, correlated_min) = stats(|o| o.correlated.report.availability());
    let (independent_mean, independent_min) = stats(|o| o.independent.report.availability());
    let sum = |f: fn(&FleetReport) -> u64| {
        outcomes
            .iter()
            .map(|o| f(&o.correlated.report) + f(&o.independent.report))
            .sum::<u64>()
    };

    // FNV-1a over the correlated digests: the sweep's identity.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for o in &outcomes {
        for b in o.correlated.digest.to_le_bytes() {
            digest ^= u64::from(b);
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    let elapsed_secs = started.elapsed().as_secs_f64();
    let runs = opts.campaigns * (WORKER_COUNTS.len() + 1);
    FleetChaosReport {
        options: opts.clone(),
        violations,
        correlated_mean,
        correlated_min,
        independent_mean,
        independent_min,
        stranded: sum(|r| r.stranded),
        migrated: sum(|r| r.migrated),
        migration_cancelled: sum(|r| r.migration_cancelled),
        migration_retries: sum(|r| r.migration_retries),
        digest_hex: format!("{digest:016x}"),
        elapsed_secs,
        runs_per_sec: runs as f64 / elapsed_secs.max(1e-9),
        outcomes,
    }
}

/// Renders one side of a pair as deterministic text (no wall-clock).
fn render_run(label: &str, run: &CampaignRun) -> String {
    use std::fmt::Write as _;
    let r = &run.report;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {label}: availability {:.6}, digest {}",
        r.availability(),
        run.digest_hex
    );
    let _ = writeln!(
        s,
        "    routed {} finished {} rejected {} unplaceable {}",
        r.routed, r.finished, r.rejected, r.unplaceable
    );
    let _ = writeln!(
        s,
        "    stranded {} migrated {} cancelled {} retries {} killed {} zombies {}",
        r.stranded,
        r.migrated,
        r.migration_cancelled,
        r.migration_retries,
        r.killed,
        r.zombies_reaped
    );
    let _ = writeln!(
        s,
        "    partitions {} storms {} blackouts {} brownouts {}",
        r.partitions, r.storms, r.blackouts, r.brownouts
    );
    if run.violations.is_empty() {
        let _ = writeln!(s, "    invariants: ok");
    } else {
        for v in &run.violations {
            let _ = writeln!(s, "    VIOLATION: {v}");
        }
    }
    s
}

/// Replays campaign pair `k` and renders the outcome. Pure function of
/// `(opts, k)` — two calls give byte-identical strings, which is what
/// makes `--fleetchaos --seed N --step K` a real repro.
pub fn replay(opts: &FleetChaosOptions, k: usize) -> String {
    use std::fmt::Write as _;
    let (corr_schedule, ind_schedule) = campaign_schedules(opts, k);
    let pair = run_campaign(opts, k);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "campaign {k}: correlated {} events, independent {} events",
        corr_schedule.len(),
        ind_schedule.len()
    );
    for e in &corr_schedule {
        let _ = writeln!(s, "  corr w{}: {:?}", e.window, e.fault);
    }
    let _ = writeln!(
        s,
        "  worker digests {:?}: {}",
        WORKER_COUNTS,
        if pair.digests_match() {
            "identical"
        } else {
            "MISMATCH"
        }
    );
    s.push_str(&render_run("correlated", &pair.correlated));
    s.push_str(&render_run("independent", &pair.independent));
    s
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the `BENCH_fleetchaos.json` artifact.
pub fn report_json(r: &FleetChaosReport) -> String {
    let o = &r.options;
    let all_match = r.outcomes.iter().all(|p| p.digests_match());
    let sum = |f: fn(&FleetReport) -> u64| {
        r.outcomes
            .iter()
            .map(|p| f(&p.correlated.report) + f(&p.independent.report))
            .sum::<u64>()
    };
    let mut j = JsonBuilder::new();
    j.str("benchmark", "fleet_chaos");
    j.object("config", |j| {
        j.int("campaigns", o.campaigns as u64)
            .int("seed", o.seed)
            .int("sites", o.sites as u64)
            .int("regions", o.regions as u64)
            .int("hours", o.hours)
            .int("window_secs", o.window_secs)
            .f64("availability_floor", o.availability_floor)
            .int("session_capacity", SESSION_CAPACITY as u64)
            .f64("migration_lane_mbps", MIGRATION_LANE_MBPS)
            .int("migration_streams", MIGRATION_STREAMS as u64);
    });
    j.f64("elapsed_secs", r.elapsed_secs)
        .f64("runs_per_sec", r.runs_per_sec)
        .int("invariant_violations", r.violations.len() as u64);
    j.object("determinism", |j| {
        j.str("digest", &r.digest_hex)
            .bool("digests_match_all_worker_counts", all_match);
    });
    j.object("availability", |j| {
        j.f64("independent_mean", r.independent_mean)
            .f64("independent_min", r.independent_min)
            .f64("correlated_mean", r.correlated_mean)
            .f64("correlated_min", r.correlated_min)
            .f64("correlation_gap", r.independent_mean - r.correlated_mean);
    });
    j.object("migration", |j| {
        j.int("stranded", r.stranded)
            .int("migrated", r.migrated)
            .int("cancelled", r.migration_cancelled)
            .int("retries", r.migration_retries)
            .f64("live_migration_rate", r.live_migration_rate());
    });
    j.object("faults", |j| {
        j.int("partitions", sum(|f| f.partitions))
            .int("storms", sum(|f| f.storms))
            .int("blackouts", sum(|f| f.blackouts))
            .int("brownouts", sum(|f| f.brownouts));
    });
    j.object("sessions", |j| {
        j.int("routed", sum(|f| f.routed))
            .int("rerouted", sum(|f| f.rerouted))
            .int("finished", sum(|f| f.finished))
            .int("rejected", sum(|f| f.rejected))
            .int("unplaceable", sum(|f| f.unplaceable))
            .int("killed", sum(|f| f.killed))
            .int("zombies_reaped", sum(|f| f.zombies_reaped));
    });
    let viols: Vec<String> = r
        .violations
        .iter()
        .map(|v| {
            format!(
                "\"campaign {}: {}; minimal schedule {} events; repro: {}\"",
                v.campaign,
                json_escape(&v.detail),
                v.minimal_events,
                json_escape(&v.repro),
            )
        })
        .collect();
    j.list("violations", &viols);
    j.finish()
}

/// Declares the fleet-chaos experiment for the unified runner
/// (`bench --run fleetchaos`): grid, execute, and the gates that used
/// to live in the `bench` binary's `--fleetchaos` branch. The smoke
/// tier drops from 64 to 12 campaign pairs (the old CI scale).
pub fn experiment() -> crate::runner::Experiment {
    use crate::runner::{gate_bool, gate_num, gate_str, same_config, ExpConfig, Experiment};
    Experiment {
        name: "fleetchaos",
        about: "correlated vs independent site-tier campaigns with live inter-site migration",
        artifact: "BENCH_fleetchaos.json",
        configs: |scale| {
            let full = FleetChaosOptions::default();
            let campaigns =
                scale
                    .campaigns
                    .unwrap_or(if scale.smoke { 12 } else { full.campaigns });
            vec![ExpConfig::new()
                .u64("campaigns", campaigns as u64)
                .u64("sites", full.sites as u64)
                .u64("regions", full.regions as u64)
                .u64("hours", full.hours)
                .u64("window_secs", full.window_secs)
                .f64("availability_floor", full.availability_floor)
                .u64("seed", crate::harness::mix_seed(scale.seed, 0))]
        },
        execute: |cfg, _alloc_count| {
            let report = run_fleet_chaos(&FleetChaosOptions {
                campaigns: cfg.get_u64("campaigns") as usize,
                seed: cfg.seed(),
                sites: cfg.get_u64("sites") as usize,
                regions: cfg.get_u64("regions") as usize,
                hours: cfg.get_u64("hours"),
                window_secs: cfg.get_u64("window_secs"),
                availability_floor: cfg.get_f64("availability_floor"),
            });
            Ok(report_json(&report))
        },
        gates: |doc| {
            let mut f = Vec::new();
            for v in crate::harness::extract_list(doc, "violations") {
                f.push(format!("invariant violation: {v}"));
            }
            if let Some(digests_match) = gate_bool(
                doc,
                "determinism",
                "digests_match_all_worker_counts",
                &mut f,
            ) {
                if !digests_match {
                    f.push(
                        "campaign digests differ across worker counts — \
                         conservative sync is leaking nondeterminism"
                            .to_string(),
                    );
                }
            }
            let corr = gate_num(doc, "availability", "correlated_mean", &mut f);
            let indep = gate_num(doc, "availability", "independent_mean", &mut f);
            if let (Some(corr), Some(indep)) = (corr, indep) {
                if corr >= indep {
                    f.push(format!(
                        "correlated availability {corr:.4} not below independent {indep:.4} — \
                         the site-tier domain model lost its teeth"
                    ));
                }
            }
            if let Some(rate) = gate_num(doc, "migration", "live_migration_rate", &mut f) {
                if rate < MIN_LIVE_MIGRATION_RATE {
                    f.push(format!(
                        "only {:.1}% of displaced sessions live-migrated (< {:.0}%)",
                        rate * 100.0,
                        MIN_LIVE_MIGRATION_RATE * 100.0
                    ));
                }
            }
            f
        },
        baseline_gates: |doc, baseline| {
            let mut f = Vec::new();
            if same_config(
                doc,
                baseline,
                &[
                    "campaigns",
                    "seed",
                    "sites",
                    "regions",
                    "hours",
                    "window_secs",
                ],
            ) {
                if let Some(digest) = gate_str(doc, "determinism", "digest", &mut f) {
                    if !baseline.contains(&format!("\"digest\": \"{digest}\"")) {
                        f.push(format!(
                            "fleet-chaos sweep digest {digest} differs from baseline — simulated \
                             behaviour drifted; refresh BENCH_fleetchaos.json deliberately"
                        ));
                    }
                }
            }
            f
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetChaosOptions {
        FleetChaosOptions {
            campaigns: 2,
            seed: 42,
            sites: 8,
            regions: 4,
            hours: 2,
            window_secs: 120,
            availability_floor: 0.80,
        }
    }

    #[test]
    fn schedules_carry_equal_fault_volume() {
        let opts = small();
        let wan = WanFabric::edge_fleet_regions(opts.sites, opts.regions);
        for k in 0..18 {
            let (corr, ind) = campaign_schedules(&opts, k);
            assert_eq!(corr.len(), 3, "storm + blackout + brownout");
            // Every correlated event fires at the same window.
            assert!(corr.iter().all(|e| e.window == corr[0].window));
            // The twin re-spreads the storm as per-site partitions of the
            // same duration: fault·site·window volume is conserved.
            let corr_volume: usize = corr
                .iter()
                .map(|e| match e.fault {
                    SiteFault::RegionStorm { region, windows } => {
                        wan.sites_of_region(region).len() * windows
                    }
                    f => f.windows(),
                })
                .sum();
            let ind_volume: usize = ind.iter().map(|e| e.fault.windows()).sum();
            assert_eq!(corr_volume, ind_volume, "campaign {k}");
            // Injection stays inside the drain margin.
            let hi = opts.windows() * 5 / 8;
            for e in corr.iter().chain(&ind) {
                assert!(e.window < hi, "campaign {k}: fault at {}", e.window);
            }
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let opts = small();
        let a = run_campaign(&opts, 1);
        let b = run_campaign(&opts, 1);
        assert_eq!(a.correlated.digest_hex, b.correlated.digest_hex);
        assert_eq!(a.independent.digest_hex, b.independent.digest_hex);
        assert_eq!(a.violations, b.violations);
        assert_eq!(replay(&opts, 0), replay(&opts, 0));
    }

    #[test]
    fn clean_sweep_has_no_violations_and_matching_digests() {
        let report = run_fleet_chaos(&small());
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        for o in &report.outcomes {
            assert!(
                o.digests_match(),
                "campaign {}: {:?}",
                o.index,
                o.worker_digests
            );
        }
        assert!(report.stranded > 0, "site faults must displace sessions");
        assert!(
            report.live_migration_rate() >= MIN_LIVE_MIGRATION_RATE,
            "live migration rate {}",
            report.live_migration_rate()
        );
    }

    #[test]
    fn a_concentrated_storm_hurts_more_than_its_scattered_twin() {
        // One hand-built pair against the loaded evening region: the
        // whole region partitioned at once must cost more served
        // session-windows than the same sites partitioned one at a time,
        // because the burst competes for instantaneous headroom.
        let opts = FleetChaosOptions {
            sites: 8,
            regions: 4,
            hours: 2,
            ..small()
        };
        let cfg = opts.fleet_config(0);
        let wan = WanFabric::edge_fleet_regions(opts.sites, opts.regions);
        // Region 3 is phased 18 h ahead: its evening peak sits inside the
        // two simulated hours.
        let block: Vec<usize> = wan.sites_of_region(3).collect();
        let corr = vec![SiteFaultEvent {
            window: 20,
            fault: SiteFault::RegionStorm {
                region: 3,
                windows: 6,
            },
        }];
        let ind: Vec<SiteFaultEvent> = block
            .iter()
            .enumerate()
            .map(|(i, &site)| SiteFaultEvent {
                window: 10 + 12 * i,
                fault: SiteFault::Partition { site, windows: 6 },
            })
            .collect();
        let corr_run = run_side(cfg, &corr, 1, 0.0);
        let ind_run = run_side(cfg, &ind, 1, 0.0);
        assert!(corr_run.violations.is_empty(), "{:?}", corr_run.violations);
        assert!(ind_run.violations.is_empty(), "{:?}", ind_run.violations);
        assert!(
            corr_run.report.availability() < ind_run.report.availability(),
            "correlated {:.4} vs independent {:.4}",
            corr_run.report.availability(),
            ind_run.report.availability()
        );
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = run_fleet_chaos(&FleetChaosOptions {
            campaigns: 1,
            ..small()
        });
        let doc = report_json(&report);
        assert!(doc.contains("\"benchmark\": \"fleet_chaos\""));
        assert!(doc.contains("\"correlation_gap\""));
        assert!(doc.contains("\"live_migration_rate\""));
        assert!(doc.contains("\"digests_match_all_worker_counts\": true"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn impossible_floor_shrinks_to_the_empty_schedule() {
        // With a floor above 1.0 every schedule violates — including the
        // empty one — so greedy shrinking must strip every event.
        let opts = FleetChaosOptions {
            campaigns: 1,
            availability_floor: 1.01,
            ..small()
        };
        let (corr, _) = campaign_schedules(&opts, 0);
        let minimal = shrink(&opts, 0, &corr);
        assert!(minimal.is_empty(), "{} events left", minimal.len());
    }
}
