//! Extension studies beyond the paper's artifacts: the §8 what-ifs and the
//! operational analyses a production orchestrator needs.

use socc_cluster::colocation::colocation_study;
use socc_cluster::gaming::replay_gaming_trace;
use socc_cluster::whatif;
use socc_dl::pipeline;
use socc_dl::queueing::{max_rate_within_slo, simulate_tail};
use socc_dl::{DType, Engine, ModelId};
use socc_hw::dvfs::{DvfsDomain, Governor};
use socc_hw::generations::SocGeneration;
use socc_sim::report::{fnum, pct, Table};
use socc_sim::rng::SimRng;
use socc_sim::time::SimDuration;
use socc_tco::sensitivity::{opex_significance_price, CostAssumptions};
use socc_tco::Platform;
use socc_video::abr::{cluster_ladder_capacity, price_ladder, Ladder};
use socc_workloads::packing::consolidate_population;
use socc_workloads::vmtrace::VmPopulation;

/// Next-generation cluster projections (§8 / §7).
pub fn generations() -> String {
    let mut t = Table::new([
        "SoC generation",
        "V1 streams/SoC",
        "V1 streams/cluster",
        "R50 DSP ms",
        "R50 DSP cluster fps",
        "live TpE gain",
    ])
    .with_title("what-if: a cluster built from each SoC generation");
    for g in SocGeneration::ALL {
        let p = whatif::project_generation(g);
        t.row([
            g.name().to_string(),
            format!("{}", p.v1_cpu_streams),
            format!("{}", p.v1_cluster_streams),
            p.r50_dsp_ms.map_or("-".into(), |v| fnum(v, 1)),
            p.r50_dsp_cluster_fps.map_or("-".into(), |v| fnum(v, 0)),
            fnum(p.live_tpe_gain, 2),
        ]);
    }
    t.render()
}

/// Collaborative inference under upgraded fabrics (§8's network lever).
pub fn fabric() -> String {
    let mut out = String::new();
    for gbps in [1.0, 10.0, 100.0] {
        let mut t = Table::new(["SoCs", "compute ms", "comm ms", "total ms", "comm share"])
            .with_title(format!(
                "what-if: tensor parallelism on a {gbps:.0} Gbps fabric"
            ));
        for socs in 1..=5 {
            let r = whatif::project_collab_with_fabric(ModelId::ResNet50, socs, gbps, false);
            t.row([
                format!("{socs}"),
                fnum(r.compute.as_millis_f64(), 1),
                fnum(r.comm.as_millis_f64(), 1),
                fnum(r.total.as_millis_f64(), 1),
                pct(r.comm_share()),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Tensor vs pipeline parallelism ablation.
pub fn partitioning() -> String {
    let mut t = Table::new([
        "Model",
        "SoCs",
        "TP latency ms",
        "PP latency ms",
        "TP fps",
        "PP fps",
    ])
    .with_title("what-if: tensor vs pipeline parallelism across SoCs");
    for model in [ModelId::ResNet50, ModelId::ResNet152] {
        for socs in [2usize, 3, 5] {
            let c = pipeline::compare(model, socs);
            t.row([
                model.label().to_string(),
                format!("{socs}"),
                fnum(c.tp_latency.as_millis_f64(), 1),
                fnum(c.pp_latency.as_millis_f64(), 1),
                fnum(c.tp_throughput, 1),
                fnum(c.pp_throughput, 1),
            ]);
        }
    }
    t.render()
}

/// Tail latency and SLO capacity per engine.
pub fn tail() -> String {
    let mut t = Table::new([
        "Engine",
        "Model",
        "service ms",
        "p99@70% ms",
        "max fps @50ms p99",
    ])
    .with_title("serving tail latency (FIFO queueing, Poisson arrivals)");
    let combos: [(Engine, ModelId, DType); 4] = [
        (Engine::QnnDsp, ModelId::ResNet50, DType::Int8),
        (Engine::QnnDsp, ModelId::ResNet152, DType::Int8),
        (Engine::TfLiteGpu, ModelId::ResNet50, DType::Fp32),
        (Engine::TvmIntel, ModelId::ResNet50, DType::Fp32),
    ];
    for (engine, model, dtype) in combos {
        let service = engine
            .latency(model, dtype, 1)
            .expect("supported")
            .as_millis_f64();
        let capacity = 1000.0 / service;
        let mut rng = SimRng::seed(11);
        let at70 = simulate_tail(
            engine,
            model,
            dtype,
            capacity * 0.7,
            SimDuration::from_secs(600),
            &mut rng,
        )
        .expect("supported");
        let max = max_rate_within_slo(engine, model, dtype, SimDuration::from_millis(50), 11)
            .expect("supported");
        t.row([
            engine.label().to_string(),
            model.label().to_string(),
            fnum(service, 1),
            fnum(at70.p99_ms, 1),
            fnum(max, 1),
        ]);
    }
    t.render()
}

/// VM fleet consolidation (Fig. 1 extension).
pub fn consolidation() -> String {
    let mut t = Table::new([
        "Population",
        "VMs",
        "SoC-eligible",
        "clusters needed",
        "trad. servers (whole fleet)",
        "SoC core util",
    ])
    .with_title("what-if: consolidating VM fleets onto SoC Clusters");
    let mut rng = SimRng::seed(77);
    for pop in [VmPopulation::Azure, VmPopulation::AlibabaEns] {
        let r = consolidate_population(pop, 6000, &mut rng);
        t.row([
            format!("{pop:?}"),
            format!("{}", r.total_vms),
            format!(
                "{} ({})",
                r.eligible,
                pct(r.eligible as f64 / r.total_vms as f64)
            ),
            format!("{}", r.clusters_needed),
            format!("{}", r.traditional_needed),
            pct(r.soc_core_utilization),
        ]);
    }
    t.render()
}

/// TCO sensitivity sweeps.
pub fn sensitivity() -> String {
    let mut out = String::new();
    let mut t = Table::new([
        "$/kWh",
        "cluster TCO",
        "GPU server TCO",
        "cluster OpEx share",
    ])
    .with_title("what-if: electricity price sweep (PUE 2.0, 36 months)");
    for price in [0.05, 0.0786, 0.15, 0.30, 0.60] {
        let a = CostAssumptions {
            electricity_usd_per_kwh: price,
            ..Default::default()
        };
        t.row([
            fnum(price, 3),
            fnum(a.monthly_tco(Platform::SocCluster), 0),
            fnum(a.monthly_tco(Platform::EdgeWithGpu), 0),
            pct(a.opex_share(Platform::SocCluster)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nelectricity price where OpEx reaches 25% of TCO: GPU server ${:.2}/kWh, cluster ${:.2}/kWh, CPU-only ${:.2}/kWh\n",
        opex_significance_price(Platform::EdgeWithGpu, 0.25),
        opex_significance_price(Platform::SocCluster, 0.25),
        opex_significance_price(Platform::EdgeWithoutGpu, 0.25),
    ));
    out
}

/// Gaming trace replay through the orchestrator.
pub fn gaming() -> String {
    let r = replay_gaming_trace(38, SimDuration::from_mins(15), 10.0, 42);
    let mut t =
        Table::new(["metric", "value"]).with_title("Fig.5 trace replayed on the orchestrator");
    t.row(["hours", &format!("{:.0}", r.hours)]);
    t.row(["peak sessions", &format!("{}", r.peak_sessions)]);
    t.row(["trough sessions", &format!("{}", r.trough_sessions)]);
    t.row(["peak power (W)", &format!("{:.0}", r.peak_power_w)]);
    t.row(["energy, sleep mgmt (kWh)", &format!("{:.2}", r.cluster_kwh)]);
    t.row([
        "energy, always awake (kWh)",
        &format!("{:.2}", r.always_awake_kwh),
    ]);
    t.row(["sleep savings", &pct(r.sleep_savings())]);
    t.row(["rejected sessions", &format!("{}", r.rejected)]);
    t.render()
}

/// DVFS governor comparison on a frame deadline.
pub fn dvfs() -> String {
    let mut t = Table::new(["domain", "governor", "OPP GHz", "busy ms", "energy mJ"])
        .with_title("what-if: DVFS governors on a 33 ms frame at 30% peak load");
    for domain in [DvfsDomain::kryo585_prime(), DvfsDomain::kryo585_gold()] {
        let deadline = SimDuration::from_millis(33);
        let cycles = domain.max_opp().freq.get() * 0.3 * deadline.as_secs_f64();
        for governor in [Governor::Performance, Governor::PaceToDeadline] {
            if let Some(r) = domain.energy_for(cycles, deadline, governor) {
                t.row([
                    domain.name.clone(),
                    format!("{governor:?}"),
                    fnum(r.opp.freq.as_ghz(), 2),
                    fnum(r.busy.as_millis_f64(), 1),
                    fnum(r.energy.as_joules() * 1e3, 2),
                ]);
            }
        }
    }
    t.render()
}

/// DL colocation on gaming-occupied SoCs (key finding 3).
pub fn colocation() -> String {
    let r = colocation_study(12, 0.8, 5);
    let mut t = Table::new(["metric", "value"])
        .with_title("colocation: free-riding INT8 serving on gaming SoCs");
    t.row(["hours", &format!("{:.0}", r.hours)]);
    t.row(["gaming-only energy (kWh)", &fnum(r.baseline_kwh, 2)]);
    t.row(["with colocation (kWh)", &fnum(r.colocated_kwh, 2)]);
    t.row(["DL samples served", &format!("{:.1}M", r.dl_samples / 1e6)]);
    t.row(["marginal samples/J", &fnum(r.marginal_samples_per_joule, 1)]);
    t.row([
        "dedicated A100 samples/J",
        &fnum(r.dedicated_a100_samples_per_joule, 1),
    ]);
    t.row(["advantage", &format!("{:.2}x", r.advantage())]);
    t.render()
}

/// ABR ladder capacity planning.
pub fn abr() -> String {
    let mut t = Table::new([
        "source",
        "rungs",
        "CPU pu",
        "egress Mbps",
        "ladders/SoC CPU",
        "ladders/SoC HW",
        "cluster (HW)",
    ])
    .with_title("ABR ladders: one ingest, many renditions");
    for id in ["V3", "V5", "V6"] {
        let v = socc_video::vbench::by_id(id).expect("vbench");
        let ladder = Ladder::standard(&v);
        let cost = price_ladder(&v, &ladder);
        t.row([
            id.to_string(),
            format!("{}", ladder.renditions.len()),
            fnum(cost.cpu_pu, 0),
            fnum(cost.net_mbps, 0),
            format!("{}", cost.ladders_per_soc_cpu),
            format!("{}", cost.ladders_per_soc_hw),
            format!("{}", cluster_ladder_capacity(&v, &ladder, true)),
        ]);
    }
    t.render()
}

/// Dynamic batching window sweep on the A100.
pub fn batching() -> String {
    use socc_dl::batcher::{simulate_batched, BatcherConfig};
    let mut t = Table::new(["window ms", "mean batch", "p50 ms", "p99 ms", "samples/J"])
        .with_title("dynamic batching at 200 fps offered (A100, R-50 FP32)");
    for delay_ms in [1u64, 5, 20, 50] {
        let mut rng = SimRng::seed(17);
        let r = simulate_batched(
            Engine::TensorRtA100,
            ModelId::ResNet50,
            DType::Fp32,
            200.0,
            BatcherConfig {
                max_batch: 64,
                max_delay: SimDuration::from_millis(delay_ms),
            },
            SimDuration::from_secs(120),
            &mut rng,
        )
        .expect("supported");
        t.row([
            format!("{delay_ms}"),
            fnum(r.mean_batch, 1),
            fnum(r.p50_ms, 1),
            fnum(r.p99_ms, 1),
            fnum(r.samples_per_joule, 2),
        ]);
    }
    t.render()
}

/// Latency/accuracy/energy Pareto front for serving.
pub fn pareto() -> String {
    use socc_dl::quant::{operating_points, pareto_front};
    let mut out = String::new();
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        let points = operating_points(model);
        let front = pareto_front(&points);
        let mut t = Table::new([
            "engine",
            "prec",
            "batch",
            "latency ms",
            "accuracy",
            "samples/J",
        ])
        .with_title(format!(
            "{}: Pareto front ({} of {} operating points)",
            model.label(),
            front.len(),
            points.len()
        ));
        let mut sorted = front.clone();
        sorted.sort_by(|a, b| a.latency_ms.partial_cmp(&b.latency_ms).expect("finite"));
        for p in sorted {
            t.row([
                p.engine.label().to_string(),
                p.dtype.label().to_string(),
                format!("{}", p.batch),
                fnum(p.latency_ms, 1),
                fnum(p.accuracy, 1),
                fnum(p.samples_per_joule, 2),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// PSU conversion losses across the load range.
pub fn psu() -> String {
    use socc_hw::psu::RedundantPsu;
    use socc_sim::units::Power;
    let pair = RedundantPsu::cluster_default();
    let mut one = pair;
    one.fail_module();
    let mut t = Table::new(["DC load W", "wall W (2 PSU)", "wall W (1 PSU)", "overhead"])
        .with_title("PSU conversion losses (2x400 W redundant pair)");
    for w in [30.0, 100.0, 200.0, 400.0, 589.0] {
        let load = Power::watts(w);
        let two = pair.wall_power(load).map(|p| p.as_watts());
        let single = one.wall_power(load).map(|p| p.as_watts());
        t.row([
            fnum(w, 0),
            two.map_or("-".into(), |v| fnum(v, 0)),
            single.map_or("overload".into(), |v| fnum(v, 0)),
            two.map_or("-".into(), |v| pct(v / w - 1.0)),
        ]);
    }
    t.render()
}

/// All extension ids.
pub const ALL_IDS: [&str; 13] = [
    "generations",
    "fabric",
    "partitioning",
    "tail",
    "consolidation",
    "sensitivity",
    "gaming",
    "dvfs",
    "colocation",
    "abr",
    "batching",
    "pareto",
    "psu",
];

/// Runs one extension by id.
pub fn run(id: &str) -> Option<String> {
    Some(match id {
        "generations" => generations(),
        "fabric" => fabric(),
        "partitioning" => partitioning(),
        "tail" => tail(),
        "consolidation" => consolidation(),
        "sensitivity" => sensitivity(),
        "gaming" => gaming(),
        "dvfs" => dvfs(),
        "colocation" => colocation(),
        "abr" => abr(),
        "batching" => batching(),
        "pareto" => pareto(),
        "psu" => psu(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_extension_runs() {
        for id in ALL_IDS {
            let out = run(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(out.len() > 80, "{id} output too short");
        }
    }

    #[test]
    fn unknown_extension_is_none() {
        assert!(run("nope").is_none());
    }
}
