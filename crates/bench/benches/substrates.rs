//! Micro-benchmarks of the simulation substrates themselves: event queue,
//! max-min fairness allocator, flow simulator, and FLOP counting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socc_net::fairness::{max_min_fair, FlowDemand};
use socc_net::sim::FlowNet;
use socc_net::tcp::TcpModel;
use socc_net::topology::Topology;
use socc_sim::event::EventQueue;
use socc_sim::time::SimTime;
use socc_sim::units::{DataRate, DataSize};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("substrate/event-queue-100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 1_000_000_007), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            std::hint::black_box(sum)
        })
    });
}

fn bench_fairness(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/max-min-fair");
    for flows in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &n| {
            let fabric = Topology::soc_cluster(60);
            let capacity: std::collections::HashMap<_, _> = (0..fabric.topology.link_count()
                as u32)
                .map(|i| {
                    let id = socc_net::LinkId(i);
                    (id, fabric.topology.link(id).capacity)
                })
                .collect();
            let demands: Vec<FlowDemand> = (0..n)
                .map(|i| FlowDemand {
                    route: fabric
                        .topology
                        .route(fabric.socs[i % 60], fabric.external)
                        .expect("routable"),
                    demand: None,
                })
                .collect();
            b.iter(|| std::hint::black_box(max_min_fair(&demands, &capacity)))
        });
    }
    group.finish();
}

fn bench_flow_sim(c: &mut Criterion) {
    c.bench_function("substrate/flownet-120-transfers", |b| {
        b.iter(|| {
            let fabric = Topology::soc_cluster(60);
            let mut net = FlowNet::new(fabric.topology.clone(), TcpModel::inter_soc());
            for i in 0..120 {
                net.start_transfer(
                    fabric.socs[i % 60],
                    fabric.socs[(i + 17) % 60],
                    DataSize::megabytes(4.0),
                )
                .expect("routable");
            }
            std::hint::black_box(net.run_to_idle())
        })
    });
}

fn bench_streams_reallocation(c: &mut Criterion) {
    c.bench_function("substrate/flownet-300-streams", |b| {
        b.iter(|| {
            let fabric = Topology::soc_cluster(60);
            let mut net = FlowNet::new(fabric.topology.clone(), TcpModel::inter_soc());
            for i in 0..300 {
                net.add_stream(fabric.socs[i % 60], fabric.external, DataRate::mbps(20.0))
                    .expect("routable");
            }
            std::hint::black_box(net.active_streams())
        })
    });
}

fn bench_flop_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/model-graph");
    for model in socc_dl::ModelId::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.label()),
            &model,
            |b, &m| {
                b.iter(|| {
                    let g = m.graph();
                    std::hint::black_box((g.gflops(), g.params(), g.halo_bytes_per_boundary()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_fairness,
    bench_flow_sim,
    bench_streams_reallocation,
    bench_flop_counting
);
criterion_main!(benches);
