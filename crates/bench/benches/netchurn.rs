//! Criterion wrapper around the network-churn perf harness: incremental
//! vs forced-full allocation under the same seeded op mix. The JSON
//! artifact comes from `bench --perf`; this bench exists for quick local
//! A/B timing (`cargo bench -p socc-bench --bench netchurn`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socc_bench::perf::{churn, PerfOptions};

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("net/churn-200-flows");
    for (label, force_full) in [("incremental", false), ("full", true)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &force_full,
            |b, &force_full| {
                b.iter(|| {
                    std::hint::black_box(churn(
                        &PerfOptions {
                            flows: 200,
                            churn_events: 200,
                            seed: 42,
                            force_full,
                        },
                        &|| 0,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
