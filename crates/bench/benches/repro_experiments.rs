//! Criterion benches: one group per paper table/figure, timing the full
//! regeneration of each artifact's data.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_repro(c: &mut Criterion) {
    let mut group = c.benchmark_group("repro");
    group.sample_size(10);
    for id in socc_bench::repro::ALL_IDS {
        group.bench_function(id, |b| {
            b.iter(|| std::hint::black_box(socc_bench::repro::run(id).expect("known id")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repro);
criterion_main!(benches);
