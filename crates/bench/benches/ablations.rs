//! Ablation benches for the design choices called out in DESIGN.md:
//! scheduler strategy, sleep states, tensor-parallel pipelining, and GPU
//! batch size. Each bench reports both wall time and (via labels) the
//! design points being compared; the companion integration tests assert
//! the *quality* differences (energy, latency) these choices make.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socc_cluster::orchestrator::{Orchestrator, OrchestratorConfig};
use socc_cluster::scheduler;
use socc_cluster::workload::WorkloadSpec;
use socc_dl::parallel::{tensor_parallel, CollabConfig};
use socc_dl::{DType, Engine, ModelId};
use socc_sim::time::{SimDuration, SimTime};

/// A day of diurnal live-stream churn under each scheduler strategy.
fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/scheduler");
    group.sample_size(10);
    for name in ["bin-pack", "round-robin", "spread"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| {
                let mut orch = Orchestrator::new(OrchestratorConfig {
                    scheduler: scheduler::by_name(name).expect("known scheduler"),
                    ..OrchestratorConfig::default()
                });
                let video = socc_video::vbench::by_id("V4").expect("vbench");
                let mut ids = Vec::new();
                // Ramp up 120 streams, ramp down, measure energy.
                for i in 0..120u64 {
                    orch.advance_to(SimTime::from_secs(i * 10));
                    if let Ok(id) = orch.submit(WorkloadSpec::LiveStreamCpu {
                        video: video.clone(),
                    }) {
                        ids.push(id);
                    }
                }
                for (i, id) in ids.drain(..).enumerate() {
                    orch.advance_to(SimTime::from_secs(1200 + i as u64 * 10));
                    let _ = orch.finish(id);
                }
                orch.advance_to(SimTime::from_secs(3600));
                std::hint::black_box(orch.energy())
            })
        });
    }
    group.finish();
}

/// Sleep-state management on vs off over an idle-heavy day.
fn bench_sleep_states(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/sleep");
    group.sample_size(10);
    for (label, sleep_after) in [
        ("enabled", Some(SimDuration::from_secs(30))),
        ("disabled", None),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &sleep_after,
            |b, &sleep| {
                b.iter(|| {
                    let mut orch = Orchestrator::new(OrchestratorConfig {
                        sleep_after: sleep,
                        ..OrchestratorConfig::default()
                    });
                    let video = socc_video::vbench::by_id("V1").expect("vbench");
                    let id = orch
                        .submit(WorkloadSpec::LiveStreamCpu { video })
                        .expect("one stream fits");
                    orch.advance_to(SimTime::from_secs(600));
                    orch.finish(id).expect("deployed");
                    orch.advance_to(SimTime::from_secs(7200));
                    std::hint::black_box(orch.energy())
                })
            },
        );
    }
    group.finish();
}

/// Tensor-parallel planning, pipelined vs not, 1–5 SoCs.
fn bench_collab_pipelining(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/collab-pipelining");
    for pipelined in [false, true] {
        let label = if pipelined { "pipelined" } else { "sequential" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &pipelined, |b, &p| {
            b.iter(|| {
                for socs in 1..=5 {
                    std::hint::black_box(tensor_parallel(
                        ModelId::ResNet50,
                        CollabConfig { socs, pipelined: p },
                    ));
                }
            })
        });
    }
    group.finish();
}

/// TensorRT batch-size sweep (latency/efficiency trade of §5.1).
fn bench_gpu_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/gpu-batch");
    for batch in [1usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                for model in ModelId::ALL {
                    std::hint::black_box(Engine::TensorRtA40.samples_per_joule(
                        model,
                        DType::Fp32,
                        batch,
                    ));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_sleep_states,
    bench_collab_pipelining,
    bench_gpu_batching
);
criterion_main!(benches);
