//! Evacuation-storm admission pacing.
//!
//! A whole-board failure displaces up to 65 workloads at once; re-placing
//! them all immediately turns their state transfers into an N-to-1 incast
//! at the destination boards' 1 GbE uplinks — exactly the burst the
//! packet-level engine shows overflowing a port buffer (`socc-net`'s
//! incast tests). [`EvacuationPacing`] spreads the admissions into waves
//! sized so the concurrent transfers of each wave fit the bottleneck:
//! the wave length comes from the *measured* fabric goodput (the
//! packet-mode calibration behind
//! [`TcpModel::inter_soc`](socc_net::tcp::TcpModel::inter_soc)), not from
//! the raw link rate, so pacing tracks what the fabric actually drains.
//!
//! The pacer is opt-in via
//! [`RecoveryConfig::evacuation_pacing`](crate::recovery::RecoveryConfig):
//! `None` (the default) keeps the recovery loop byte-identical to the
//! unpaced behaviour.

use socc_net::tcp::TcpModel;
use socc_sim::time::SimDuration;
use socc_sim::units::{DataRate, DataSize};

/// Admission pacing for a batch of fault-displaced workloads.
#[derive(Debug, Clone, Copy)]
pub struct EvacuationPacing {
    /// Migrations admitted concurrently (one wave).
    pub max_concurrent: usize,
    /// Workload state moved per migration.
    pub state_size: DataSize,
    /// Capacity of the narrowest escape link the wave shares.
    pub bottleneck: DataRate,
}

impl EvacuationPacing {
    /// Pacing for the SoC Cluster fabric: two concurrent migrations of
    /// 1 MB of state across a 1 GbE PCB uplink. Two lanes stay under the
    /// per-port ECN threshold, so a paced storm drains without drops.
    pub fn cluster_default() -> Self {
        Self {
            max_concurrent: 2,
            state_size: DataSize::megabytes(1.0),
            bottleneck: DataRate::bps(socc_hw::calib::PCB_UPLINK_BPS),
        }
    }

    /// Pacing for a fleet-level *site* evacuation across the WAN: eight
    /// concurrent migration streams of one session checkpoint (`state`)
    /// each, sharing the site's 10 Gbps WAN uplink
    /// ([`socc_net::wan::WanFabric::edge_fleet`]). Fleet chaos campaigns
    /// typically narrow the bottleneck to a reserved migration lane so an
    /// evacuation storm cannot starve live session traffic.
    pub fn wan_default(state: DataSize) -> Self {
        Self {
            max_concurrent: 8,
            state_size: state,
            bottleneck: DataRate::gbps(10.0),
        }
    }

    /// How long one wave of `max_concurrent` fair-sharing transfers takes
    /// to drain the bottleneck, at the calibrated (packet-measured)
    /// goodput of each transfer's fair share.
    pub fn wave_time(&self) -> SimDuration {
        let lanes = self.max_concurrent.max(1);
        let fair_share = DataRate::bps(self.bottleneck.as_bps() / lanes as f64);
        self.state_size / TcpModel::inter_soc().goodput(fair_share)
    }

    /// The admission offset of the `i`-th displaced workload: wave
    /// `i / max_concurrent` starts that many wave-times after detection.
    /// The first wave starts immediately, so pacing never delays a batch
    /// that already fits the fabric.
    pub fn offset_for(&self, i: usize) -> SimDuration {
        let lanes = self.max_concurrent.max(1);
        self.wave_time() * ((i / lanes) as f64)
    }

    /// Admission offsets for `n` displaced workloads
    /// ([`Self::offset_for`], batched).
    pub fn admission_offsets(&self, n: usize) -> Vec<SimDuration> {
        let lanes = self.max_concurrent.max(1);
        let wave = self.wave_time();
        (0..n).map(|i| wave * ((i / lanes) as f64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_wave_is_never_delayed() {
        let p = EvacuationPacing::cluster_default();
        let offsets = p.admission_offsets(5);
        assert_eq!(offsets[0], SimDuration::ZERO);
        assert_eq!(offsets[1], SimDuration::ZERO);
        assert!(offsets[2] > SimDuration::ZERO);
        assert_eq!(offsets[2], offsets[3]);
        assert_eq!(offsets[4], offsets[2] * 2.0);
    }

    #[test]
    fn wave_time_tracks_the_calibrated_goodput() {
        let p = EvacuationPacing::cluster_default();
        // 1 MB over half a 1 GbE link at the calibrated factor: a raw
        // (uncalibrated) drain would be faster, a naive serial one slower.
        let raw = p.state_size / DataRate::bps(p.bottleneck.as_bps() / 2.0);
        assert!(p.wave_time() > raw, "pacing must budget for goodput < raw");
        assert!(p.wave_time() < raw * 1.25, "factor is within 25% of raw");
    }

    #[test]
    fn offset_for_matches_the_batched_offsets() {
        for p in [
            EvacuationPacing::cluster_default(),
            EvacuationPacing::wan_default(DataSize::megabytes(8.0)),
        ] {
            let offsets = p.admission_offsets(13);
            for (i, &off) in offsets.iter().enumerate() {
                assert_eq!(p.offset_for(i), off, "lane {i}");
            }
        }
    }

    #[test]
    fn wan_pacing_spreads_a_site_evacuation_into_waves() {
        // A narrowed WAN migration lane forces a whole-site evacuation to
        // drain over many waves instead of hitting the uplink at once.
        let p = EvacuationPacing {
            bottleneck: DataRate::mbps(200.0),
            ..EvacuationPacing::wan_default(DataSize::megabytes(8.0))
        };
        assert!(p.wave_time() > SimDuration::from_millis(500));
        assert!(p.offset_for(480) > SimDuration::from_secs(30));
    }

    #[test]
    fn small_batches_fit_one_wave() {
        let p = EvacuationPacing::cluster_default();
        assert!(p
            .admission_offsets(2)
            .iter()
            .all(|&d| d == SimDuration::ZERO));
    }
}
