//! Workload specifications accepted by the orchestrator.

use serde::{Deserialize, Serialize};
use socc_dl::{DType, Engine, ModelId};
use socc_video::VideoMeta;

/// Identifies a deployed workload instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkloadId(pub u64);

/// Which SoC processor a DL serving workload runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SocProcessor {
    /// The Kryo CPU complex (TFLite).
    Cpu,
    /// The Adreno GPU (TFLite GPU delegate).
    Gpu,
    /// The Hexagon DSP (quantized only).
    Dsp,
}

impl SocProcessor {
    /// The engine model backing this processor on a cluster SoC.
    pub fn engine(self) -> Engine {
        match self {
            SocProcessor::Cpu => Engine::TfLiteCpu,
            SocProcessor::Gpu => Engine::TfLiteGpu,
            SocProcessor::Dsp => Engine::QnnDsp,
        }
    }
}

/// A workload submitted to the orchestrator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A live transcode stream pinned to the SoC CPU (libx264).
    LiveStreamCpu {
        /// The video being transcoded.
        video: VideoMeta,
    },
    /// A live transcode stream on the SoC hardware codec (MediaCodec).
    LiveStreamHw {
        /// The video being transcoded.
        video: VideoMeta,
    },
    /// An archive transcode job (one clip, as fast as possible, whole CPU).
    ArchiveJob {
        /// The video being transcoded.
        video: VideoMeta,
        /// Clip length in frames.
        frames: u64,
    },
    /// A continuous DL inference stream.
    DlServe {
        /// Target processor.
        processor: SocProcessor,
        /// Model served.
        model: ModelId,
        /// Serving precision.
        dtype: DType,
        /// Offered load in samples/s.
        offered_fps: f64,
    },
    /// A cloud-gaming session (the deployed clusters' production workload,
    /// §2.3): a GPU render slot plus outbound stream traffic.
    GamingSession {
        /// Outbound video bitrate in Mbps.
        stream_mbps: f64,
    },
}

impl WorkloadSpec {
    /// Short kind label for telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::LiveStreamCpu { .. } => "live-cpu",
            WorkloadSpec::LiveStreamHw { .. } => "live-hw",
            WorkloadSpec::ArchiveJob { .. } => "archive",
            WorkloadSpec::DlServe { .. } => "dl-serve",
            WorkloadSpec::GamingSession { .. } => "gaming",
        }
    }
}

/// Why the orchestrator refused a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionError {
    /// No SoC has the spare capacity the workload needs.
    NoCapacity,
    /// The workload's network demand would oversubscribe the fabric.
    NetworkBound,
    /// The SoC software stack cannot run this combination (e.g. FP32 on
    /// the DSP, archive on MediaCodec).
    Unsupported,
    /// The cluster is running degraded (PSU brownout) and admission is
    /// restricted to priorities at or above the configured floor.
    Degraded,
}

impl core::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdmissionError::NoCapacity => write!(f, "no SoC has spare capacity"),
            AdmissionError::NetworkBound => write!(f, "fabric bandwidth exhausted"),
            AdmissionError::Unsupported => write!(f, "unsupported workload for this hardware"),
            AdmissionError::Degraded => {
                write!(f, "cluster degraded: priority below the admission floor")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_engines() {
        assert_eq!(SocProcessor::Cpu.engine(), Engine::TfLiteCpu);
        assert_eq!(SocProcessor::Gpu.engine(), Engine::TfLiteGpu);
        assert_eq!(SocProcessor::Dsp.engine(), Engine::QnnDsp);
    }

    #[test]
    fn kind_labels() {
        let v = socc_video::vbench::by_id("V1").unwrap();
        assert_eq!(
            WorkloadSpec::LiveStreamCpu { video: v.clone() }.kind(),
            "live-cpu"
        );
        assert_eq!(
            WorkloadSpec::ArchiveJob {
                video: v,
                frames: 1
            }
            .kind(),
            "archive"
        );
        assert_eq!(
            WorkloadSpec::GamingSession { stream_mbps: 8.0 }.kind(),
            "gaming"
        );
    }
}
