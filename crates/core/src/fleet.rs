//! Sharded fleet simulation: O(100–1000) sites, one enclosure each,
//! stepped in parallel under conservative time-window synchronization.
//!
//! Every other module simulates a single 60-SoC enclosure; the paper's
//! deployment story (§2.3, Fig. 5) is a *fleet* of them serving millions
//! of users across time zones. [`FleetSim`] owns one [`SiteShard`] per
//! site — a full [`Orchestrator`] replaying that site's phase-shifted
//! Fig. 5 gaming trace — plus a fleet-level control plane: a session
//! placer that routes each site's user demand to a host site by
//! (reachability, WAN RTT, load), and a seeded WAN-partition schedule
//! that strands sessions and forces rerouting.
//!
//! # Conservative time-window synchronization
//!
//! Shards advance independently between *barriers* spaced one
//! synchronization window apart, and all cross-site effects — session
//! routing, departures, WAN faults — cross shard boundaries only at
//! barrier instants. The window is required to be at least the WAN's
//! minimum cross-site RTT ([`socc_net::wan::WanFabric::min_rtt`]): no
//! physical signal could travel between sites faster than that, so
//! delaying cross-site delivery to the next barrier never delivers a
//! message earlier than the real system could, and within a window each
//! shard provably cannot be affected by any other. That makes every
//! window three phases:
//!
//! 1. **plan** (serial): the fleet control plane reads last window's
//!    per-site reports, applies due WAN fault events, and turns each
//!    site's trace demand into per-site commands (arrivals, departures);
//! 2. **step** (parallel): each shard independently advances its
//!    orchestrator to the barrier and applies its own commands — a pure
//!    function of `(shard state, commands, barrier)`;
//! 3. **absorb** (serial, site order): reports are folded into the fleet
//!    digest, placer load estimates, and session bookkeeping.
//!
//! Because phases 1 and 3 are serial and phase 2 is per-shard pure, the
//! run — including the bit-level result digest — is identical for any
//! worker-thread count under a fixed seed. The parallel driver lives in
//! `socc-bench` (this crate has no thread pool); [`FleetSim::take_window`]
//! / [`FleetSim::absorb`] expose the step phase as a `Vec` of [`SiteJob`]s
//! that any order-preserving map may execute.

use socc_net::wan::WanFabric;
use socc_sim::rng::SimRng;
use socc_sim::series::TimeSeries;
use socc_sim::span::{EventKind, EventLog, Scope};
use socc_sim::time::{SimDuration, SimTime};

use crate::orchestrator::{Orchestrator, OrchestratorConfig, OrchestratorStats};
use crate::scheduler;
use crate::workload::{WorkloadId, WorkloadSpec};

/// Fleet construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of sites (one enclosure each).
    pub sites: usize,
    /// Geographic regions on the WAN ring (sites are phased across them).
    pub regions: usize,
    /// Simulated span of the run.
    pub hours: u64,
    /// Synchronization window (barrier spacing); must be ≥ the WAN RTT
    /// floor or the conservative argument above breaks.
    pub window: SimDuration,
    /// Master seed for traces and the WAN fault schedule.
    pub seed: u64,
    /// Outbound bitrate per gaming session.
    pub mbps_per_session: f64,
    /// Placer's per-site admission estimate (sessions); the real
    /// orchestrator may still reject below this if network-bound.
    pub session_capacity: usize,
    /// Expected WAN partitions over the whole run (Poisson).
    pub mean_partitions: f64,
    /// Mean partition length in windows beyond the first.
    pub mean_partition_windows: f64,
    /// Per-site idle-SoC sleep threshold.
    pub sleep_after: Option<SimDuration>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            sites: 8,
            regions: 8,
            hours: 2,
            window: SimDuration::from_secs(120),
            seed: 42,
            mbps_per_session: 10.0,
            session_capacity: 480,
            mean_partitions: 2.0,
            mean_partition_windows: 3.0,
            sleep_after: Some(SimDuration::from_secs(120)),
        }
    }
}

/// One site's enclosure: the per-shard simulation state.
pub struct SiteShard {
    site: usize,
    orch: Orchestrator,
}

impl SiteShard {
    /// The site index.
    pub fn site(&self) -> usize {
        self.site
    }

    /// The site's orchestrator (read-only; mutating it outside
    /// [`SiteJob::step`] would break cross-thread determinism).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orch
    }
}

/// Commands the control plane issues to one site for one window.
/// Buffers are reused across windows — cleared, never reallocated in
/// steady state.
#[derive(Debug, Default, Clone)]
pub struct SiteCommands {
    /// Sessions to finish at the barrier (fleet departures plus stranded
    /// sessions timed out after a heal).
    departures: Vec<WorkloadId>,
    /// Sessions to admit at the barrier, aggregated as
    /// `(home_site, count)`.
    arrivals: Vec<(u32, u32)>,
    /// Outbound bitrate per admitted session (fixed per run).
    mbps: f64,
}

/// What one shard reports back from one window. Buffers are reused.
#[derive(Debug, Default, Clone)]
pub struct SiteWindowReport {
    /// Newly admitted sessions in submission order, tagged with the home
    /// site whose demand they serve.
    admitted: Vec<(u32, WorkloadId)>,
    /// Arrivals the orchestrator rejected (site saturated).
    rejected: u32,
    /// Active workloads at the barrier.
    active: usize,
    /// Cumulative site energy at the barrier, joules.
    energy_j: f64,
    /// Instantaneous site power at the barrier, watts.
    power_w: f64,
    /// Orchestrator counters at the barrier.
    stats: OrchestratorStats,
}

/// A site's unit of parallel work for one window: its shard, commands
/// and report, movable across threads as a value.
pub struct SiteJob {
    shard: SiteShard,
    commands: SiteCommands,
    report: SiteWindowReport,
    barrier: SimTime,
}

impl SiteJob {
    /// The site index.
    pub fn site(&self) -> usize {
        self.shard.site
    }

    /// Steps the shard to the barrier and applies its commands — a pure
    /// function of `(shard state, commands, barrier)`; safe to run on
    /// any thread, in any order relative to other sites' jobs.
    pub fn step(&mut self) {
        let r = &mut self.report;
        r.admitted.clear();
        r.rejected = 0;
        let orch = &mut self.shard.orch;
        orch.advance_to(self.barrier);
        for &id in &self.commands.departures {
            // Departures only target sessions the control plane placed
            // here and has not finished elsewhere.
            orch.finish(id).expect("fleet-tracked session");
        }
        'arrivals: for bi in 0..self.commands.arrivals.len() {
            let (home, count) = self.commands.arrivals[bi];
            for done in 0..count {
                match orch.submit(WorkloadSpec::GamingSession {
                    stream_mbps: self.commands.mbps,
                }) {
                    Ok(id) => r.admitted.push((home, id)),
                    Err(_) => {
                        // Identical specs: once one is refused, the rest
                        // of this window's arrivals would be too.
                        r.rejected += count - done;
                        r.rejected += self.commands.arrivals[bi + 1..]
                            .iter()
                            .map(|a| a.1)
                            .sum::<u32>();
                        break 'arrivals;
                    }
                }
            }
        }
        let _ = orch.take_completions();
        r.active = orch.active_workloads();
        r.energy_j = orch.energy().as_joules();
        r.power_w = orch.power().as_watts();
        r.stats = orch.stats();
    }
}

/// Totals accumulated over a fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetReport {
    /// Sites simulated.
    pub sites: usize,
    /// Windows completed.
    pub windows: usize,
    /// Sessions the placer routed (total admissions requested).
    pub routed: u64,
    /// Routed sessions hosted away from their home site.
    pub rerouted: u64,
    /// Arrivals refused because no reachable site had estimated capacity.
    pub unplaceable: u64,
    /// Arrivals the host orchestrator rejected despite the estimate.
    pub rejected: u64,
    /// Sessions stranded by WAN partitions (timed out at heal).
    pub stranded: u64,
    /// WAN partitions applied.
    pub partitions: u64,
    /// Fleet energy over the run, kWh.
    pub fleet_kwh: f64,
    /// Peak instantaneous fleet power, watts.
    pub peak_fleet_power_w: f64,
}

/// A planned WAN partition: `site` unreachable from `start` for `dur`
/// windows.
#[derive(Debug, Clone, Copy)]
struct WanFault {
    start: usize,
    site: usize,
    dur: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(hash: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Converts a traffic level in Gbps into concurrent sessions.
fn sessions_for(gbps: f64, mbps_per_session: f64) -> usize {
    (gbps * 1000.0 / mbps_per_session).round() as usize
}

/// The fleet simulator: shards, control plane, and synchronization.
pub struct FleetSim {
    cfg: FleetConfig,
    wan: WanFabric,
    /// Per-site jobs (shard + reusable command/report buffers), always in
    /// site order except while loaned out between [`Self::take_window`]
    /// and [`Self::absorb`].
    jobs: Vec<SiteJob>,
    /// Per-site phased demand traces, one sample per window.
    traces: Vec<TimeSeries>,
    /// Per home site: the LIFO stack of its live sessions as
    /// `(host_site, id)`.
    stacks: Vec<Vec<(u32, WorkloadId)>>,
    /// Per host site: sessions stranded there by an ongoing partition,
    /// finished (timed out) at heal.
    stranded: Vec<Vec<WorkloadId>>,
    /// Per-site placer load estimate (sessions), refreshed from reports.
    load_est: Vec<usize>,
    unreachable: Vec<bool>,
    /// Remaining WAN faults, soonest last (popped as windows pass).
    faults: Vec<WanFault>,
    /// Heals scheduled as `(window, site)`, soonest last.
    heals: Vec<(usize, usize)>,
    /// Fleet-scope control-plane event ring.
    events: EventLog,
    /// Scratch: arrivals routed per host this window (reused).
    routed_to: Vec<u32>,
    /// Scratch: of those, arrivals rerouted away from home (reused).
    rerouted_to: Vec<u32>,
    window_idx: usize,
    windows: usize,
    digest: u64,
    report: FleetReport,
    planned: bool,
}

impl FleetSim {
    /// Builds a fleet: per-site orchestrators, phase-shifted traces, and
    /// a seeded WAN fault schedule.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.sites == 0` or the synchronization window is
    /// shorter than the WAN RTT floor (the conservative sync argument
    /// requires `window ≥ min_rtt`).
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.sites > 0, "a fleet needs at least one site");
        let wan = WanFabric::edge_fleet_regions(cfg.sites, cfg.regions);
        assert!(
            cfg.window >= wan.min_rtt(),
            "window {:?} below the WAN RTT floor {:?}: conservative sync unsound",
            cfg.window,
            wan.min_rtt()
        );
        let root = SimRng::seed(cfg.seed);
        let base_trace = socc_workloads::gaming::GamingTraceConfig::default();
        let mut traces = Vec::with_capacity(cfg.sites);
        let mut jobs = Vec::with_capacity(cfg.sites);
        for site in 0..cfg.sites {
            let mut rng = root.split(&format!("trace-site-{site}"));
            let trace = base_trace.with_phase(wan.local_phase_hours(site)).generate(
                SimDuration::from_hours(cfg.hours),
                cfg.window,
                &mut rng,
            );
            traces.push(trace);
            jobs.push(SiteJob {
                shard: SiteShard {
                    site,
                    orch: Orchestrator::new(OrchestratorConfig {
                        scheduler: scheduler::by_name("bin-pack").expect("known"),
                        sleep_after: cfg.sleep_after,
                        ..OrchestratorConfig::default()
                    }),
                },
                commands: SiteCommands {
                    mbps: cfg.mbps_per_session,
                    ..SiteCommands::default()
                },
                report: SiteWindowReport::default(),
                barrier: SimTime::ZERO,
            });
        }
        let windows = traces[0].len();

        // WAN fault schedule: Poisson count of partitions, each at a
        // uniform site and window with a 1 + Poisson length.
        let mut frng = root.split("wan-faults");
        let mut faults = Vec::new();
        if cfg.mean_partitions > 0.0 && cfg.sites > 1 {
            for _ in 0..frng.poisson(cfg.mean_partitions) {
                faults.push(WanFault {
                    start: frng.uniform_usize(0, windows),
                    site: frng.uniform_usize(0, cfg.sites),
                    dur: 1 + frng.poisson(cfg.mean_partition_windows) as usize,
                });
            }
        }
        // Soonest last so applying due faults is a pop.
        faults.sort_by_key(|f| (std::cmp::Reverse(f.start), f.site, f.dur));

        let mut events = EventLog::new(4096);
        events.set_scopes(&[Scope::Fleet]);
        Self {
            wan,
            jobs,
            traces,
            stacks: vec![Vec::new(); cfg.sites],
            stranded: vec![Vec::new(); cfg.sites],
            load_est: vec![0; cfg.sites],
            unreachable: vec![false; cfg.sites],
            faults,
            heals: Vec::new(),
            events,
            routed_to: vec![0; cfg.sites],
            rerouted_to: vec![0; cfg.sites],
            window_idx: 0,
            windows,
            digest: FNV_OFFSET,
            report: FleetReport {
                sites: cfg.sites,
                ..FleetReport::default()
            },
            planned: false,
            cfg,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The inter-site WAN fabric.
    pub fn wan(&self) -> &WanFabric {
        &self.wan
    }

    /// Total barrier windows in the run.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Windows completed so far.
    pub fn windows_done(&self) -> usize {
        self.window_idx
    }

    /// True once every window has been absorbed.
    pub fn done(&self) -> bool {
        self.window_idx >= self.windows
    }

    /// A site's shard (for inspection; jobs must not be loaned out).
    pub fn shard(&self, site: usize) -> &SiteShard {
        &self.jobs[site].shard
    }

    /// The fleet-scope control-plane event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The running result digest: an order-sensitive FNV-1a over every
    /// absorbed per-site report (site order within each window). Unlike
    /// the event ring it never evicts, so it witnesses the whole run.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// [`Self::digest`] as fixed-width hex.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }

    /// Totals so far (complete once [`Self::done`]).
    pub fn report(&self) -> FleetReport {
        self.report
    }

    /// Phase 1 (serial): applies due WAN faults and turns each site's
    /// trace demand into per-site commands. Returns `false` when the run
    /// is complete. Must be followed by the step phase and
    /// [`Self::absorb`] before the next call.
    pub fn plan_window(&mut self) -> bool {
        assert!(!self.planned, "plan_window called twice without absorb");
        if self.done() {
            return false;
        }
        let w = self.window_idx;
        let barrier = SimTime::ZERO + self.cfg.window * w as u32;

        // Heals first: a site that comes back this window may host again.
        while let Some(&(at, site)) = self.heals.last() {
            if at > w {
                break;
            }
            self.heals.pop();
            self.unreachable[site] = false;
            self.events.record(
                barrier,
                Scope::Fleet,
                EventKind::SiteHealed { site: site as u32 },
            );
            // Stranded sessions timed out during the partition: finish
            // them now that commands can reach the site again.
            let stranded = &mut self.stranded[site];
            self.report.stranded += stranded.len() as u64;
            self.jobs[site].commands.departures.append(stranded);
        }
        // Then new partitions.
        while let Some(&f) = self.faults.last() {
            if f.start > w {
                break;
            }
            self.faults.pop();
            if self.unreachable[f.site] {
                continue; // already down; overlapping fault is absorbed
            }
            self.unreachable[f.site] = true;
            self.report.partitions += 1;
            self.heals.push((w + f.dur, f.site));
            self.heals.sort_by(|a, b| b.cmp(a)); // soonest last; O(few)
            self.events.record(
                barrier,
                Scope::Fleet,
                EventKind::SiteUnreachable {
                    site: f.site as u32,
                },
            );
            // Sessions hosted there are cut off from their users: strand
            // them (their homes will re-demand capacity elsewhere).
            for stack in &mut self.stacks {
                let stranded = &mut self.stranded[f.site];
                stack.retain(|&(host, id)| {
                    let hit = host as usize == f.site;
                    if hit {
                        stranded.push(id);
                    }
                    !hit
                });
            }
        }

        self.routed_to.iter_mut().for_each(|c| *c = 0);
        self.rerouted_to.iter_mut().for_each(|c| *c = 0);
        for home in 0..self.cfg.sites {
            let target = sessions_for(self.traces[home].samples()[w].1, self.cfg.mbps_per_session);
            let stack = &mut self.stacks[home];
            // Departures: newest sessions leave first.
            while stack.len() > target {
                let (host, id) = stack.pop().expect("len > target ≥ 0");
                self.jobs[host as usize].commands.departures.push(id);
                self.load_est[host as usize] = self.load_est[host as usize].saturating_sub(1);
            }
            // Arrivals: home site if reachable and under the capacity
            // estimate, else the closest (RTT, load, index) reachable
            // site with headroom.
            let mut need = target.saturating_sub(stack.len());
            while need > 0 {
                let host = if !self.unreachable[home]
                    && self.load_est[home] < self.cfg.session_capacity
                {
                    Some(home)
                } else {
                    (0..self.cfg.sites)
                        .filter(|&s| {
                            !self.unreachable[s] && self.load_est[s] < self.cfg.session_capacity
                        })
                        .min_by_key(|&s| (self.wan.rtt(home, s).as_nanos(), self.load_est[s], s))
                };
                let Some(host) = host else {
                    self.report.unplaceable += need as u64;
                    break;
                };
                // All of this home's remaining need that fits the host's
                // headroom goes there in one batch.
                let headroom = self.cfg.session_capacity - self.load_est[host];
                let batch = need.min(headroom);
                self.load_est[host] += batch;
                self.routed_to[host] += batch as u32;
                if host != home {
                    self.rerouted_to[host] += batch as u32;
                }
                self.jobs[host]
                    .commands
                    .arrivals
                    .push((home as u32, batch as u32));
                need -= batch;
            }
        }
        for site in 0..self.cfg.sites {
            let (routed, rerouted) = (self.routed_to[site], self.rerouted_to[site]);
            self.report.routed += u64::from(routed);
            self.report.rerouted += u64::from(rerouted);
            if routed > 0 {
                self.events.record(
                    barrier,
                    Scope::Fleet,
                    EventKind::SessionsRouted {
                        site: site as u32,
                        count: routed,
                    },
                );
            }
            if rerouted > 0 {
                self.events.record(
                    barrier,
                    Scope::Fleet,
                    EventKind::SessionsRerouted {
                        site: site as u32,
                        count: rerouted,
                    },
                );
            }
            self.jobs[site].barrier = barrier;
        }
        self.planned = true;
        true
    }

    /// Loans out the planned window's jobs for the (parallelizable) step
    /// phase. Every job must be stepped exactly once and the whole `Vec`
    /// handed back to [`Self::absorb`] in unchanged order.
    pub fn take_window(&mut self) -> Vec<SiteJob> {
        assert!(self.planned, "take_window before plan_window");
        std::mem::take(&mut self.jobs)
    }

    /// Phase 3 (serial, site order): takes the stepped jobs back and
    /// folds their reports into the digest, totals, session stacks and
    /// placer estimates.
    pub fn absorb(&mut self, jobs: Vec<SiteJob>) {
        assert!(self.planned, "absorb before plan_window");
        assert!(self.jobs.is_empty(), "absorb with jobs not taken");
        assert_eq!(jobs.len(), self.cfg.sites, "job set split or truncated");
        self.jobs = jobs;
        let mut fleet_power = 0.0;
        for site in 0..self.cfg.sites {
            let job = &mut self.jobs[site];
            assert_eq!(job.shard.site, site, "absorb must preserve site order");
            let r = &job.report;
            for &(home, id) in &r.admitted {
                self.stacks[home as usize].push((site as u32, id));
            }
            // The orchestrator's count is authoritative; rejections made
            // the plan-time estimate optimistic.
            self.load_est[site] = r.active;
            self.report.rejected += u64::from(r.rejected);
            fleet_power += r.power_w;

            fnv_fold(&mut self.digest, self.window_idx as u64);
            fnv_fold(&mut self.digest, site as u64);
            fnv_fold(&mut self.digest, r.active as u64);
            fnv_fold(&mut self.digest, u64::from(r.rejected));
            fnv_fold(&mut self.digest, r.stats.admitted);
            fnv_fold(&mut self.digest, r.stats.completed);
            fnv_fold(&mut self.digest, r.stats.wakeups);
            fnv_fold(&mut self.digest, r.energy_j.to_bits());
            fnv_fold(&mut self.digest, r.power_w.to_bits());

            job.commands.departures.clear();
            job.commands.arrivals.clear();
        }
        self.report.peak_fleet_power_w = self.report.peak_fleet_power_w.max(fleet_power);
        self.window_idx += 1;
        self.report.windows = self.window_idx;
        self.planned = false;
        if self.done() {
            self.report.fleet_kwh =
                self.jobs.iter().map(|j| j.report.energy_j).sum::<f64>() / 3.6e6;
        }
    }

    /// Plans, steps (sequentially, in site order) and absorbs one window.
    /// Returns `false` when the run is already complete.
    pub fn step_window(&mut self) -> bool {
        if !self.plan_window() {
            return false;
        }
        let mut jobs = self.take_window();
        for job in &mut jobs {
            job.step();
        }
        self.absorb(jobs);
        true
    }

    /// Runs the whole fleet sequentially to completion.
    pub fn run_to_end(&mut self) {
        while self.step_window() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetConfig {
        FleetConfig {
            sites: 4,
            hours: 2,
            window: SimDuration::from_secs(120),
            seed: 7,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_runs_to_completion_and_serves_sessions() {
        let mut fleet = FleetSim::new(small());
        fleet.run_to_end();
        let r = fleet.report();
        assert_eq!(r.windows, fleet.windows());
        assert!(r.routed > 0, "{r:?}");
        assert!(r.fleet_kwh > 0.0);
        assert_eq!(r.unplaceable, 0, "Fig. 5 demand fits the fleet: {r:?}");
        assert_eq!(r.rejected, 0, "{r:?}");
    }

    #[test]
    fn sequential_runs_are_bit_identical() {
        let mut a = FleetSim::new(small());
        let mut b = FleetSim::new(small());
        a.run_to_end();
        b.run_to_end();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.report(), b.report());
        assert_eq!(a.events().digest(), b.events().digest());
    }

    #[test]
    fn out_of_order_stepping_matches_in_order() {
        // The step phase must commute: stepping jobs in reverse site
        // order (as a work-stealing pool might) changes nothing.
        let mut a = FleetSim::new(small());
        let mut b = FleetSim::new(small());
        a.run_to_end();
        while b.plan_window() {
            let mut jobs = b.take_window();
            for job in jobs.iter_mut().rev() {
                job.step();
            }
            b.absorb(jobs);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn partitions_strand_and_reroute() {
        let cfg = FleetConfig {
            mean_partitions: 6.0,
            mean_partition_windows: 6.0,
            hours: 4,
            seed: 11,
            ..small()
        };
        let mut fleet = FleetSim::new(cfg);
        fleet.run_to_end();
        let r = fleet.report();
        assert!(r.partitions > 0, "seed must yield partitions: {r:?}");
        assert!(r.stranded > 0, "{r:?}");
        assert!(r.rerouted > 0, "{r:?}");
        // Every stranded session was eventually finished: live sessions
        // equal the sum of home stacks.
        let live: usize = (0..cfg.sites)
            .map(|s| fleet.shard(s).orchestrator().active_workloads())
            .sum();
        let tracked: usize = fleet.stacks.iter().map(Vec::len).sum();
        assert_eq!(live, tracked);
    }

    #[test]
    fn no_faults_means_no_rerouting() {
        let mut fleet = FleetSim::new(FleetConfig {
            mean_partitions: 0.0,
            ..small()
        });
        fleet.run_to_end();
        let r = fleet.report();
        assert_eq!(r.partitions, 0);
        assert_eq!(r.rerouted, 0, "capacity never forces rerouting: {r:?}");
        assert_eq!(r.stranded, 0);
    }

    #[test]
    fn diurnal_phasing_flattens_the_fleet_envelope() {
        // Phased sites peak at different windows, so fleet peak power is
        // well below sites × single-site peak.
        let cfg = FleetConfig {
            sites: 8,
            regions: 8,
            hours: 24,
            mean_partitions: 0.0,
            ..FleetConfig::default()
        };
        let mut fleet = FleetSim::new(cfg);
        fleet.run_to_end();
        let fleet_peak = fleet.report().peak_fleet_power_w;

        let mut lone = FleetSim::new(FleetConfig {
            sites: 1,
            regions: 1,
            ..cfg
        });
        lone.run_to_end();
        let site_peak = lone.report().peak_fleet_power_w;
        assert!(
            fleet_peak < 0.9 * 8.0 * site_peak,
            "fleet {fleet_peak} vs 8 × site {site_peak}"
        );
    }

    #[test]
    #[should_panic(expected = "WAN RTT floor")]
    fn sub_rtt_window_is_rejected() {
        let _ = FleetSim::new(FleetConfig {
            window: SimDuration::from_millis(5),
            ..small()
        });
    }
}
