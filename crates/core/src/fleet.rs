//! Sharded fleet simulation: O(100–1000) sites, one enclosure each,
//! stepped in parallel under conservative time-window synchronization.
//!
//! Every other module simulates a single 60-SoC enclosure; the paper's
//! deployment story (§2.3, Fig. 5) is a *fleet* of them serving millions
//! of users across time zones. [`FleetSim`] owns one [`SiteShard`] per
//! site — a full [`Orchestrator`] replaying that site's phase-shifted
//! Fig. 5 gaming trace — plus a fleet-level control plane: a session
//! placer that routes each site's user demand to a host site by
//! (reachability, WAN RTT, load), a seeded WAN-partition schedule, and a
//! site-tier fault layer ([`SiteFault`]) covering regional partition
//! storms, full-site blackouts and rail brownouts.
//!
//! # Live inter-site migration
//!
//! A site fault displaces every session hosted there. Instead of
//! stranding them until the fault heals, the control plane *live
//! migrates* them: each displaced session is queued with a readiness
//! window priced from physics — its GOP checkpoint size
//! ([`gaming_checkpoint`]) over the calibrated WAN goodput of one
//! migration lane, plus the control RTT
//! ([`WanFabric::migration_time`](socc_net::wan::WanFabric::migration_time))
//! — and paced into waves by [`EvacuationPacing`] so an evacuation storm
//! cannot incast the WAN. When its transfer completes (readiness window
//! reached), the fleet placer re-places it like any arrival, with
//! priority over fresh demand. Session accounting is closed under all of
//! this: see [`FleetSim::verify_session_accounting`].
//!
//! # Conservative time-window synchronization
//!
//! Shards advance independently between *barriers* spaced one
//! synchronization window apart, and all cross-site effects — session
//! routing, departures, migrations, WAN faults — cross shard boundaries
//! only at barrier instants. The window is required to be at least the
//! WAN's minimum cross-site RTT
//! ([`socc_net::wan::WanFabric::min_rtt`]): no physical signal could
//! travel between sites faster than that, so delaying cross-site
//! delivery to the next barrier never delivers a message earlier than
//! the real system could, and within a window each shard provably cannot
//! be affected by any other. That makes every window three phases:
//!
//! 1. **plan** (serial): the fleet control plane reads last window's
//!    per-site reports, applies due heals and fault events, and turns
//!    each site's trace demand into per-site commands (arrivals,
//!    departures, migrations, power transitions);
//! 2. **step** (parallel): each shard independently advances its
//!    orchestrator to the barrier and applies its own commands — a pure
//!    function of `(shard state, commands, barrier)`;
//! 3. **absorb** (serial, site order): reports are folded into the fleet
//!    digest, placer load estimates, and session bookkeeping.
//!
//! Because phases 1 and 3 are serial and phase 2 is per-shard pure, the
//! run — including the bit-level result digest — is identical for any
//! worker-thread count under a fixed seed. The parallel driver lives in
//! `socc-bench` (this crate has no thread pool); [`FleetSim::take_window`]
//! / [`FleetSim::absorb`] expose the step phase as a `Vec` of [`SiteJob`]s
//! that any order-preserving map may execute.

use socc_net::wan::WanFabric;
use socc_sim::rng::SimRng;
use socc_sim::series::TimeSeries;
use socc_sim::span::{EventKind, EventLog, Scope};
use socc_sim::time::{SimDuration, SimTime};
use socc_sim::units::{DataRate, DataSize};
use socc_video::gop::GopStructure;
use socc_video::video::{Resolution, VideoMeta};

use crate::evacuation::EvacuationPacing;
use crate::faults::{SiteFault, SiteFaultEvent};
use crate::orchestrator::{Orchestrator, OrchestratorConfig, OrchestratorStats};
use crate::recovery::brownout_throughput_frac;
use crate::scheduler;
use crate::workload::{WorkloadId, WorkloadSpec};

/// Fraction of a site's PSU rail budget that survives a site brownout:
/// one of two redundant feeds lost, so every board's DVFS derates to the
/// throughput sustainable at half the rail power (the same
/// [`brownout_throughput_frac`] math as the enclosure-tier
/// `PowerBrownout`, one tier up).
pub const SITE_BROWNOUT_RAIL_RATIO: f64 = 0.5;

/// The state a live cloud-gaming session must move for an inter-site
/// migration: the GOP checkpoint of a 1080p60 stream at `mbps` —
/// reference frames, macroblock contexts and the in-flight half-GOP
/// ([`GopStructure::checkpoint_size`] under the live-streaming GOP
/// shape). This is what prices migration time over the WAN.
pub fn gaming_checkpoint(mbps: f64) -> DataSize {
    let meta = VideoMeta::synthetic(
        "GAME",
        "cloud-gaming",
        Resolution::new(1920, 1080),
        60.0,
        5.0,
        DataRate::mbps(mbps),
        DataRate::mbps(mbps),
    );
    GopStructure::live_default().checkpoint_size(&meta)
}

/// Fleet construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of sites (one enclosure each).
    pub sites: usize,
    /// Geographic regions on the WAN ring (sites are phased across them).
    pub regions: usize,
    /// Simulated span of the run.
    pub hours: u64,
    /// Synchronization window (barrier spacing); must be ≥ the WAN RTT
    /// floor or the conservative argument above breaks.
    pub window: SimDuration,
    /// Master seed for traces and the WAN fault schedule.
    pub seed: u64,
    /// Outbound bitrate per gaming session.
    pub mbps_per_session: f64,
    /// Placer's per-site admission estimate (sessions); the real
    /// orchestrator may still reject below this if network-bound.
    pub session_capacity: usize,
    /// Expected WAN partitions over the whole run (Poisson).
    pub mean_partitions: f64,
    /// Mean partition length in windows beyond the first.
    pub mean_partition_windows: f64,
    /// Per-site idle-SoC sleep threshold.
    pub sleep_after: Option<SimDuration>,
    /// Pacing for live inter-site migrations: how many checkpoint
    /// transfers run concurrently and over what share of the WAN.
    pub migration: EvacuationPacing,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            sites: 8,
            regions: 8,
            hours: 2,
            window: SimDuration::from_secs(120),
            seed: 42,
            mbps_per_session: 10.0,
            session_capacity: 480,
            mean_partitions: 2.0,
            mean_partition_windows: 3.0,
            sleep_after: Some(SimDuration::from_secs(120)),
            migration: EvacuationPacing::wan_default(gaming_checkpoint(10.0)),
        }
    }
}

/// One site's enclosure: the per-shard simulation state.
pub struct SiteShard {
    site: usize,
    orch: Orchestrator,
}

impl SiteShard {
    /// The site index.
    pub fn site(&self) -> usize {
        self.site
    }

    /// The site's orchestrator (read-only; mutating it outside
    /// [`SiteJob::step`] would break cross-thread determinism).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orch
    }
}

/// Commands the control plane issues to one site for one window.
/// Buffers are reused across windows — cleared, never reallocated in
/// steady state.
#[derive(Debug, Default, Clone)]
pub struct SiteCommands {
    /// Sessions to finish at the barrier (fleet departures, brownout
    /// evacuations, and zombie instances reaped after a partition heal).
    departures: Vec<WorkloadId>,
    /// Sessions to admit at the barrier, aggregated as
    /// `(home_site, count)`.
    arrivals: Vec<(u32, u32)>,
    /// Migrated sessions landing at the barrier, aggregated as
    /// `(home_site, count)`; admitted before `arrivals` — an evacuated
    /// session outranks fresh demand for the same headroom.
    migrations_in: Vec<(u32, u32)>,
    /// Site power returns at the barrier: restore every SoC.
    power_on: bool,
    /// Site blacks out at the barrier: fail every SoC.
    power_off: bool,
    /// Outbound bitrate per admitted session (fixed per run).
    mbps: f64,
}

/// What one shard reports back from one window. Buffers are reused.
#[derive(Debug, Default, Clone)]
pub struct SiteWindowReport {
    /// Newly admitted sessions in submission order, tagged with the home
    /// site whose demand they serve.
    admitted: Vec<(u32, WorkloadId)>,
    /// Migrated-in sessions in submission order, tagged with their home.
    migrated_in: Vec<(u32, WorkloadId)>,
    /// Migrations the orchestrator refused (no headroom despite the
    /// estimate), as `(home_site, count)`; the control plane re-queues
    /// them.
    migration_rejected: Vec<(u32, u32)>,
    /// Arrivals the orchestrator rejected (site saturated).
    rejected: u32,
    /// Workload instances killed by a site blackout this window.
    killed: u32,
    /// Active workloads at the barrier.
    active: usize,
    /// Cumulative site energy at the barrier, joules.
    energy_j: f64,
    /// Instantaneous site power at the barrier, watts.
    power_w: f64,
    /// Orchestrator counters at the barrier.
    stats: OrchestratorStats,
}

/// A site's unit of parallel work for one window: its shard, commands
/// and report, movable across threads as a value.
pub struct SiteJob {
    shard: SiteShard,
    commands: SiteCommands,
    report: SiteWindowReport,
    barrier: SimTime,
}

impl SiteJob {
    /// The site index.
    pub fn site(&self) -> usize {
        self.shard.site
    }

    /// Steps the shard to the barrier and applies its commands — a pure
    /// function of `(shard state, commands, barrier)`; safe to run on
    /// any thread, in any order relative to other sites' jobs.
    pub fn step(&mut self) {
        let r = &mut self.report;
        r.admitted.clear();
        r.migrated_in.clear();
        r.migration_rejected.clear();
        r.rejected = 0;
        r.killed = 0;
        let orch = &mut self.shard.orch;
        orch.advance_to(self.barrier);
        let socs = orch.cluster().socs.len();
        if self.commands.power_on {
            for soc in 0..socs {
                orch.restore_soc(soc);
            }
        }
        for &id in &self.commands.departures {
            // Departures only target sessions the control plane placed
            // here and has not finished elsewhere.
            orch.finish(id).expect("fleet-tracked session");
        }
        if self.commands.power_off {
            // Full site power loss: every SoC drops at the barrier. The
            // instances die with the site; their sessions are already in
            // the control plane's migration queue.
            for soc in 0..socs {
                r.killed += orch.fail_soc(soc).len() as u32;
            }
        }
        'migrations: for bi in 0..self.commands.migrations_in.len() {
            let (home, count) = self.commands.migrations_in[bi];
            for done in 0..count {
                match orch.submit(WorkloadSpec::GamingSession {
                    stream_mbps: self.commands.mbps,
                }) {
                    Ok(id) => r.migrated_in.push((home, id)),
                    Err(_) => {
                        // Identical specs: once one is refused, the rest
                        // of this window's migrations would be too. Hand
                        // them all back for re-placement.
                        r.migration_rejected.push((home, count - done));
                        for &(h, c) in &self.commands.migrations_in[bi + 1..] {
                            r.migration_rejected.push((h, c));
                        }
                        break 'migrations;
                    }
                }
            }
        }
        'arrivals: for bi in 0..self.commands.arrivals.len() {
            let (home, count) = self.commands.arrivals[bi];
            for done in 0..count {
                match orch.submit(WorkloadSpec::GamingSession {
                    stream_mbps: self.commands.mbps,
                }) {
                    Ok(id) => r.admitted.push((home, id)),
                    Err(_) => {
                        // Identical specs: once one is refused, the rest
                        // of this window's arrivals would be too.
                        r.rejected += count - done;
                        r.rejected += self.commands.arrivals[bi + 1..]
                            .iter()
                            .map(|a| a.1)
                            .sum::<u32>();
                        break 'arrivals;
                    }
                }
            }
        }
        let _ = orch.take_completions();
        r.active = orch.active_workloads();
        r.energy_j = orch.energy().as_joules();
        r.power_w = orch.power().as_watts();
        r.stats = orch.stats();
    }
}

/// Totals accumulated over a fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetReport {
    /// Sites simulated.
    pub sites: usize,
    /// Windows completed.
    pub windows: usize,
    /// Sessions the placer routed (total admissions requested).
    pub routed: u64,
    /// Routed sessions hosted away from their home site.
    pub rerouted: u64,
    /// Sessions that departed normally (trace demand fell), including
    /// mid-migration cancellations.
    pub finished: u64,
    /// Arrivals refused because no reachable site had estimated capacity.
    pub unplaceable: u64,
    /// Arrivals the host orchestrator rejected despite the estimate.
    pub rejected: u64,
    /// Sessions displaced by site faults and handed to the live
    /// migrator (partitions, blackouts and brownout evacuations).
    pub stranded: u64,
    /// Displaced sessions that completed a live inter-site migration.
    pub migrated: u64,
    /// Displaced sessions whose users left before the migration landed.
    pub migration_cancelled: u64,
    /// Migration placements deferred a window (no reachable headroom or
    /// host-side rejection); retries, not sessions.
    pub migration_retries: u64,
    /// Displaced sessions still mid-transfer when the run ended.
    pub in_flight: u64,
    /// Orphaned instances cleaned up: reaped after a partition heal or
    /// killed by a blackout while their sessions lived elsewhere.
    pub zombies_reaped: u64,
    /// Workload instances killed by site blackouts.
    pub killed: u64,
    /// WAN partitions applied (single-site, including storm expansions).
    pub partitions: u64,
    /// Regional partition storms applied.
    pub storms: u64,
    /// Full-site blackouts applied.
    pub blackouts: u64,
    /// Site rail brownouts applied.
    pub brownouts: u64,
    /// Total session-windows of demand over the run.
    pub demand_session_windows: u64,
    /// Session-windows actually served (sessions live at each barrier).
    pub served_session_windows: u64,
    /// Fleet energy over the run, kWh.
    pub fleet_kwh: f64,
    /// Peak instantaneous fleet power, watts.
    pub peak_fleet_power_w: f64,
}

impl FleetReport {
    /// Fraction of demanded session-windows the fleet actually served —
    /// the availability a chaos campaign gates on. `1.0` when the run
    /// had no demand.
    pub fn availability(&self) -> f64 {
        if self.demand_session_windows == 0 {
            return 1.0;
        }
        self.served_session_windows as f64 / self.demand_session_windows as f64
    }
}

/// A planned WAN partition: `site` unreachable from `start` for `dur`
/// windows.
#[derive(Debug, Clone, Copy)]
struct WanFault {
    start: usize,
    site: usize,
    dur: usize,
}

/// What a scheduled heal restores. Variant order is the tie-break for
/// heals due at the same window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum HealKind {
    /// WAN partition ends: the site is reachable again.
    Partition,
    /// Blackout ends: site power returns, SoCs restore.
    Power,
    /// Brownout ends: the rail returns, capacity un-derates.
    Rail,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(hash: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Converts a traffic level in Gbps into concurrent sessions.
fn sessions_for(gbps: f64, mbps_per_session: f64) -> usize {
    (gbps * 1000.0 / mbps_per_session).round() as usize
}

/// The fleet simulator: shards, control plane, and synchronization.
pub struct FleetSim {
    cfg: FleetConfig,
    wan: WanFabric,
    /// Per-site jobs (shard + reusable command/report buffers), always in
    /// site order except while loaned out between [`Self::take_window`]
    /// and [`Self::absorb`].
    jobs: Vec<SiteJob>,
    /// Per-site phased demand traces, one sample per window.
    traces: Vec<TimeSeries>,
    /// Per home site: the LIFO stack of its live sessions as
    /// `(host_site, id)`.
    stacks: Vec<Vec<(u32, WorkloadId)>>,
    /// Per host site: instances still running behind a partition while
    /// their sessions migrated away — reaped at heal, killed by a
    /// blackout.
    orphaned: Vec<Vec<WorkloadId>>,
    /// Per home site: displaced sessions mid-migration, each entry the
    /// window its checkpoint transfer completes (placement-ready).
    migrating: Vec<Vec<usize>>,
    /// Per-site placer load estimate (sessions), refreshed from reports.
    load_est: Vec<usize>,
    /// Per-site placer capacity estimate; `session_capacity` normally,
    /// derated while a brownout holds.
    cap_est: Vec<usize>,
    unreachable: Vec<bool>,
    /// Site power lost (blackout in progress).
    dark: Vec<bool>,
    /// Site rail derated (brownout in progress).
    derated: Vec<bool>,
    /// Remaining WAN faults, soonest last (popped as windows pass).
    faults: Vec<WanFault>,
    /// Remaining site-tier faults, soonest last.
    site_faults: Vec<SiteFaultEvent>,
    /// Heals scheduled as `(window, kind, site)`, kept sorted descending
    /// (soonest last) by binary insertion.
    heals: Vec<(usize, HealKind, usize)>,
    /// Per-site sessions displaced from it (migration accounting).
    mig_out_by_site: Vec<u64>,
    /// Per-site migrated sessions landed on it (migration accounting).
    mig_in_by_site: Vec<u64>,
    /// One migration wave's duration ([`EvacuationPacing::wave_time`]),
    /// cached — it never changes within a run.
    mig_wave: SimDuration,
    /// Fleet-scope control-plane event ring.
    events: EventLog,
    /// Scratch: arrivals routed per host this window (reused).
    routed_to: Vec<u32>,
    /// Scratch: of those, arrivals rerouted away from home (reused).
    rerouted_to: Vec<u32>,
    /// Scratch: migrations placed per home this window (reused).
    mig_placed: Vec<u32>,
    window_idx: usize,
    windows: usize,
    digest: u64,
    report: FleetReport,
    planned: bool,
}

impl FleetSim {
    /// Builds a fleet: per-site orchestrators, phase-shifted traces, and
    /// a seeded WAN fault schedule. Equivalent to
    /// [`Self::with_site_faults`] with an empty site-fault schedule.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.sites == 0` or the synchronization window is
    /// shorter than the WAN RTT floor (the conservative sync argument
    /// requires `window ≥ min_rtt`).
    pub fn new(cfg: FleetConfig) -> Self {
        Self::with_site_faults(cfg, Vec::new())
    }

    /// [`Self::new`] plus an explicit site-tier fault schedule (chaos
    /// campaigns build these with
    /// [`SiteFaultInjector`](crate::faults::SiteFaultInjector) or by
    /// hand).
    ///
    /// # Panics
    ///
    /// Panics on the [`Self::new`] conditions, or if any event targets a
    /// site outside the fleet or a region outside the WAN ring.
    pub fn with_site_faults(cfg: FleetConfig, mut site_faults: Vec<SiteFaultEvent>) -> Self {
        assert!(cfg.sites > 0, "a fleet needs at least one site");
        let wan = WanFabric::edge_fleet_regions(cfg.sites, cfg.regions);
        assert!(
            cfg.window >= wan.min_rtt(),
            "window {:?} below the WAN RTT floor {:?}: conservative sync unsound",
            cfg.window,
            wan.min_rtt()
        );
        for e in &site_faults {
            match e.fault {
                SiteFault::Partition { site, .. }
                | SiteFault::Blackout { site, .. }
                | SiteFault::Brownout { site, .. } => assert!(
                    site < cfg.sites,
                    "site fault targets site {site} outside the fleet of {}",
                    cfg.sites
                ),
                SiteFault::RegionStorm { region, .. } => assert!(
                    region < wan.region_count(),
                    "region storm targets region {region}, ring has {}",
                    wan.region_count()
                ),
            }
        }
        // Soonest last so applying due events is a pop; the secondary key
        // makes same-window bursts deterministic.
        site_faults.sort_by_key(|e| std::cmp::Reverse((e.window, e.fault.order())));

        let root = SimRng::seed(cfg.seed);
        let base_trace = socc_workloads::gaming::GamingTraceConfig::default();
        let mut traces = Vec::with_capacity(cfg.sites);
        let mut jobs = Vec::with_capacity(cfg.sites);
        for site in 0..cfg.sites {
            let mut rng = root.split(&format!("trace-site-{site}"));
            let trace = base_trace.with_phase(wan.local_phase_hours(site)).generate(
                SimDuration::from_hours(cfg.hours),
                cfg.window,
                &mut rng,
            );
            traces.push(trace);
            jobs.push(SiteJob {
                shard: SiteShard {
                    site,
                    orch: Orchestrator::new(OrchestratorConfig {
                        scheduler: scheduler::by_name("bin-pack").expect("known"),
                        sleep_after: cfg.sleep_after,
                        ..OrchestratorConfig::default()
                    }),
                },
                commands: SiteCommands {
                    mbps: cfg.mbps_per_session,
                    ..SiteCommands::default()
                },
                report: SiteWindowReport::default(),
                barrier: SimTime::ZERO,
            });
        }
        let windows = traces[0].len();

        // WAN fault schedule: Poisson count of partitions, each at a
        // uniform site and window with a 1 + Poisson length.
        let mut frng = root.split("wan-faults");
        let mut faults = Vec::new();
        if cfg.mean_partitions > 0.0 && cfg.sites > 1 {
            for _ in 0..frng.poisson(cfg.mean_partitions) {
                faults.push(WanFault {
                    start: frng.uniform_usize(0, windows),
                    site: frng.uniform_usize(0, cfg.sites),
                    dur: 1 + frng.poisson(cfg.mean_partition_windows) as usize,
                });
            }
        }
        // Soonest last so applying due faults is a pop.
        faults.sort_by_key(|f| (std::cmp::Reverse(f.start), f.site, f.dur));

        let mut events = EventLog::new(4096);
        events.set_scopes(&[Scope::Fleet]);
        Self {
            wan,
            jobs,
            traces,
            stacks: vec![Vec::new(); cfg.sites],
            orphaned: vec![Vec::new(); cfg.sites],
            migrating: vec![Vec::new(); cfg.sites],
            load_est: vec![0; cfg.sites],
            cap_est: vec![cfg.session_capacity; cfg.sites],
            unreachable: vec![false; cfg.sites],
            dark: vec![false; cfg.sites],
            derated: vec![false; cfg.sites],
            faults,
            site_faults,
            heals: Vec::new(),
            mig_out_by_site: vec![0; cfg.sites],
            mig_in_by_site: vec![0; cfg.sites],
            mig_wave: cfg.migration.wave_time(),
            events,
            routed_to: vec![0; cfg.sites],
            rerouted_to: vec![0; cfg.sites],
            mig_placed: vec![0; cfg.sites],
            window_idx: 0,
            windows,
            digest: FNV_OFFSET,
            report: FleetReport {
                sites: cfg.sites,
                ..FleetReport::default()
            },
            planned: false,
            cfg,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The inter-site WAN fabric.
    pub fn wan(&self) -> &WanFabric {
        &self.wan
    }

    /// Total barrier windows in the run.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Windows completed so far.
    pub fn windows_done(&self) -> usize {
        self.window_idx
    }

    /// True once every window has been absorbed.
    pub fn done(&self) -> bool {
        self.window_idx >= self.windows
    }

    /// A site's shard (for inspection; jobs must not be loaned out).
    pub fn shard(&self, site: usize) -> &SiteShard {
        &self.jobs[site].shard
    }

    /// True while a WAN partition cuts the site off.
    pub fn is_unreachable(&self, site: usize) -> bool {
        self.unreachable[site]
    }

    /// True while a blackout holds the site dark.
    pub fn is_dark(&self, site: usize) -> bool {
        self.dark[site]
    }

    /// True while a brownout derates the site.
    pub fn is_derated(&self, site: usize) -> bool {
        self.derated[site]
    }

    /// Displaced sessions currently mid-migration (checkpoint transfers
    /// in flight or awaiting placement).
    pub fn in_flight_sessions(&self) -> usize {
        self.migrating.iter().map(Vec::len).sum()
    }

    /// Instances still running behind unhealed partitions while their
    /// sessions migrated away.
    pub fn orphaned_instances(&self) -> usize {
        self.orphaned.iter().map(Vec::len).sum()
    }

    /// Heals not yet applied (fault effects still outstanding).
    pub fn pending_heals(&self) -> usize {
        self.heals.len()
    }

    /// The fleet-scope control-plane event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The running result digest: an order-sensitive FNV-1a over every
    /// absorbed per-site report (site order within each window). Unlike
    /// the event ring it never evicts, so it witnesses the whole run.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// [`Self::digest`] as fixed-width hex.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }

    /// Totals so far (complete once [`Self::done`]).
    pub fn report(&self) -> FleetReport {
        self.report
    }

    /// Checks that session accounting is closed — nothing lost, nothing
    /// double-counted — and that per-site migration flows balance. Valid
    /// between an [`Self::absorb`] and the next [`Self::plan_window`]
    /// (mid-window, jobs are loaned out and orchestrator counts are in
    /// motion). A debug build verifies this automatically at the end of
    /// every run.
    pub fn verify_session_accounting(&self) -> Result<(), String> {
        assert!(!self.planned, "accounting is only closed at barriers");
        let r = &self.report;
        let live: u64 = self.stacks.iter().map(|s| s.len() as u64).sum();
        let in_flight = self.in_flight_sessions() as u64;
        let orphans = self.orphaned_instances() as u64;
        let lhs = r.finished + live + r.rejected + in_flight;
        if r.routed != lhs {
            return Err(format!(
                "routed {} != finished {} + live {live} + rejected {} + in-flight {in_flight}",
                r.routed, r.finished, r.rejected
            ));
        }
        let displaced = r.migrated + r.migration_cancelled + in_flight;
        if r.stranded != displaced {
            return Err(format!(
                "stranded {} != migrated {} + cancelled {} + in-flight {in_flight}",
                r.stranded, r.migrated, r.migration_cancelled
            ));
        }
        let out: u64 = self.mig_out_by_site.iter().sum();
        if out != r.stranded {
            return Err(format!(
                "per-site migrations out {out} != stranded {}",
                r.stranded
            ));
        }
        let landed: u64 = self.mig_in_by_site.iter().sum();
        if landed != r.migrated {
            return Err(format!(
                "per-site migrations in {landed} != migrated {}",
                r.migrated
            ));
        }
        let active: u64 = self
            .jobs
            .iter()
            .map(|j| j.shard.orch.active_workloads() as u64)
            .sum();
        if active != live + orphans {
            return Err(format!(
                "orchestrators run {active} instances != live {live} + orphaned {orphans}"
            ));
        }
        Ok(())
    }

    /// Phase 1 (serial): applies due heals and fault events, then turns
    /// each site's trace demand into per-site commands. Returns `false`
    /// when the run is complete. Must be followed by the step phase and
    /// [`Self::absorb`] before the next call.
    pub fn plan_window(&mut self) -> bool {
        assert!(!self.planned, "plan_window called twice without absorb");
        if self.done() {
            return false;
        }
        let w = self.window_idx;
        let barrier = SimTime::ZERO + self.cfg.window * w as u32;

        // Heals first: a site that comes back this window may host again,
        // and a same-window fault on it re-applies cleanly afterwards.
        self.apply_heals(w, barrier);

        // Legacy seeded WAN partitions.
        while let Some(&f) = self.faults.last() {
            if f.start > w {
                break;
            }
            self.faults.pop();
            self.partition_site(f.site, f.dur, w, barrier);
        }

        // Site-tier chaos events.
        while let Some(&e) = self.site_faults.last() {
            if e.window > w {
                break;
            }
            self.site_faults.pop();
            match e.fault {
                SiteFault::Partition { site, windows } => {
                    self.partition_site(site, windows, w, barrier);
                }
                SiteFault::RegionStorm { region, windows } => {
                    self.report.storms += 1;
                    self.events.record(
                        barrier,
                        Scope::Fleet,
                        EventKind::RegionStorm {
                            region: region as u32,
                        },
                    );
                    for site in self.wan.sites_of_region(region) {
                        self.partition_site(site, windows, w, barrier);
                    }
                }
                SiteFault::Blackout { site, windows } => {
                    self.blackout_site(site, windows, w, barrier);
                }
                SiteFault::Brownout { site, windows } => {
                    self.brownout_site(site, windows, w, barrier);
                }
            }
        }

        self.routed_to.iter_mut().for_each(|c| *c = 0);
        self.rerouted_to.iter_mut().for_each(|c| *c = 0);
        self.mig_placed.iter_mut().for_each(|c| *c = 0);

        // Demand deltas first: every home's departures free capacity
        // before anything is placed.
        for home in 0..self.cfg.sites {
            let target = sessions_for(self.traces[home].samples()[w].1, self.cfg.mbps_per_session);
            self.report.demand_session_windows += target as u64;
            let committed = self.stacks[home].len() + self.migrating[home].len();
            let mut surplus = committed.saturating_sub(target);
            // Departures come from the hosted population first (newest
            // first): a user mid-migration is one actively waiting for
            // their session to resume, so in-flight checkpoints are the
            // last thing demand decline cancels.
            while surplus > 0 {
                let Some((host, id)) = self.stacks[home].pop() else {
                    break;
                };
                self.jobs[host as usize].commands.departures.push(id);
                self.load_est[host as usize] = self.load_est[host as usize].saturating_sub(1);
                self.report.finished += 1;
                surplus -= 1;
            }
            // Only a fall below even the in-flight count cancels
            // transfers, newest first: that user quit and never lands.
            while surplus > 0 {
                self.migrating[home].pop().expect("surplus ≤ committed");
                self.report.migration_cancelled += 1;
                self.report.finished += 1;
                surplus -= 1;
            }
        }

        // Completed migrations place next, with priority over fresh
        // demand: an evacuated user is already mid-session.
        for home in 0..self.cfg.sites {
            let mut due = 0usize;
            self.migrating[home].retain(|&ready| {
                if ready <= w {
                    due += 1;
                    false
                } else {
                    true
                }
            });
            while due > 0 {
                let Some(host) = self.pick_host(home) else {
                    // Nowhere reachable with headroom: hold the
                    // checkpoints and retry at the next barrier.
                    self.report.migration_retries += due as u64;
                    for _ in 0..due {
                        self.migrating[home].push(w + 1);
                    }
                    break;
                };
                let headroom = self.cap_est[host].saturating_sub(self.load_est[host]);
                let batch = due.min(headroom);
                self.load_est[host] += batch;
                self.mig_placed[home] += batch as u32;
                self.jobs[host]
                    .commands
                    .migrations_in
                    .push((home as u32, batch as u32));
                due -= batch;
            }
        }

        // New arrivals last: home site if reachable and under the
        // capacity estimate, else the closest (RTT, load, index)
        // reachable site with headroom.
        for home in 0..self.cfg.sites {
            let target = sessions_for(self.traces[home].samples()[w].1, self.cfg.mbps_per_session);
            let committed = self.stacks[home].len()
                + self.migrating[home].len()
                + self.mig_placed[home] as usize;
            let mut need = target.saturating_sub(committed);
            while need > 0 {
                let Some(host) = self.pick_host(home) else {
                    self.report.unplaceable += need as u64;
                    break;
                };
                // All of this home's remaining need that fits the host's
                // headroom goes there in one batch.
                let headroom = self.cap_est[host].saturating_sub(self.load_est[host]);
                let batch = need.min(headroom);
                self.load_est[host] += batch;
                self.routed_to[host] += batch as u32;
                if host != home {
                    self.rerouted_to[host] += batch as u32;
                }
                self.jobs[host]
                    .commands
                    .arrivals
                    .push((home as u32, batch as u32));
                need -= batch;
            }
        }
        for site in 0..self.cfg.sites {
            let (routed, rerouted) = (self.routed_to[site], self.rerouted_to[site]);
            self.report.routed += u64::from(routed);
            self.report.rerouted += u64::from(rerouted);
            if routed > 0 {
                self.events.record(
                    barrier,
                    Scope::Fleet,
                    EventKind::SessionsRouted {
                        site: site as u32,
                        count: routed,
                    },
                );
            }
            if rerouted > 0 {
                self.events.record(
                    barrier,
                    Scope::Fleet,
                    EventKind::SessionsRerouted {
                        site: site as u32,
                        count: rerouted,
                    },
                );
            }
            self.jobs[site].barrier = barrier;
        }
        self.planned = true;
        true
    }

    /// The host for one of `home`'s sessions: the home site if it can
    /// serve, else the closest (RTT, load, index) serving site with
    /// estimated headroom. `None` when the whole fleet is out.
    fn pick_host(&self, home: usize) -> Option<usize> {
        let serves = |s: usize| !self.unreachable[s] && !self.dark[s];
        if serves(home) && self.load_est[home] < self.cap_est[home] {
            return Some(home);
        }
        (0..self.cfg.sites)
            .filter(|&s| serves(s) && self.load_est[s] < self.cap_est[s])
            .min_by_key(|&s| (self.wan.rtt(home, s).as_nanos(), self.load_est[s], s))
    }

    /// Pops due heals (soonest last) and reverses each fault's effect.
    fn apply_heals(&mut self, w: usize, barrier: SimTime) {
        while let Some(&(at, kind, site)) = self.heals.last() {
            if at > w {
                break;
            }
            self.heals.pop();
            match kind {
                HealKind::Partition => {
                    self.unreachable[site] = false;
                    self.events.record(
                        barrier,
                        Scope::Fleet,
                        EventKind::SiteHealed { site: site as u32 },
                    );
                    // Instances that kept running behind the partition
                    // while their sessions live-migrated away: reap the
                    // zombies now that commands can reach the site again.
                    let orphans = &mut self.orphaned[site];
                    self.report.zombies_reaped += orphans.len() as u64;
                    self.jobs[site].commands.departures.append(orphans);
                }
                HealKind::Power => {
                    self.dark[site] = false;
                    self.jobs[site].commands.power_on = true;
                    self.events.record(
                        barrier,
                        Scope::Fleet,
                        EventKind::SitePowerRestored { site: site as u32 },
                    );
                }
                HealKind::Rail => {
                    self.derated[site] = false;
                    self.cap_est[site] = self.cfg.session_capacity;
                    self.events.record(
                        barrier,
                        Scope::Fleet,
                        EventKind::SiteBrownoutEnded { site: site as u32 },
                    );
                }
            }
        }
    }

    /// Schedules a heal, keeping `heals` sorted descending (soonest
    /// last) by binary insertion — a bursty fault window costs O(log n)
    /// per heal instead of a full re-sort.
    fn schedule_heal(&mut self, at: usize, kind: HealKind, site: usize) {
        let h = (at, kind, site);
        let pos = self.heals.partition_point(|&e| e > h);
        self.heals.insert(pos, h);
    }

    /// Applies a WAN partition to one site: sessions hosted there are
    /// displaced into the migration queue; their instances survive as
    /// orphans behind the partition. Absorbed if the site is already cut
    /// off or dark.
    fn partition_site(&mut self, site: usize, dur: usize, w: usize, barrier: SimTime) {
        if self.unreachable[site] || self.dark[site] {
            return; // already down; overlapping fault is absorbed
        }
        self.unreachable[site] = true;
        self.report.partitions += 1;
        self.schedule_heal(w + dur.max(1), HealKind::Partition, site);
        self.events.record(
            barrier,
            Scope::Fleet,
            EventKind::SiteUnreachable { site: site as u32 },
        );
        self.displace_all(site, w, true);
    }

    /// Applies a full-site blackout: every hosted session is displaced,
    /// every instance (including zombies behind an unhealed partition)
    /// dies with the power, and the shard fails all SoCs at the barrier
    /// so the site's energy ledger flatlines until power returns.
    fn blackout_site(&mut self, site: usize, dur: usize, w: usize, barrier: SimTime) {
        if self.dark[site] {
            return; // already dark; overlapping fault is absorbed
        }
        self.dark[site] = true;
        self.report.blackouts += 1;
        self.schedule_heal(w + dur.max(1), HealKind::Power, site);
        self.events.record(
            barrier,
            Scope::Fleet,
            EventKind::SiteBlackout { site: site as u32 },
        );
        // Zombies behind an unhealed partition die with the site; their
        // sessions already migrated (or are in flight).
        let orphans = &mut self.orphaned[site];
        self.report.zombies_reaped += orphans.len() as u64;
        orphans.clear();
        self.displace_all(site, w, false);
        self.jobs[site].commands.power_off = true;
        self.load_est[site] = 0;
    }

    /// Applies a site rail brownout: the placer capacity derates to the
    /// DVFS-sustainable fraction at the surviving rail budget, and any
    /// excess sessions evacuate (newest first) through the migration
    /// queue.
    fn brownout_site(&mut self, site: usize, dur: usize, w: usize, barrier: SimTime) {
        if self.derated[site] || self.dark[site] || self.unreachable[site] {
            return; // can't derate what's already down
        }
        self.derated[site] = true;
        self.report.brownouts += 1;
        let frac = brownout_throughput_frac(SITE_BROWNOUT_RAIL_RATIO);
        self.cap_est[site] = (self.cfg.session_capacity as f64 * frac).floor() as usize;
        self.schedule_heal(w + dur.max(1), HealKind::Rail, site);
        self.events.record(
            barrier,
            Scope::Fleet,
            EventKind::SiteBrownout {
                site: site as u32,
                permille: (frac * 1000.0).round() as u32,
            },
        );
        let excess = self.load_est[site].saturating_sub(self.cap_est[site]);
        if excess > 0 {
            self.evacuate_excess(site, excess, w);
        }
    }

    /// Displaces every session hosted at `site` into the migration
    /// queue, paced into waves and priced per session by checkpoint size
    /// over one WAN migration lane plus the control RTT. With `orphan`,
    /// the instances keep running unreachable (partition); without, the
    /// caller kills them (blackout).
    fn displace_all(&mut self, site: usize, w: usize, orphan: bool) {
        let lanes = self.cfg.migration.max_concurrent.max(1);
        let lane = DataRate::bps(self.cfg.migration.bottleneck.as_bps() / lanes as f64);
        let wave = self.mig_wave;
        let win_nanos = self.cfg.window.as_nanos().max(1);
        let mut idx = 0usize;
        for home in 0..self.cfg.sites {
            // Per-session price: wave queueing delay plus this pair's
            // control RTT plus one checkpoint transfer at lane goodput.
            let per = self
                .wan
                .migration_time(site, home, self.cfg.migration.state_size, lane);
            let mig = &mut self.migrating[home];
            let orph = &mut self.orphaned[site];
            self.stacks[home].retain(|&(host, id)| {
                if host as usize != site {
                    return true;
                }
                let delay = wave * ((idx / lanes) as f64) + per;
                // Cross-site effects land only at barriers: round up.
                let ready = w + (delay.as_nanos().div_ceil(win_nanos) as usize).max(1);
                mig.push(ready);
                if orphan {
                    orph.push(id);
                }
                idx += 1;
                false
            });
        }
        self.report.stranded += idx as u64;
        self.mig_out_by_site[site] += idx as u64;
    }

    /// Evacuates `excess` sessions from a derated site, newest first,
    /// through the same priced migration queue as [`Self::displace_all`].
    /// Unlike a partition, the source is still reachable: the instances
    /// finish cleanly (departures) instead of orphaning.
    fn evacuate_excess(&mut self, site: usize, mut excess: usize, w: usize) {
        let lanes = self.cfg.migration.max_concurrent.max(1);
        let lane = DataRate::bps(self.cfg.migration.bottleneck.as_bps() / lanes as f64);
        let wave = self.mig_wave;
        let win_nanos = self.cfg.window.as_nanos().max(1);
        let mut idx = 0usize;
        for home in 0..self.cfg.sites {
            let per = self
                .wan
                .migration_time(site, home, self.cfg.migration.state_size, lane);
            while excess > 0 {
                let Some(pos) = self.stacks[home]
                    .iter()
                    .rposition(|&(h, _)| h as usize == site)
                else {
                    break;
                };
                let (_, id) = self.stacks[home].remove(pos);
                self.jobs[site].commands.departures.push(id);
                self.load_est[site] = self.load_est[site].saturating_sub(1);
                let delay = wave * ((idx / lanes) as f64) + per;
                let ready = w + (delay.as_nanos().div_ceil(win_nanos) as usize).max(1);
                self.migrating[home].push(ready);
                idx += 1;
                excess -= 1;
            }
            if excess == 0 {
                break;
            }
        }
        self.report.stranded += idx as u64;
        self.mig_out_by_site[site] += idx as u64;
    }

    /// Loans out the planned window's jobs for the (parallelizable) step
    /// phase. Every job must be stepped exactly once and the whole `Vec`
    /// handed back to [`Self::absorb`] in unchanged order.
    pub fn take_window(&mut self) -> Vec<SiteJob> {
        assert!(self.planned, "take_window before plan_window");
        std::mem::take(&mut self.jobs)
    }

    /// Phase 3 (serial, site order): takes the stepped jobs back and
    /// folds their reports into the digest, totals, session stacks and
    /// placer estimates.
    pub fn absorb(&mut self, jobs: Vec<SiteJob>) {
        assert!(self.planned, "absorb before plan_window");
        assert!(self.jobs.is_empty(), "absorb with jobs not taken");
        assert_eq!(jobs.len(), self.cfg.sites, "job set split or truncated");
        self.jobs = jobs;
        let mut fleet_power = 0.0;
        for site in 0..self.cfg.sites {
            let job = &mut self.jobs[site];
            assert_eq!(job.shard.site, site, "absorb must preserve site order");
            let r = &job.report;
            for &(home, id) in &r.admitted {
                self.stacks[home as usize].push((site as u32, id));
            }
            let mut landed = 0u32;
            for &(home, id) in &r.migrated_in {
                self.stacks[home as usize].push((site as u32, id));
                landed += 1;
            }
            if landed > 0 {
                self.report.migrated += u64::from(landed);
                self.mig_in_by_site[site] += u64::from(landed);
                self.events.record(
                    job.barrier,
                    Scope::Fleet,
                    EventKind::SessionsMigrated {
                        site: site as u32,
                        count: landed,
                    },
                );
            }
            // Host-side rejections bounce the checkpoints back into the
            // queue; they retry at the next barrier.
            let mut bounced = 0u32;
            for &(home, count) in &r.migration_rejected {
                for _ in 0..count {
                    self.migrating[home as usize].push(self.window_idx + 1);
                }
                bounced += count;
            }
            self.report.migration_retries += u64::from(bounced);
            // The orchestrator's count is authoritative; rejections made
            // the plan-time estimate optimistic.
            self.load_est[site] = r.active;
            self.report.rejected += u64::from(r.rejected);
            self.report.killed += u64::from(r.killed);
            fleet_power += r.power_w;

            fnv_fold(&mut self.digest, self.window_idx as u64);
            fnv_fold(&mut self.digest, site as u64);
            fnv_fold(&mut self.digest, r.active as u64);
            fnv_fold(&mut self.digest, u64::from(r.rejected));
            fnv_fold(&mut self.digest, r.migrated_in.len() as u64);
            fnv_fold(&mut self.digest, u64::from(bounced));
            fnv_fold(&mut self.digest, u64::from(r.killed));
            fnv_fold(&mut self.digest, r.stats.admitted);
            fnv_fold(&mut self.digest, r.stats.completed);
            fnv_fold(&mut self.digest, r.stats.wakeups);
            fnv_fold(&mut self.digest, r.energy_j.to_bits());
            fnv_fold(&mut self.digest, r.power_w.to_bits());

            job.commands.departures.clear();
            job.commands.arrivals.clear();
            job.commands.migrations_in.clear();
            job.commands.power_on = false;
            job.commands.power_off = false;
        }
        self.report.peak_fleet_power_w = self.report.peak_fleet_power_w.max(fleet_power);
        self.report.served_session_windows +=
            self.stacks.iter().map(|s| s.len() as u64).sum::<u64>();
        self.report.in_flight = self.in_flight_sessions() as u64;
        self.window_idx += 1;
        self.report.windows = self.window_idx;
        self.planned = false;
        if self.done() {
            self.report.fleet_kwh =
                self.jobs.iter().map(|j| j.report.energy_j).sum::<f64>() / 3.6e6;
            #[cfg(debug_assertions)]
            if let Err(e) = self.verify_session_accounting() {
                panic!("fleet session accounting violated at end of run: {e}");
            }
        }
    }

    /// Plans, steps (sequentially, in site order) and absorbs one window.
    /// Returns `false` when the run is already complete.
    pub fn step_window(&mut self) -> bool {
        if !self.plan_window() {
            return false;
        }
        let mut jobs = self.take_window();
        for job in &mut jobs {
            job.step();
        }
        self.absorb(jobs);
        true
    }

    /// Runs the whole fleet sequentially to completion.
    pub fn run_to_end(&mut self) {
        while self.step_window() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetConfig {
        FleetConfig {
            sites: 4,
            hours: 2,
            window: SimDuration::from_secs(120),
            seed: 7,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_runs_to_completion_and_serves_sessions() {
        let mut fleet = FleetSim::new(small());
        fleet.run_to_end();
        let r = fleet.report();
        assert_eq!(r.windows, fleet.windows());
        assert!(r.routed > 0, "{r:?}");
        assert!(r.fleet_kwh > 0.0);
        assert_eq!(r.unplaceable, 0, "Fig. 5 demand fits the fleet: {r:?}");
        assert_eq!(r.rejected, 0, "{r:?}");
        assert!(r.availability() > 0.9, "{r:?}");
        fleet.verify_session_accounting().expect("closed books");
    }

    #[test]
    fn sequential_runs_are_bit_identical() {
        let mut a = FleetSim::new(small());
        let mut b = FleetSim::new(small());
        a.run_to_end();
        b.run_to_end();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.report(), b.report());
        assert_eq!(a.events().digest(), b.events().digest());
    }

    #[test]
    fn out_of_order_stepping_matches_in_order() {
        // The step phase must commute: stepping jobs in reverse site
        // order (as a work-stealing pool might) changes nothing.
        let mut a = FleetSim::new(small());
        let mut b = FleetSim::new(small());
        a.run_to_end();
        while b.plan_window() {
            let mut jobs = b.take_window();
            for job in jobs.iter_mut().rev() {
                job.step();
            }
            b.absorb(jobs);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn partitions_displace_and_live_migrate() {
        let cfg = FleetConfig {
            mean_partitions: 6.0,
            mean_partition_windows: 6.0,
            hours: 4,
            seed: 11,
            ..small()
        };
        let mut fleet = FleetSim::new(cfg);
        fleet.run_to_end();
        let r = fleet.report();
        assert!(r.partitions > 0, "seed must yield partitions: {r:?}");
        assert!(r.stranded > 0, "{r:?}");
        assert!(r.rerouted > 0, "{r:?}");
        // Displaced sessions live-migrate instead of dying with the
        // partition; with the default (fast) WAN pacing nearly all land.
        assert!(r.migrated > 0, "{r:?}");
        assert_eq!(
            r.migrated + r.migration_cancelled + r.in_flight,
            r.stranded,
            "{r:?}"
        );
        assert!(
            r.migrated * 10 >= r.stranded * 9,
            "≥90% of displaced sessions must land: {r:?}"
        );
        fleet.verify_session_accounting().expect("closed books");
    }

    #[test]
    fn no_faults_means_no_rerouting() {
        let mut fleet = FleetSim::new(FleetConfig {
            mean_partitions: 0.0,
            ..small()
        });
        fleet.run_to_end();
        let r = fleet.report();
        assert_eq!(r.partitions, 0);
        assert_eq!(r.rerouted, 0, "capacity never forces rerouting: {r:?}");
        assert_eq!(r.stranded, 0);
        assert_eq!(r.migrated, 0);
        assert_eq!(r.killed, 0);
    }

    #[test]
    fn blackout_kills_instances_and_flatlines_power() {
        let dark_from = 20;
        let dark_for = 5;
        let faults = vec![SiteFaultEvent {
            window: dark_from,
            fault: SiteFault::Blackout {
                site: 1,
                windows: dark_for,
            },
        }];
        let cfg = FleetConfig {
            mean_partitions: 0.0,
            ..small()
        };
        let mut fleet = FleetSim::with_site_faults(cfg, faults);
        let mut power_before = 0.0;
        let mut dark_power = f64::MAX;
        let mut dark_energy = (0.0, 0.0);
        while fleet.plan_window() {
            let mut jobs = fleet.take_window();
            for job in &mut jobs {
                job.step();
            }
            fleet.absorb(jobs);
            let w = fleet.windows_done() - 1;
            let orch = fleet.shard(1).orchestrator();
            if w == dark_from - 1 {
                power_before = orch.power().as_watts();
            }
            if w == dark_from {
                dark_energy.0 = orch.energy().as_joules();
            }
            if w > dark_from && w < dark_from + dark_for {
                dark_power = dark_power.min(orch.power().as_watts());
                dark_energy.1 = orch.energy().as_joules();
            }
        }
        let r = fleet.report();
        assert_eq!(r.blackouts, 1, "{r:?}");
        assert!(r.killed > 0, "dark SoCs kill their instances: {r:?}");
        assert!(r.stranded > 0 && r.migrated > 0, "{r:?}");
        // While dark, only chassis overhead draws power...
        let chassis = fleet
            .shard(1)
            .orchestrator()
            .cluster()
            .chassis_power()
            .as_watts();
        assert!(
            dark_power <= chassis * 1.05,
            "dark site must idle at the chassis floor: {dark_power} W vs chassis {chassis} W"
        );
        assert!(dark_power < power_before, "blackout must cut power");
        // ...so the energy ledger flatlines near the chassis rate. The
        // fan tracks temperature, which decays over the first dark
        // windows, hence the margin above the instantaneous floor.
        let window_s = 120.0;
        let dark_joules = dark_energy.1 - dark_energy.0;
        let dark_windows = (dark_for - 1) as f64;
        assert!(
            dark_joules <= chassis * window_s * dark_windows * 1.25,
            "dark energy {dark_joules} J exceeds the chassis floor {chassis} W"
        );
        assert!(
            dark_joules < 0.9 * power_before * window_s * dark_windows,
            "dark energy {dark_joules} J is not flat vs pre-blackout {power_before} W"
        );
        // And the per-site ledger still conserves energy end-to-end.
        for site in 0..fleet.config().sites {
            fleet
                .shard(site)
                .orchestrator()
                .verify_energy_conservation(1e-6)
                .expect("ledger conserves through blackout");
        }
        fleet.verify_session_accounting().expect("closed books");
    }

    #[test]
    fn region_storm_partitions_the_whole_block() {
        let cfg = FleetConfig {
            sites: 8,
            regions: 4,
            mean_partitions: 0.0,
            ..small()
        };
        let faults = vec![SiteFaultEvent {
            window: 10,
            fault: SiteFault::RegionStorm {
                region: 1,
                windows: 3,
            },
        }];
        let mut fleet = FleetSim::with_site_faults(cfg, faults);
        let block = fleet.wan().sites_of_region(1);
        let block_len = block.len() as u64;
        fleet.run_to_end();
        let r = fleet.report();
        assert_eq!(r.storms, 1, "{r:?}");
        assert_eq!(
            r.partitions, block_len,
            "a storm partitions every site in its region: {r:?}"
        );
        assert!(r.stranded > 0 && r.migrated > 0, "{r:?}");
        fleet.verify_session_accounting().expect("closed books");
    }

    #[test]
    fn brownout_derates_capacity_and_evacuates_excess() {
        // Two same-phase sites run a full day so the Fig. 5 evening peak
        // saturates the (lowered) capacity estimate; a brownout at peak
        // then derates below current load and must evacuate the excess.
        let cfg = FleetConfig {
            sites: 2,
            regions: 1,
            hours: 24,
            session_capacity: 300,
            mean_partitions: 0.0,
            ..FleetConfig::default()
        };
        // 21:00 at 120 s windows.
        let peak_window = 21 * 30;
        let faults = vec![SiteFaultEvent {
            window: peak_window,
            fault: SiteFault::Brownout {
                site: 0,
                windows: 6,
            },
        }];
        let mut fleet = FleetSim::with_site_faults(cfg, faults);
        let mut derated_cap = usize::MAX;
        while fleet.plan_window() {
            let mut jobs = fleet.take_window();
            for job in &mut jobs {
                job.step();
            }
            fleet.absorb(jobs);
            if fleet.is_derated(0) {
                derated_cap = derated_cap.min(fleet.cap_est[0]);
            }
        }
        let r = fleet.report();
        assert_eq!(r.brownouts, 1, "{r:?}");
        let frac = brownout_throughput_frac(SITE_BROWNOUT_RAIL_RATIO);
        assert!(frac > 0.0 && frac < 1.0, "derate must be partial: {frac}");
        assert_eq!(derated_cap, (300.0 * frac).floor() as usize);
        assert!(
            r.stranded > 0,
            "peak load above the derated cap must evacuate: {r:?}"
        );
        fleet.verify_session_accounting().expect("closed books");
    }

    #[test]
    fn bursty_same_window_heals_stay_ordered() {
        // Four faults of three kinds land in the same window with
        // different durations; the binary-inserted heal queue must stay
        // strictly descending throughout and fire each heal on time.
        let at = 5;
        let faults = vec![
            SiteFaultEvent {
                window: at,
                fault: SiteFault::Partition {
                    site: 0,
                    windows: 9,
                },
            },
            SiteFaultEvent {
                window: at,
                fault: SiteFault::Partition {
                    site: 1,
                    windows: 2,
                },
            },
            SiteFaultEvent {
                window: at,
                fault: SiteFault::Blackout {
                    site: 2,
                    windows: 5,
                },
            },
            SiteFaultEvent {
                window: at,
                fault: SiteFault::Brownout {
                    site: 3,
                    windows: 5,
                },
            },
        ];
        let cfg = FleetConfig {
            mean_partitions: 0.0,
            ..small()
        };
        let mut fleet = FleetSim::with_site_faults(cfg, faults);
        while fleet.plan_window() {
            // Strictly descending: soonest heal last, no duplicates.
            for pair in fleet.heals.windows(2) {
                assert!(pair[0] > pair[1], "heal queue out of order: {pair:?}");
            }
            let mut jobs = fleet.take_window();
            for job in &mut jobs {
                job.step();
            }
            fleet.absorb(jobs);
            let w = fleet.windows_done() - 1;
            // Each effect ends exactly at its scheduled heal window.
            assert_eq!(fleet.is_unreachable(1), (at..at + 2).contains(&w));
            assert_eq!(fleet.is_dark(2), (at..at + 5).contains(&w));
            assert_eq!(fleet.is_derated(3), (at..at + 5).contains(&w));
            assert_eq!(fleet.is_unreachable(0), (at..at + 9).contains(&w));
        }
        assert_eq!(fleet.pending_heals(), 0);
        assert_eq!(fleet.orphaned_instances(), 0);
        fleet.verify_session_accounting().expect("closed books");
    }

    #[test]
    fn chaos_runs_are_deterministic_and_order_independent() {
        let cfg = FleetConfig {
            sites: 8,
            regions: 4,
            hours: 4,
            mean_partitions: 2.0,
            ..small()
        };
        let faults = || {
            vec![
                SiteFaultEvent {
                    window: 8,
                    fault: SiteFault::RegionStorm {
                        region: 2,
                        windows: 4,
                    },
                },
                SiteFaultEvent {
                    window: 30,
                    fault: SiteFault::Blackout {
                        site: 0,
                        windows: 3,
                    },
                },
                SiteFaultEvent {
                    window: 30,
                    fault: SiteFault::Brownout {
                        site: 1,
                        windows: 6,
                    },
                },
            ]
        };
        let mut a = FleetSim::with_site_faults(cfg, faults());
        let mut b = FleetSim::with_site_faults(cfg, faults());
        a.run_to_end();
        while b.plan_window() {
            let mut jobs = b.take_window();
            for job in jobs.iter_mut().rev() {
                job.step();
            }
            b.absorb(jobs);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.report(), b.report());
        assert!(a.report().storms == 1 && a.report().blackouts == 1);
        a.verify_session_accounting().expect("closed books");
    }

    #[test]
    fn accounting_stays_closed_every_window() {
        let cfg = FleetConfig {
            mean_partitions: 4.0,
            hours: 4,
            seed: 13,
            ..small()
        };
        let faults = vec![
            SiteFaultEvent {
                window: 12,
                fault: SiteFault::Blackout {
                    site: 2,
                    windows: 4,
                },
            },
            SiteFaultEvent {
                window: 40,
                fault: SiteFault::Brownout {
                    site: 0,
                    windows: 8,
                },
            },
        ];
        let mut fleet = FleetSim::with_site_faults(cfg, faults);
        while fleet.plan_window() {
            let mut jobs = fleet.take_window();
            for job in &mut jobs {
                job.step();
            }
            fleet.absorb(jobs);
            fleet
                .verify_session_accounting()
                .unwrap_or_else(|e| panic!("window {}: {e}", fleet.windows_done()));
        }
    }

    #[test]
    fn diurnal_phasing_flattens_the_fleet_envelope() {
        // Phased sites peak at different windows, so fleet peak power is
        // well below sites × single-site peak.
        let cfg = FleetConfig {
            sites: 8,
            regions: 8,
            hours: 24,
            mean_partitions: 0.0,
            ..FleetConfig::default()
        };
        let mut fleet = FleetSim::new(cfg);
        fleet.run_to_end();
        let fleet_peak = fleet.report().peak_fleet_power_w;

        let mut lone = FleetSim::new(FleetConfig {
            sites: 1,
            regions: 1,
            ..cfg
        });
        lone.run_to_end();
        let site_peak = lone.report().peak_fleet_power_w;
        assert!(
            fleet_peak < 0.9 * 8.0 * site_peak,
            "fleet {fleet_peak} vs 8 × site {site_peak}"
        );
    }

    #[test]
    fn gaming_checkpoint_is_megabytes_scale() {
        let s = gaming_checkpoint(10.0);
        let mb = s.as_bytes() / 1e6;
        assert!(
            (1.0..64.0).contains(&mb),
            "1080p60 checkpoint should be MB-scale, got {mb} MB"
        );
    }

    #[test]
    #[should_panic(expected = "WAN RTT floor")]
    fn sub_rtt_window_is_rejected() {
        let _ = FleetSim::new(FleetConfig {
            window: SimDuration::from_millis(5),
            ..small()
        });
    }

    #[test]
    #[should_panic(expected = "outside the fleet")]
    fn out_of_range_site_fault_is_rejected() {
        let _ = FleetSim::with_site_faults(
            small(),
            vec![SiteFaultEvent {
                window: 0,
                fault: SiteFault::Blackout {
                    site: 99,
                    windows: 1,
                },
            }],
        );
    }
}
