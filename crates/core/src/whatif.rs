//! What-if projections for future SoC Clusters (§8).
//!
//! The paper's discussion argues that (a) clusters built from newer SoC
//! generations inherit the longitudinal gains of §7, and (b) a faster
//! inter-SoC fabric would unlock cross-SoC workloads. This module projects
//! the headline metrics for a hypothetical cluster built from any
//! [`SocGeneration`] and for upgraded fabrics, reusing the same calibrated
//! models the baseline numbers come from.

use serde::{Deserialize, Serialize};
use socc_dl::parallel::{PARTITION_OVERHEAD, PIPELINE_OVERLAP};
use socc_dl::ModelId;
use socc_hw::generations::SocGeneration;
use socc_net::tcp::TcpModel;
use socc_sim::time::SimDuration;
use socc_sim::units::{DataRate, DataSize};
use socc_video::{TranscodeUnit, VideoMeta};

/// Projected per-SoC and per-cluster numbers for a generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationProjection {
    /// The SoC generation the cluster is built from.
    pub generation: SocGeneration,
    /// Max live V1 streams per SoC on the CPU.
    pub v1_cpu_streams: usize,
    /// Whole-cluster live V1 streams (60 SoCs).
    pub v1_cluster_streams: usize,
    /// ResNet-50 INT8 DSP latency in ms (None where unsupported).
    pub r50_dsp_ms: Option<f64>,
    /// Whole-cluster ResNet-50 INT8 DSP throughput in fps.
    pub r50_dsp_cluster_fps: Option<f64>,
    /// Live V1 TpE scaling vs the SD865 cluster (power assumed constant:
    /// newer nodes spend the process gains on performance at iso-power).
    pub live_tpe_gain: f64,
}

/// Projects a cluster built from `generation` (iso-power assumption: each
/// generation delivers its §7 speedup at the same per-SoC power envelope,
/// which is how flagship mobile SoCs have actually evolved).
pub fn project_generation(generation: SocGeneration) -> GenerationProjection {
    let v1 = socc_video::vbench::by_id("V1").expect("vbench V1");
    let base_streams = TranscodeUnit::SocCpu.max_live_streams(&v1);
    let scaled = (base_streams as f64 * generation.video_cpu_speed()).floor() as usize;
    let socs = socc_hw::calib::CLUSTER_SOC_COUNT;
    let dsp_ms = generation
        .dl_dsp_speed()
        .map(|s| socc_hw::calib::DL_SOC_DSP_R50_INT8_MS / s);
    GenerationProjection {
        generation,
        v1_cpu_streams: scaled,
        v1_cluster_streams: scaled * socs,
        r50_dsp_ms: dsp_ms,
        r50_dsp_cluster_fps: dsp_ms.map(|ms| 1000.0 / ms * socs as f64),
        live_tpe_gain: generation.video_cpu_speed(),
    }
}

/// Projects collaborative-inference latency under an upgraded inter-SoC
/// fabric of `link_gbps` per SoC (the §8 "network infrastructure" lever),
/// for `socs` SoCs with optional pipelining.
pub fn project_collab_with_fabric(
    model: ModelId,
    socs: usize,
    link_gbps: f64,
    pipelined: bool,
) -> socc_dl::parallel::CollabReport {
    assert!(socs > 0, "need at least one SoC");
    let n = socs as f64;
    let t1 = SimDuration::from_millis_f64(socc_dl::parallel::single_soc_ms(model));
    if socs == 1 {
        return socc_dl::parallel::CollabReport {
            socs: 1,
            compute: t1,
            comm: SimDuration::ZERO,
            total: t1,
        };
    }
    let compute = t1 * (1.0 / n + PARTITION_OVERHEAD * (n - 1.0) / n);
    // Same mechanics as `socc_dl::parallel`, at the upgraded link rate. A
    // faster fabric also shrinks the RTT's serialization share; we keep
    // RTT fixed (propagation + switching dominate it).
    let tcp = TcpModel::inter_soc();
    let goodput = tcp.goodput(DataRate::gbps(link_gbps));
    let graph = model.graph();
    let straggler = 1.0 + 0.05 * (n - 2.0).max(0.0);
    let mut comm = SimDuration::ZERO;
    for layer in graph.layers() {
        let halo = layer.halo_bytes();
        if halo > 0.0 {
            comm += (tcp.rtt + DataSize::bytes(halo) / goodput) * straggler;
        }
    }
    let input_bytes = graph.input.bytes(socc_dl::DType::Fp32) as f64 * (n - 1.0) / n;
    comm += tcp.transfer_time(DataSize::bytes(input_bytes), goodput);
    let visible = if pipelined {
        comm * (1.0 - PIPELINE_OVERLAP)
    } else {
        comm
    };
    socc_dl::parallel::CollabReport {
        socs,
        compute,
        comm: visible,
        total: compute + visible,
    }
}

/// Maximum live streams of `video` per SoC if the PCB uplink grew to
/// `pcb_gbps` (Table 3's bound analysis as a dial).
pub fn network_bound_streams(video: &VideoMeta, pcb_gbps: f64) -> usize {
    let per_stream_mbps = video.stream_traffic().as_mbps();
    let per_pcb = pcb_gbps * 1000.0 / per_stream_mbps;
    (per_pcb / socc_hw::calib::SOCS_PER_PCB as f64).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd8gen1_cluster_nearly_doubles_v1_capacity() {
        // §7: 8+Gen1 transcodes 1.8× faster than the SD865.
        let base = project_generation(SocGeneration::Sd865);
        let next = project_generation(SocGeneration::Sd8Gen1Plus);
        assert_eq!(base.v1_cpu_streams, 13);
        assert!(
            (22..=24).contains(&next.v1_cpu_streams),
            "{}",
            next.v1_cpu_streams
        );
        assert!(next.live_tpe_gain > 1.7);
    }

    #[test]
    fn dsp_projection_follows_generations() {
        let p = project_generation(SocGeneration::Sd8Gen1Plus);
        let ms = p.r50_dsp_ms.unwrap();
        assert!((2.0..=2.6).contains(&ms), "{ms}");
        assert!(p.r50_dsp_cluster_fps.unwrap() > 20_000.0);
        assert!(project_generation(SocGeneration::Sd835)
            .r50_dsp_ms
            .is_none());
    }

    #[test]
    fn faster_fabric_shrinks_comm_share() {
        let base = project_collab_with_fabric(ModelId::ResNet50, 5, 1.0, false);
        let ten_g = project_collab_with_fabric(ModelId::ResNet50, 5, 10.0, false);
        assert!(ten_g.comm < base.comm);
        assert!(ten_g.comm_share() < base.comm_share() * 0.8);
        // The 1 Gbps case matches the in-paper model.
        let paper = socc_dl::parallel::tensor_parallel(
            ModelId::ResNet50,
            socc_dl::parallel::CollabConfig {
                socs: 5,
                pipelined: false,
            },
        );
        assert!((base.total.as_millis_f64() - paper.total.as_millis_f64()).abs() < 1e-6);
    }

    #[test]
    fn even_infinite_bandwidth_leaves_rtt_floor() {
        // §8's point that software must improve too: barrier RTTs remain.
        let huge = project_collab_with_fabric(ModelId::ResNet50, 5, 1000.0, false);
        let sync_floor_ms = ModelId::ResNet50.graph().halo_sync_points() as f64 * 0.44;
        assert!(
            huge.comm.as_millis_f64() >= sync_floor_ms * 0.9,
            "{}",
            huge.comm
        );
    }

    #[test]
    fn pcb_upgrade_unlocks_v5_density() {
        // Table 3: at 1 Gbps, V5 supports ~9 streams/SoC of summed traffic;
        // a 10 Gbps PCB would support ~99.
        let v5 = socc_video::vbench::by_id("V5").unwrap();
        let now = network_bound_streams(&v5, 1.0);
        let upgraded = network_bound_streams(&v5, 10.0);
        assert!((9..=10).contains(&now), "{now}");
        assert!(upgraded >= 90, "{upgraded}");
    }
}
