//! Fault modelling: when do SoCs die, and what does it cost?
//!
//! §8: "mobile SoCs are not typically designed to operate at full speed and
//! 24/7 in clouds … The failure of a single SoC subsystem, such as flash,
//! can render the application and entire SoC unusable. Therefore, fault
//! tolerance is crucial for the success of SoC Cluster."

use serde::{Deserialize, Serialize};
use socc_sim::rng::SimRng;
use socc_sim::time::{SimDuration, SimTime};

/// What broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Flash wear-out — the dominant failure mode for 24/7 mobile silicon.
    Flash,
    /// SoC lock-up requiring a power cycle.
    SocHang,
    /// DRAM failure.
    Memory,
    /// Protective thermal shutdown — the SoC trips offline until it cools.
    ThermalTrip,
    /// Loss of the SoC's fabric access link — the SoC runs but is
    /// unreachable until the link is repaired.
    LinkLoss,
}

impl FaultKind {
    /// Whether the SoC can return to service after remediation (a hung SoC
    /// reboots, a tripped SoC cools down, a lost link gets re-seated; dead
    /// flash/DRAM means the slot stays dark until the PCB is swapped).
    pub fn recoverable(self) -> bool {
        matches!(
            self,
            FaultKind::SocHang | FaultKind::ThermalTrip | FaultKind::LinkLoss
        )
    }
}

/// A scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// Which SoC slot.
    pub soc: usize,
    /// Failure mode.
    pub kind: FaultKind,
}

/// Generates fault schedules from annual failure rates.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Annual probability of flash failure per SoC at full duty.
    pub flash_afr: f64,
    /// Annual rate of hangs per SoC.
    pub hang_afr: f64,
    /// Annual rate of DRAM failures per SoC.
    pub memory_afr: f64,
    /// Annual rate of protective thermal shutdowns per SoC. Zero by default:
    /// the prototype's fan wall keeps SoCs below throttle (§3), so trips
    /// only appear in what-if sweeps that opt in.
    pub thermal_afr: f64,
    /// Annual rate of fabric-link failures per SoC slot. Zero by default
    /// for the same reason.
    pub link_afr: f64,
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self {
            flash_afr: socc_hw::memory::StorageModel::ufs_256gb().annual_failure_rate,
            hang_afr: 0.10,
            memory_afr: 0.008,
            thermal_afr: 0.0,
            link_afr: 0.0,
        }
    }
}

const SECS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

impl FaultInjector {
    /// Draws the fault schedule for a fleet of `socs` SoCs over `horizon`,
    /// sorted by time. Each (SoC, mode) pair fails at most once.
    pub fn schedule(&self, socs: usize, horizon: SimDuration, rng: &mut SimRng) -> Vec<FaultEvent> {
        // Degenerate inputs produce an empty schedule without consuming any
        // randomness, so a caller's RNG stream is unperturbed.
        if socs == 0 || horizon.is_zero() {
            return Vec::new();
        }
        let mut events = Vec::new();
        for soc in 0..socs {
            for (kind, afr) in [
                (FaultKind::Flash, self.flash_afr),
                (FaultKind::SocHang, self.hang_afr),
                (FaultKind::Memory, self.memory_afr),
                (FaultKind::ThermalTrip, self.thermal_afr),
                (FaultKind::LinkLoss, self.link_afr),
            ] {
                if afr <= 0.0 {
                    continue;
                }
                // Exponential time-to-failure with rate = afr per year.
                let ttf_secs = rng.exponential(afr / SECS_PER_YEAR);
                if ttf_secs < horizon.as_secs_f64() {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(ttf_secs),
                        soc,
                        kind,
                    });
                }
            }
        }
        events.sort_by_key(|e| (e.at, e.soc));
        events
    }

    /// Expected number of failed SoCs after `horizon` for a fleet.
    pub fn expected_failures(&self, socs: usize, horizon: SimDuration) -> f64 {
        let years = horizon.as_secs_f64() / SECS_PER_YEAR;
        let rate =
            self.flash_afr + self.hang_afr + self.memory_afr + self.thermal_afr + self.link_afr;
        socs as f64 * (1.0 - (-rate * years).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sorted_and_bounded() {
        let mut rng = SimRng::seed(42);
        let horizon = SimDuration::from_hours(24 * 365);
        let events = FaultInjector::default().schedule(60, horizon, &mut rng);
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for e in &events {
            assert!(e.at.as_secs_f64() < horizon.as_secs_f64());
            assert!(e.soc < 60);
        }
    }

    #[test]
    fn yearly_failure_count_near_expectation() {
        // 60 SoCs × (3.5% flash + 10% hang + 0.8% mem) ≈ 8.2 events/year.
        let inj = FaultInjector::default();
        let horizon = SimDuration::from_hours(24 * 365);
        let mut total = 0usize;
        let runs = 200;
        for seed in 0..runs {
            let mut rng = SimRng::seed(seed);
            total += inj.schedule(60, horizon, &mut rng).len();
        }
        let mean = total as f64 / runs as f64;
        let expected = 60.0 * (0.035 + 0.10 + 0.008);
        assert!(
            (mean - expected).abs() / expected < 0.15,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn expected_failures_formula() {
        let inj = FaultInjector::default();
        let one_year = SimDuration::from_hours(24 * 365);
        let e = inj.expected_failures(60, one_year);
        assert!((7.0..=9.0).contains(&e), "expected {e}");
        assert_eq!(inj.expected_failures(0, one_year), 0.0);
    }

    #[test]
    fn recoverability_by_kind() {
        assert!(FaultKind::SocHang.recoverable());
        assert!(FaultKind::ThermalTrip.recoverable());
        assert!(FaultKind::LinkLoss.recoverable());
        assert!(!FaultKind::Flash.recoverable());
        assert!(!FaultKind::Memory.recoverable());
    }

    #[test]
    fn zero_socs_schedule_is_empty_without_sampling() {
        let inj = FaultInjector::default();
        let horizon = SimDuration::from_hours(24 * 365);
        let mut rng = SimRng::seed(9);
        assert!(inj.schedule(0, horizon, &mut rng).is_empty());
        // The RNG stream was not consumed: the next schedule from this RNG
        // matches one drawn from a fresh RNG with the same seed.
        let after = inj.schedule(60, horizon, &mut rng);
        let fresh = inj.schedule(60, horizon, &mut SimRng::seed(9));
        assert_eq!(after, fresh);
    }

    #[test]
    fn zero_horizon_schedule_is_empty_without_sampling() {
        let inj = FaultInjector::default();
        let mut rng = SimRng::seed(11);
        assert!(inj.schedule(60, SimDuration::ZERO, &mut rng).is_empty());
        let after = inj.schedule(60, SimDuration::from_hours(24), &mut rng);
        let fresh = inj.schedule(60, SimDuration::from_hours(24), &mut SimRng::seed(11));
        assert_eq!(after, fresh);
    }

    #[test]
    fn opt_in_kinds_appear_when_rates_set() {
        let inj = FaultInjector {
            thermal_afr: 5.0,
            link_afr: 5.0,
            ..FaultInjector::default()
        };
        let mut rng = SimRng::seed(3);
        let events = inj.schedule(60, SimDuration::from_hours(24 * 365), &mut rng);
        assert!(events.iter().any(|e| e.kind == FaultKind::ThermalTrip));
        assert!(events.iter().any(|e| e.kind == FaultKind::LinkLoss));
    }

    #[test]
    fn deterministic_given_seed() {
        let inj = FaultInjector::default();
        let horizon = SimDuration::from_hours(24 * 30);
        let a = inj.schedule(60, horizon, &mut SimRng::seed(7));
        let b = inj.schedule(60, horizon, &mut SimRng::seed(7));
        assert_eq!(a, b);
    }
}
