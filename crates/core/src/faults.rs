//! Fault modelling: when do SoCs die, and what does it cost?
//!
//! §8: "mobile SoCs are not typically designed to operate at full speed and
//! 24/7 in clouds … The failure of a single SoC subsystem, such as flash,
//! can render the application and entire SoC unusable. Therefore, fault
//! tolerance is crucial for the success of SoC Cluster."
//!
//! The chassis is not 60 independent machines: five SoCs share each PCB
//! carrier board, the twelve boards hang off one Ethernet Switch Board, and
//! the whole 2U enclosure shares a redundant PSU pair and one airflow path.
//! Faults therefore arrive *correlated*: [`FailureDomains`] derives that
//! hierarchy from the fabric topology, and [`FaultInjector`] can schedule
//! domain-level events ([`DomainFault`]) alongside the independent per-SoC
//! kinds.

use std::ops::Range;

use serde::{Deserialize, Serialize};
use socc_net::topology::ClusterFabric;
use socc_sim::rng::SimRng;
use socc_sim::time::{SimDuration, SimTime};

/// What broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Flash wear-out — the dominant failure mode for 24/7 mobile silicon.
    Flash,
    /// SoC lock-up requiring a power cycle.
    SocHang,
    /// DRAM failure.
    Memory,
    /// Protective thermal shutdown — the SoC trips offline until it cools.
    ThermalTrip,
    /// Loss of the SoC's fabric access link — the SoC runs but is
    /// unreachable until the link is repaired.
    LinkLoss,
}

impl FaultKind {
    /// Whether the SoC can return to service after remediation (a hung SoC
    /// reboots, a tripped SoC cools down, a lost link gets re-seated; dead
    /// flash/DRAM means the slot stays dark until the PCB is swapped).
    pub fn recoverable(self) -> bool {
        matches!(
            self,
            FaultKind::SocHang | FaultKind::ThermalTrip | FaultKind::LinkLoss
        )
    }

    /// Stable lower-case label for telemetry counters and typed trace
    /// events.
    pub const fn label(self) -> &'static str {
        match self {
            FaultKind::Flash => "flash",
            FaultKind::SocHang => "soc_hang",
            FaultKind::Memory => "memory",
            FaultKind::ThermalTrip => "thermal_trip",
            FaultKind::LinkLoss => "link_loss",
        }
    }
}

/// A scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// Which SoC slot.
    pub soc: usize,
    /// Failure mode.
    pub kind: FaultKind,
}

/// ESB port groups span this many PCB uplink ports (the switch's PHYs are
/// ganged four ports per quad); losing a group partitions four boards at
/// once.
pub const BOARDS_PER_PORT_GROUP: usize = 4;

/// Redundant PSU modules feeding the chassis (the paper's 2 × 400 W pair).
pub const PSU_RAILS: usize = 2;

/// Airflow zones of the 2U fan wall (front/rear board halves).
pub const THERMAL_ZONES: usize = 2;

/// One level of the chassis failure-domain hierarchy: a fault lands on a
/// single SoC, a whole carrier board, an ESB port group, a PSU rail, or an
/// airflow zone — each with a progressively wider blast radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureDomain {
    /// A single SoC slot.
    Soc(usize),
    /// A PCB carrier board and the five SoCs it carries.
    Board(usize),
    /// A group of [`BOARDS_PER_PORT_GROUP`] adjacent ESB ports.
    EsbPortGroup(usize),
    /// One module of the redundant PSU pair.
    PsuRail(usize),
    /// One airflow zone of the fan wall.
    ThermalZone(usize),
    /// A whole fleet site: one enclosure plus its WAN uplink — the tier
    /// above the enclosure wall, where faults arrive as utility power
    /// loss, WAN partitions and rail brownouts (see [`SiteFault`]).
    Site(usize),
}

/// The chassis failure-domain hierarchy, sized from the fabric topology
/// (SoC → PCB board → ESB port group, plus the PSU rails and airflow zones
/// the chassis shares).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureDomains {
    /// SoC slots.
    pub socs: usize,
    /// PCB carrier boards.
    pub boards: usize,
    /// ESB port groups.
    pub port_groups: usize,
    /// PSU rails.
    pub psu_rails: usize,
    /// Airflow zones.
    pub thermal_zones: usize,
}

impl FailureDomains {
    /// Derives the hierarchy from a built fabric: boards and SoCs are read
    /// off the topology, port groups gang the boards in quads, and the PSU
    /// rails / airflow zones come from the chassis design constants.
    pub fn from_fabric(fabric: &ClusterFabric) -> Self {
        Self {
            socs: fabric.socs.len(),
            boards: fabric.pcbs.len(),
            port_groups: fabric.pcbs.len().div_ceil(BOARDS_PER_PORT_GROUP),
            psu_rails: PSU_RAILS,
            thermal_zones: THERMAL_ZONES,
        }
    }

    /// Same hierarchy for a fleet of `socs` SoCs without building a fabric.
    pub fn for_cluster(socs: usize) -> Self {
        let boards = socs.div_ceil(socc_hw::calib::SOCS_PER_PCB);
        Self {
            socs,
            boards,
            port_groups: boards.div_ceil(BOARDS_PER_PORT_GROUP),
            psu_rails: PSU_RAILS,
            thermal_zones: THERMAL_ZONES,
        }
    }

    /// The board carrying a SoC slot.
    pub fn board_of_soc(&self, soc: usize) -> usize {
        soc / socc_hw::calib::SOCS_PER_PCB
    }

    /// SoC slots on a board (clamped at the fleet edge).
    pub fn socs_of_board(&self, board: usize) -> Range<usize> {
        let per = socc_hw::calib::SOCS_PER_PCB;
        (board * per).min(self.socs)..((board + 1) * per).min(self.socs)
    }

    /// The ESB port group feeding a board.
    pub fn port_group_of_board(&self, board: usize) -> usize {
        board / BOARDS_PER_PORT_GROUP
    }

    /// Boards behind an ESB port group (clamped at the fleet edge).
    pub fn boards_of_port_group(&self, group: usize) -> Range<usize> {
        (group * BOARDS_PER_PORT_GROUP).min(self.boards)
            ..((group + 1) * BOARDS_PER_PORT_GROUP).min(self.boards)
    }

    /// SoC slots behind an ESB port group (contiguous by construction).
    pub fn socs_of_port_group(&self, group: usize) -> Range<usize> {
        let boards = self.boards_of_port_group(group);
        self.socs_of_board(boards.start).start..self.socs_of_board(boards.end.saturating_sub(1)).end
    }

    /// The airflow zone a board sits in (front/rear half of the chassis).
    pub fn thermal_zone_of_board(&self, board: usize) -> usize {
        let half = self.boards.div_ceil(THERMAL_ZONES).max(1);
        (board / half).min(THERMAL_ZONES - 1)
    }
}

/// A correlated, domain-level fault: the target and its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DomainFault {
    /// A carrier board drops: its five SoCs and their uplink fail
    /// atomically and permanently (the board must be swapped).
    BoardDown {
        /// Board slot.
        board: usize,
    },
    /// An ESB port group goes dark: the boards behind it keep running
    /// local work but are unreachable until the partition heals.
    FabricPartition {
        /// Port group index.
        group: usize,
        /// How long the partition lasts.
        duration: SimDuration,
    },
    /// A PSU rail derates: the cluster caps DVFS states and tightens
    /// admission instead of killing SoCs.
    PowerBrownout {
        /// PSU rail index.
        rail: usize,
        /// How long the brownout lasts.
        duration: SimDuration,
    },
}

impl DomainFault {
    /// The failure domain this fault lands on.
    pub fn domain(&self) -> FailureDomain {
        match *self {
            DomainFault::BoardDown { board } => FailureDomain::Board(board),
            DomainFault::FabricPartition { group, .. } => FailureDomain::EsbPortGroup(group),
            DomainFault::PowerBrownout { rail, .. } => FailureDomain::PsuRail(rail),
        }
    }

    /// The SoC slots inside the blast radius (the whole fleet for a
    /// brownout — every SoC shares the PSU rails).
    pub fn blast_radius(&self, domains: &FailureDomains) -> Range<usize> {
        match *self {
            DomainFault::BoardDown { board } => domains.socs_of_board(board),
            DomainFault::FabricPartition { group, .. } => domains.socs_of_port_group(group),
            DomainFault::PowerBrownout { .. } => 0..domains.socs,
        }
    }

    /// Sort key for deterministic schedule ordering at equal timestamps.
    fn order(&self) -> (u8, usize) {
        match *self {
            DomainFault::BoardDown { board } => (0, board),
            DomainFault::FabricPartition { group, .. } => (1, group),
            DomainFault::PowerBrownout { rail, .. } => (2, rail),
        }
    }
}

/// A scheduled domain-level fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainFaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What breaks, and where.
    pub fault: DomainFault,
}

/// A complete fault schedule: independent per-SoC events plus correlated
/// domain-level events, each sorted by time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    /// Independent per-SoC faults.
    pub soc: Vec<FaultEvent>,
    /// Correlated domain-level faults.
    pub domain: Vec<DomainFaultEvent>,
}

impl FaultSchedule {
    /// Total number of scheduled events across both levels.
    pub fn len(&self) -> usize {
        self.soc.len() + self.domain.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.soc.is_empty() && self.domain.is_empty()
    }
}

/// Generates fault schedules from annual failure rates.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Annual probability of flash failure per SoC at full duty.
    pub flash_afr: f64,
    /// Annual rate of hangs per SoC.
    pub hang_afr: f64,
    /// Annual rate of DRAM failures per SoC.
    pub memory_afr: f64,
    /// Annual rate of protective thermal shutdowns per SoC. Zero by default:
    /// the prototype's fan wall keeps SoCs below throttle (§3), so trips
    /// only appear in what-if sweeps that opt in.
    pub thermal_afr: f64,
    /// Annual rate of fabric-link failures per SoC slot. Zero by default
    /// for the same reason.
    pub link_afr: f64,
    /// Annual rate of whole-board drops per PCB (power stage or carrier
    /// failure takes all five SoCs and their uplink at once). Zero by
    /// default: correlated kinds are opt-in for chaos campaigns.
    pub board_afr: f64,
    /// Annual rate of ESB port-group losses per group. Zero by default.
    pub partition_afr: f64,
    /// Annual rate of PSU-rail brownouts per rail. Zero by default.
    pub brownout_afr: f64,
    /// How long a fabric partition lasts before the switch recovers.
    pub partition_duration: SimDuration,
    /// How long a PSU brownout lasts before the rail recovers.
    pub brownout_duration: SimDuration,
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self {
            flash_afr: socc_hw::memory::StorageModel::ufs_256gb().annual_failure_rate,
            hang_afr: 0.10,
            memory_afr: 0.008,
            thermal_afr: 0.0,
            link_afr: 0.0,
            board_afr: 0.0,
            partition_afr: 0.0,
            brownout_afr: 0.0,
            partition_duration: SimDuration::from_secs(300),
            brownout_duration: SimDuration::from_secs(600),
        }
    }
}

const SECS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

impl FaultInjector {
    /// Draws the fault schedule for a fleet of `socs` SoCs over `horizon`,
    /// sorted by time. Each (SoC, mode) pair fails at most once.
    pub fn schedule(&self, socs: usize, horizon: SimDuration, rng: &mut SimRng) -> Vec<FaultEvent> {
        // Degenerate inputs produce an empty schedule without consuming any
        // randomness, so a caller's RNG stream is unperturbed.
        if socs == 0 || horizon.is_zero() {
            return Vec::new();
        }
        let mut events = Vec::new();
        for soc in 0..socs {
            for (kind, afr) in [
                (FaultKind::Flash, self.flash_afr),
                (FaultKind::SocHang, self.hang_afr),
                (FaultKind::Memory, self.memory_afr),
                (FaultKind::ThermalTrip, self.thermal_afr),
                (FaultKind::LinkLoss, self.link_afr),
            ] {
                if afr <= 0.0 {
                    continue;
                }
                // Exponential time-to-failure with rate = afr per year.
                let ttf_secs = rng.exponential(afr / SECS_PER_YEAR);
                if ttf_secs < horizon.as_secs_f64() {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(ttf_secs),
                        soc,
                        kind,
                    });
                }
            }
        }
        events.sort_by_key(|e| (e.at, e.soc));
        events
    }

    /// Draws the domain-level schedule for `domains` over `horizon`,
    /// sorted by time. Each (domain, kind) pair fires at most once.
    ///
    /// Like [`FaultInjector::schedule`], degenerate inputs (no domains,
    /// zero horizon, or all domain rates zero) consume no randomness.
    pub fn schedule_domains(
        &self,
        domains: &FailureDomains,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> Vec<DomainFaultEvent> {
        if domains.socs == 0 || horizon.is_zero() {
            return Vec::new();
        }
        let mut events = Vec::new();
        let draw = |afr: f64, rng: &mut SimRng| -> Option<SimTime> {
            if afr <= 0.0 {
                return None;
            }
            let ttf_secs = rng.exponential(afr / SECS_PER_YEAR);
            (ttf_secs < horizon.as_secs_f64()).then(|| SimTime::from_secs_f64(ttf_secs))
        };
        for board in 0..domains.boards {
            if let Some(at) = draw(self.board_afr, rng) {
                events.push(DomainFaultEvent {
                    at,
                    fault: DomainFault::BoardDown { board },
                });
            }
        }
        for group in 0..domains.port_groups {
            if let Some(at) = draw(self.partition_afr, rng) {
                events.push(DomainFaultEvent {
                    at,
                    fault: DomainFault::FabricPartition {
                        group,
                        duration: self.partition_duration,
                    },
                });
            }
        }
        for rail in 0..domains.psu_rails {
            if let Some(at) = draw(self.brownout_afr, rng) {
                events.push(DomainFaultEvent {
                    at,
                    fault: DomainFault::PowerBrownout {
                        rail,
                        duration: self.brownout_duration,
                    },
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.fault.order()));
        events
    }

    /// Draws the complete schedule — per-SoC events first, then domain
    /// events, in that fixed RNG order — for a fleet shaped by `domains`.
    pub fn schedule_all(
        &self,
        domains: &FailureDomains,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> FaultSchedule {
        FaultSchedule {
            soc: self.schedule(domains.socs, horizon, rng),
            domain: self.schedule_domains(domains, horizon, rng),
        }
    }

    /// Expected number of SoCs taken out of service after `horizon`.
    ///
    /// (Site-tier faults are scheduled separately by
    /// [`SiteFaultInjector`]; they operate in fleet sync windows, not
    /// simulation time.)
    ///
    /// A SoC leaves service when any of its own fault kinds strikes *or*
    /// its board drops, so the per-SoC hazard is the sum of the five
    /// per-SoC rates plus the board rate (every SoC sits on exactly one
    /// board, and a board drop downs all of its SoCs). Fabric partitions
    /// and brownouts degrade service but leave SoCs running, so they do
    /// not contribute here.
    pub fn expected_failures(&self, socs: usize, horizon: SimDuration) -> f64 {
        let years = horizon.as_secs_f64() / SECS_PER_YEAR;
        let rate = self.flash_afr
            + self.hang_afr
            + self.memory_afr
            + self.thermal_afr
            + self.link_afr
            + self.board_afr;
        socs as f64 * (1.0 - (-rate * years).exp())
    }
}

/// A fault on the site tier of the hierarchy ([`FailureDomain::Site`]):
/// whole enclosures and regions, the blast radii the enclosure-level
/// machinery above cannot express. Site-tier state only changes at fleet
/// synchronization barriers, so faults fire at a *window* index and last
/// a whole number of windows (`socc-cluster::fleet` applies them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteFault {
    /// One site's WAN uplink partitions from the control plane: the
    /// enclosure keeps running, its users just cannot reach it.
    Partition {
        /// Site index.
        site: usize,
        /// Duration in sync windows.
        windows: usize,
    },
    /// A regional WAN storm: every site in one contiguous region block
    /// partitions at once — the correlated twin of scattered
    /// single-site [`SiteFault::Partition`]s.
    RegionStorm {
        /// Region index on the WAN ring.
        region: usize,
        /// Duration in sync windows.
        windows: usize,
    },
    /// Full site power loss: every PSU rail dark, all SoCs decommission
    /// and the site's energy ledger flatlines until power returns.
    Blackout {
        /// Site index.
        site: usize,
        /// Duration in sync windows.
        windows: usize,
    },
    /// One PSU rail lost at the site: every board's DVFS derates (the
    /// same math as [`DomainFault::PowerBrownout`], one tier up) and the
    /// site serves a reduced session population until the rail returns.
    Brownout {
        /// Site index.
        site: usize,
        /// Duration in sync windows.
        windows: usize,
    },
}

impl SiteFault {
    /// Duration of the fault in sync windows.
    pub fn windows(&self) -> usize {
        match *self {
            SiteFault::Partition { windows, .. }
            | SiteFault::RegionStorm { windows, .. }
            | SiteFault::Blackout { windows, .. }
            | SiteFault::Brownout { windows, .. } => windows,
        }
    }

    /// The failure domain the fault lands on — `None` for a regional
    /// storm, which spans every [`FailureDomain::Site`] in its region
    /// (the fleet expands it at apply time).
    pub fn domain(&self) -> Option<FailureDomain> {
        match *self {
            SiteFault::Partition { site, .. }
            | SiteFault::Blackout { site, .. }
            | SiteFault::Brownout { site, .. } => Some(FailureDomain::Site(site)),
            SiteFault::RegionStorm { .. } => None,
        }
    }

    /// Sort key for deterministic schedule ordering at equal windows.
    pub fn order(&self) -> (u8, usize, usize) {
        match *self {
            SiteFault::Partition { site, windows } => (0, site, windows),
            SiteFault::RegionStorm { region, windows } => (1, region, windows),
            SiteFault::Blackout { site, windows } => (2, site, windows),
            SiteFault::Brownout { site, windows } => (3, site, windows),
        }
    }
}

/// A scheduled site-tier fault: fires at the barrier opening sync window
/// `window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteFaultEvent {
    /// Window index the fault fires at.
    pub window: usize,
    /// What breaks, and where.
    pub fault: SiteFault,
}

/// Seeded site-tier fault scheduler for fleet chaos campaigns: a Poisson
/// count of each kind over the run, each at a uniform window and target,
/// with a `1 + Poisson` duration — the same shape as the enclosure-level
/// [`FaultInjector`], one tier up.
///
/// Degenerate inputs consume no randomness: a zero mean draws nothing
/// for that kind, and zero sites/windows yields an empty schedule, so
/// seeds stay comparable across configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteFaultInjector {
    /// Expected single-site WAN partitions over the run.
    pub mean_partitions: f64,
    /// Expected regional partition storms over the run.
    pub mean_storms: f64,
    /// Expected full-site blackouts over the run.
    pub mean_blackouts: f64,
    /// Expected site rail brownouts over the run.
    pub mean_brownouts: f64,
    /// Mean fault length in windows beyond the first (`1 + Poisson`).
    pub mean_windows: f64,
}

impl Default for SiteFaultInjector {
    fn default() -> Self {
        Self {
            mean_partitions: 0.0,
            mean_storms: 1.0,
            mean_blackouts: 1.0,
            mean_brownouts: 1.0,
            mean_windows: 3.0,
        }
    }
}

impl SiteFaultInjector {
    /// Draws a site-tier schedule for a fleet of `sites` sites over
    /// `regions` WAN regions and `windows` sync windows, sorted by
    /// `(window, kind, target)` so equal-window bursts apply in a fixed
    /// order.
    pub fn schedule(
        &self,
        sites: usize,
        regions: usize,
        windows: usize,
        rng: &mut SimRng,
    ) -> Vec<SiteFaultEvent> {
        let mut events = Vec::new();
        if sites == 0 || windows == 0 {
            return events;
        }
        let dur = |rng: &mut SimRng| {
            if self.mean_windows > 0.0 {
                1 + rng.poisson(self.mean_windows) as usize
            } else {
                1
            }
        };
        if self.mean_partitions > 0.0 {
            for _ in 0..rng.poisson(self.mean_partitions) {
                events.push(SiteFaultEvent {
                    window: rng.uniform_usize(0, windows),
                    fault: SiteFault::Partition {
                        site: rng.uniform_usize(0, sites),
                        windows: dur(rng),
                    },
                });
            }
        }
        if self.mean_storms > 0.0 && regions > 0 {
            for _ in 0..rng.poisson(self.mean_storms) {
                events.push(SiteFaultEvent {
                    window: rng.uniform_usize(0, windows),
                    fault: SiteFault::RegionStorm {
                        region: rng.uniform_usize(0, regions),
                        windows: dur(rng),
                    },
                });
            }
        }
        if self.mean_blackouts > 0.0 {
            for _ in 0..rng.poisson(self.mean_blackouts) {
                events.push(SiteFaultEvent {
                    window: rng.uniform_usize(0, windows),
                    fault: SiteFault::Blackout {
                        site: rng.uniform_usize(0, sites),
                        windows: dur(rng),
                    },
                });
            }
        }
        if self.mean_brownouts > 0.0 {
            for _ in 0..rng.poisson(self.mean_brownouts) {
                events.push(SiteFaultEvent {
                    window: rng.uniform_usize(0, windows),
                    fault: SiteFault::Brownout {
                        site: rng.uniform_usize(0, sites),
                        windows: dur(rng),
                    },
                });
            }
        }
        events.sort_by_key(|e| (e.window, e.fault.order()));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sorted_and_bounded() {
        let mut rng = SimRng::seed(42);
        let horizon = SimDuration::from_hours(24 * 365);
        let events = FaultInjector::default().schedule(60, horizon, &mut rng);
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for e in &events {
            assert!(e.at.as_secs_f64() < horizon.as_secs_f64());
            assert!(e.soc < 60);
        }
    }

    #[test]
    fn yearly_failure_count_near_expectation() {
        // 60 SoCs × (3.5% flash + 10% hang + 0.8% mem) ≈ 8.2 events/year.
        let inj = FaultInjector::default();
        let horizon = SimDuration::from_hours(24 * 365);
        let mut total = 0usize;
        let runs = 200;
        for seed in 0..runs {
            let mut rng = SimRng::seed(seed);
            total += inj.schedule(60, horizon, &mut rng).len();
        }
        let mean = total as f64 / runs as f64;
        let expected = 60.0 * (0.035 + 0.10 + 0.008);
        assert!(
            (mean - expected).abs() / expected < 0.15,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn expected_failures_formula() {
        let inj = FaultInjector::default();
        let one_year = SimDuration::from_hours(24 * 365);
        let e = inj.expected_failures(60, one_year);
        assert!((7.0..=9.0).contains(&e), "expected {e}");
        assert_eq!(inj.expected_failures(0, one_year), 0.0);
    }

    #[test]
    fn recoverability_by_kind() {
        assert!(FaultKind::SocHang.recoverable());
        assert!(FaultKind::ThermalTrip.recoverable());
        assert!(FaultKind::LinkLoss.recoverable());
        assert!(!FaultKind::Flash.recoverable());
        assert!(!FaultKind::Memory.recoverable());
    }

    #[test]
    fn zero_socs_schedule_is_empty_without_sampling() {
        let inj = FaultInjector::default();
        let horizon = SimDuration::from_hours(24 * 365);
        let mut rng = SimRng::seed(9);
        assert!(inj.schedule(0, horizon, &mut rng).is_empty());
        // The RNG stream was not consumed: the next schedule from this RNG
        // matches one drawn from a fresh RNG with the same seed.
        let after = inj.schedule(60, horizon, &mut rng);
        let fresh = inj.schedule(60, horizon, &mut SimRng::seed(9));
        assert_eq!(after, fresh);
    }

    #[test]
    fn zero_horizon_schedule_is_empty_without_sampling() {
        let inj = FaultInjector::default();
        let mut rng = SimRng::seed(11);
        assert!(inj.schedule(60, SimDuration::ZERO, &mut rng).is_empty());
        let after = inj.schedule(60, SimDuration::from_hours(24), &mut rng);
        let fresh = inj.schedule(60, SimDuration::from_hours(24), &mut SimRng::seed(11));
        assert_eq!(after, fresh);
    }

    #[test]
    fn opt_in_kinds_appear_when_rates_set() {
        let inj = FaultInjector {
            thermal_afr: 5.0,
            link_afr: 5.0,
            ..FaultInjector::default()
        };
        let mut rng = SimRng::seed(3);
        let events = inj.schedule(60, SimDuration::from_hours(24 * 365), &mut rng);
        assert!(events.iter().any(|e| e.kind == FaultKind::ThermalTrip));
        assert!(events.iter().any(|e| e.kind == FaultKind::LinkLoss));
    }

    #[test]
    fn deterministic_given_seed() {
        let inj = FaultInjector::default();
        let horizon = SimDuration::from_hours(24 * 30);
        let a = inj.schedule(60, horizon, &mut SimRng::seed(7));
        let b = inj.schedule(60, horizon, &mut SimRng::seed(7));
        assert_eq!(a, b);
    }

    #[test]
    fn domain_hierarchy_maps_the_chassis() {
        let fabric = socc_net::topology::Topology::soc_cluster(60);
        let d = FailureDomains::from_fabric(&fabric);
        assert_eq!(d, FailureDomains::for_cluster(60));
        assert_eq!((d.socs, d.boards, d.port_groups), (60, 12, 3));
        assert_eq!(d.board_of_soc(0), 0);
        assert_eq!(d.board_of_soc(59), 11);
        assert_eq!(d.socs_of_board(11), 55..60);
        assert_eq!(d.port_group_of_board(7), 1);
        assert_eq!(d.boards_of_port_group(2), 8..12);
        assert_eq!(d.socs_of_port_group(1), 20..40);
        assert_eq!(d.thermal_zone_of_board(0), 0);
        assert_eq!(d.thermal_zone_of_board(11), 1);
        // Blast radii follow the hierarchy.
        let board = DomainFault::BoardDown { board: 3 };
        assert_eq!(board.blast_radius(&d), 15..20);
        assert_eq!(board.domain(), FailureDomain::Board(3));
        let part = DomainFault::FabricPartition {
            group: 0,
            duration: SimDuration::from_secs(60),
        };
        assert_eq!(part.blast_radius(&d), 0..20);
        let brown = DomainFault::PowerBrownout {
            rail: 1,
            duration: SimDuration::from_secs(60),
        };
        assert_eq!(brown.blast_radius(&d), 0..60);
    }

    #[test]
    fn ragged_fleet_clamps_domain_ranges() {
        let d = FailureDomains::for_cluster(7);
        assert_eq!((d.socs, d.boards, d.port_groups), (7, 2, 1));
        assert_eq!(d.socs_of_board(1), 5..7);
        assert_eq!(d.socs_of_port_group(0), 0..7);
    }

    #[test]
    fn domain_schedule_is_deterministic_and_sorted() {
        let inj = FaultInjector {
            board_afr: 3.0,
            partition_afr: 6.0,
            brownout_afr: 2.0,
            ..FaultInjector::default()
        };
        let d = FailureDomains::for_cluster(60);
        let horizon = SimDuration::from_hours(24 * 365);
        let a = inj.schedule_domains(&d, horizon, &mut SimRng::seed(5));
        let b = inj.schedule_domains(&d, horizon, &mut SimRng::seed(5));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for pair in a.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        // All three correlated kinds appear at these rates.
        assert!(a
            .iter()
            .any(|e| matches!(e.fault, DomainFault::BoardDown { .. })));
        assert!(a
            .iter()
            .any(|e| matches!(e.fault, DomainFault::FabricPartition { .. })));
        assert!(a
            .iter()
            .any(|e| matches!(e.fault, DomainFault::PowerBrownout { .. })));
    }

    #[test]
    fn zero_domain_rates_consume_no_randomness() {
        // With every correlated rate at its default zero, schedule_all must
        // leave the RNG stream exactly where schedule() alone would.
        let inj = FaultInjector::default();
        let d = FailureDomains::for_cluster(60);
        let horizon = SimDuration::from_hours(24 * 365);
        let mut rng = SimRng::seed(13);
        let all = inj.schedule_all(&d, horizon, &mut rng);
        assert!(all.domain.is_empty());
        let mut soc_only = SimRng::seed(13);
        let plain = inj.schedule(60, horizon, &mut soc_only);
        assert_eq!(all.soc, plain);
        // Both streams advanced identically: the next draws agree.
        assert_eq!(
            inj.schedule(60, horizon, &mut rng),
            inj.schedule(60, horizon, &mut soc_only)
        );
    }

    #[test]
    fn expected_failures_accounts_for_board_events() {
        // Satellite regression: the per-SoC-only formula undercounts as
        // soon as a correlated kind is enabled. Pin the corrected formula
        // against empirical distinct-SoCs-downed counts.
        let inj = FaultInjector {
            board_afr: 0.5,
            ..FaultInjector::default()
        };
        let d = FailureDomains::for_cluster(60);
        let horizon = SimDuration::from_hours(24 * 365);
        let expected = inj.expected_failures(60, horizon);
        // The old (undercounting) formula, for contrast.
        let per_soc_only = 60.0 * (1.0 - f64::exp(-(0.035 + 0.10 + 0.008)));
        assert!(
            expected > per_soc_only * 1.5,
            "{expected} vs {per_soc_only}"
        );

        let runs = 200;
        let mut total = 0usize;
        for seed in 0..runs {
            let sched = inj.schedule_all(&d, horizon, &mut SimRng::seed(seed));
            let mut downed = [false; 60];
            for e in &sched.soc {
                downed[e.soc] = true;
            }
            for e in &sched.domain {
                if let DomainFault::BoardDown { board } = e.fault {
                    for soc in d.socs_of_board(board) {
                        downed[soc] = true;
                    }
                }
            }
            total += downed.iter().filter(|&&x| x).count();
        }
        let mean = total as f64 / runs as f64;
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "empirical {mean} vs expected {expected}"
        );
    }

    #[test]
    fn site_schedule_is_deterministic_and_window_sorted() {
        let inj = SiteFaultInjector {
            mean_partitions: 2.0,
            mean_storms: 2.0,
            mean_blackouts: 2.0,
            mean_brownouts: 2.0,
            mean_windows: 3.0,
        };
        let a = inj.schedule(12, 4, 100, &mut SimRng::seed(5));
        let b = inj.schedule(12, 4, 100, &mut SimRng::seed(5));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "means of 2 must yield events");
        for pair in a.windows(2) {
            assert!(
                (pair[0].window, pair[0].fault.order()) <= (pair[1].window, pair[1].fault.order()),
                "schedule must be window-sorted: {pair:?}"
            );
        }
        for e in &a {
            assert!(e.window < 100);
            assert!(e.fault.windows() >= 1);
        }
    }

    #[test]
    fn degenerate_site_inputs_consume_no_randomness() {
        let zero = SiteFaultInjector {
            mean_partitions: 0.0,
            mean_storms: 0.0,
            mean_blackouts: 0.0,
            mean_brownouts: 0.0,
            mean_windows: 0.0,
        };
        let mut rng = SimRng::seed(9);
        assert!(zero.schedule(12, 4, 100, &mut rng).is_empty());
        let mut fresh = SimRng::seed(9);
        assert_eq!(
            rng.uniform_usize(0, 1 << 30),
            fresh.uniform_usize(0, 1 << 30)
        );

        // Zero sites / zero windows: empty and stream-neutral even with
        // non-zero means.
        let inj = SiteFaultInjector::default();
        let mut rng = SimRng::seed(9);
        assert!(inj.schedule(0, 4, 100, &mut rng).is_empty());
        assert!(inj.schedule(12, 4, 0, &mut rng).is_empty());
        let mut fresh = SimRng::seed(9);
        assert_eq!(
            rng.uniform_usize(0, 1 << 30),
            fresh.uniform_usize(0, 1 << 30)
        );
    }

    #[test]
    fn site_faults_map_onto_the_site_domain() {
        assert_eq!(
            SiteFault::Blackout {
                site: 3,
                windows: 2
            }
            .domain(),
            Some(FailureDomain::Site(3))
        );
        assert_eq!(
            SiteFault::RegionStorm {
                region: 1,
                windows: 2
            }
            .domain(),
            None
        );
    }
}
