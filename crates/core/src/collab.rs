//! Collaborative-inference deployment: atomic multi-SoC placement.
//!
//! §5.3 evaluates tensor parallelism as a library experiment; a production
//! orchestrator must *deploy* it: reserve N SoCs together (all-or-nothing),
//! reserve the inter-SoC bandwidth the halo exchange needs, prefer SoCs on
//! the same PCB (the ESB adds two hops), and tear the group down as one.

use serde::{Deserialize, Serialize};
use socc_dl::parallel::{tensor_parallel, CollabConfig, PARTITION_OVERHEAD};
use socc_dl::ModelId;
use socc_sim::time::SimDuration;

use crate::orchestrator::Orchestrator;
use crate::soc::Demand;
use crate::workload::AdmissionError;

/// Identifies a deployed collaborative group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CollabGroupId(pub u64);

/// A deployed collaborative-inference group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollabDeployment {
    /// Group id.
    pub id: CollabGroupId,
    /// The SoC slots serving the group, in partition order.
    pub socs: Vec<usize>,
    /// Whether all members share one PCB (lower-latency placement).
    pub same_pcb: bool,
    /// Model served.
    pub model: ModelId,
    /// Pipelined compute/communication.
    pub pipelined: bool,
    /// Predicted single-inference latency.
    pub latency: SimDuration,
    per_soc_demand: Demand,
}

/// Per-SoC fabric reservation for the halo exchange, in Mbps.
fn halo_mbps(model: ModelId) -> f64 {
    // Each inner SoC ships its per-inference halo both ways; reserve for a
    // 10 inferences/s duty.
    let bytes = model.graph().halo_bytes_per_boundary();
    bytes * 8.0 * 10.0 / 1e6
}

/// Extension methods on [`Orchestrator`] for group placement.
pub trait CollabOrchestrator {
    /// Atomically places a tensor-parallel group of `socs` SoCs, preferring
    /// members on one PCB. All-or-nothing: on failure nothing is reserved.
    fn submit_collab(
        &mut self,
        model: ModelId,
        socs: usize,
        pipelined: bool,
    ) -> Result<CollabDeployment, AdmissionError>;

    /// Releases a previously deployed group.
    fn finish_collab(&mut self, deployment: &CollabDeployment) -> Result<(), AdmissionError>;
}

impl CollabOrchestrator for Orchestrator {
    fn submit_collab(
        &mut self,
        model: ModelId,
        socs: usize,
        pipelined: bool,
    ) -> Result<CollabDeployment, AdmissionError> {
        if socs == 0 || socs > self.cluster().soc_count() {
            return Err(AdmissionError::NoCapacity);
        }
        let n = socs as f64;
        // Each member computes its slice plus the duplicated halo work on
        // the CPU (the MNN configuration of §5.3).
        let share = 1.0 / n + PARTITION_OVERHEAD * (n - 1.0) / n;
        let demand = Demand {
            cpu_pu: socc_hw::calib::SOC_CPU_TRANSCODE_PU * share.min(1.0),
            net_mbps: if socs > 1 { halo_mbps(model) } else { 0.0 },
            mem_gb: model.graph().weight_bytes(socc_dl::DType::Fp32) / 1e9 * 1.5 + 0.8,
            ..Default::default()
        };

        // Candidate search: first try to find a PCB with `socs` SoCs that
        // all fit; otherwise take any fitting SoCs.
        let per_pcb = socc_hw::calib::SOCS_PER_PCB;
        let fits: Vec<usize> = self
            .cluster()
            .socs
            .iter()
            .filter(|s| s.fits(&demand))
            .filter(|s| {
                demand.net_mbps == 0.0 || self.cluster().fits_network(s.index, demand.net_mbps)
            })
            .map(|s| s.index)
            .collect();
        let mut chosen: Vec<usize> = Vec::new();
        let mut same_pcb = false;
        if socs <= per_pcb {
            for pcb in 0..self.cluster().pcb_count() {
                let members: Vec<usize> = fits
                    .iter()
                    .copied()
                    .filter(|&i| i / per_pcb == pcb)
                    .collect();
                if members.len() >= socs {
                    chosen = members[..socs].to_vec();
                    same_pcb = true;
                    break;
                }
            }
        }
        if chosen.is_empty() {
            if fits.len() < socs {
                return Err(AdmissionError::NoCapacity);
            }
            chosen = fits[..socs].to_vec();
        }

        // Reserve every member. The candidates were filtered against the
        // same demand above and nothing ran in between, so placement cannot
        // fail — `place_pinned` would panic if the invariant broke.
        for &soc in &chosen {
            self.place_pinned(soc, &demand);
        }

        let report = tensor_parallel(model, CollabConfig { socs, pipelined });
        Ok(CollabDeployment {
            id: CollabGroupId(chosen.iter().map(|&s| s as u64 + 1).product()),
            socs: chosen,
            same_pcb,
            model,
            pipelined,
            latency: report.total,
            per_soc_demand: demand,
        })
    }

    fn finish_collab(&mut self, deployment: &CollabDeployment) -> Result<(), AdmissionError> {
        for &soc in &deployment.socs {
            self.release_pinned(soc, &deployment.per_soc_demand);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::OrchestratorConfig;
    use crate::workload::WorkloadSpec;

    fn orch() -> Orchestrator {
        Orchestrator::new(OrchestratorConfig::default())
    }

    #[test]
    fn group_lands_on_one_pcb_when_possible() {
        let mut o = orch();
        let d = o.submit_collab(ModelId::ResNet50, 5, false).unwrap();
        assert_eq!(d.socs.len(), 5);
        assert!(d.same_pcb, "5 SoCs fit one PCB");
        let pcb = d.socs[0] / 5;
        assert!(d.socs.iter().all(|&s| s / 5 == pcb));
        // Latency matches the §5.3 model.
        assert!(
            (d.latency.as_millis_f64() - 57.1).abs() < 1.5,
            "{}",
            d.latency
        );
    }

    #[test]
    fn group_reserves_cpu_on_every_member() {
        let mut o = orch();
        let d = o.submit_collab(ModelId::ResNet50, 4, true).unwrap();
        for &soc in &d.socs {
            assert!(
                o.cluster().socs[soc].used().cpu_pu > 1000.0,
                "member {soc} loaded"
            );
        }
        o.finish_collab(&d).unwrap();
        for &soc in &d.socs {
            assert!(o.cluster().socs[soc].is_idle(), "member {soc} released");
        }
    }

    #[test]
    fn group_spills_across_pcbs_when_one_is_busy() {
        let mut o = orch();
        // Occupy one SoC on each of the first 11 PCBs with a big stream mix
        // so no PCB has 5 completely free SoCs... simpler: occupy SoC 0..4
        // heavily so PCB 0 can't host; the group should land on PCB 1.
        let v6 = socc_video::vbench::by_id("V6").unwrap();
        for _ in 0..5 {
            o.submit(WorkloadSpec::LiveStreamCpu { video: v6.clone() })
                .unwrap();
        }
        let d = o.submit_collab(ModelId::ResNet50, 5, false).unwrap();
        assert!(d.same_pcb);
        assert!(
            d.socs.iter().all(|&s| s >= 5),
            "PCB 0 is full: {:?}",
            d.socs
        );
    }

    #[test]
    fn oversized_group_rejected() {
        let mut o = orch();
        assert_eq!(
            o.submit_collab(ModelId::ResNet50, 61, false).unwrap_err(),
            AdmissionError::NoCapacity
        );
        assert_eq!(
            o.submit_collab(ModelId::ResNet50, 0, false).unwrap_err(),
            AdmissionError::NoCapacity
        );
    }

    #[test]
    fn single_soc_group_is_just_one_soc() {
        let mut o = orch();
        let d = o.submit_collab(ModelId::ResNet50, 1, false).unwrap();
        assert_eq!(d.socs.len(), 1);
        assert!((d.latency.as_millis_f64() - 80.0).abs() < 1e-6);
    }

    #[test]
    fn pipelined_groups_are_faster() {
        let mut o = orch();
        let plain = o.submit_collab(ModelId::ResNet50, 5, false).unwrap();
        o.finish_collab(&plain).unwrap();
        let piped = o.submit_collab(ModelId::ResNet50, 5, true).unwrap();
        assert!(piped.latency < plain.latency);
    }

    #[test]
    fn full_cluster_rejects_groups_atomically() {
        let mut o = orch();
        let v6 = socc_video::vbench::by_id("V6").unwrap();
        // Fill every SoC's CPU.
        loop {
            if o.submit(WorkloadSpec::LiveStreamCpu { video: v6.clone() })
                .is_err()
            {
                break;
            }
        }
        let before: Vec<crate::soc::Demand> = o.cluster().socs.iter().map(|s| s.used()).collect();
        let err = o.submit_collab(ModelId::ResNet50, 3, false).unwrap_err();
        assert_eq!(err, AdmissionError::NoCapacity);
        // Nothing was partially reserved: usage identical to before.
        for (soc, prev) in o.cluster().socs.iter().zip(&before) {
            assert_eq!(&soc.used(), prev, "no stray reservations on {}", soc.index);
        }
    }
}
