//! Fleet capacity planning: size a SoC-Cluster fleet and a GPU-server
//! fleet for the same workload mix, and compare monthly cost.
//!
//! This is the purchasing decision §6 informs: given expected live
//! ladders, archive backlog and DL serving load, how many of each server
//! does a site need, and which fleet is cheaper?

use serde::{Deserialize, Serialize};
use socc_dl::{DType, Engine, ModelId};
use socc_tco::sensitivity::CostAssumptions;
use socc_tco::Platform;
use socc_video::abr::{price_ladder, Ladder};
use socc_video::{TranscodeUnit, VideoMeta};

/// A site's expected steady workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Concurrent live ABR ladders of this source class.
    pub live_ladders: usize,
    /// The representative live source.
    pub live_source: VideoMeta,
    /// Archive backlog in frames per day (same source class).
    pub archive_frames_per_day: f64,
    /// Sustained DL serving load in samples/s.
    pub dl_fps: f64,
    /// DL model served.
    pub dl_model: ModelId,
    /// DL precision.
    pub dl_dtype: DType,
}

/// One fleet option's sizing and cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetPlan {
    /// Servers needed.
    pub servers: usize,
    /// Monthly TCO of the fleet in dollars.
    pub monthly_tco: f64,
    /// Rack units consumed.
    pub rack_units: usize,
    /// Fraction of the fleet consumed by the live workload.
    pub live_share: f64,
}

/// Errors from planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The DL combination is unsupported on this fleet's engines.
    UnsupportedDl,
    /// The live source cannot be transcoded on this fleet.
    UnsupportedVideo,
}

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlanError::UnsupportedDl => write!(f, "DL model/precision unsupported on fleet"),
            PlanError::UnsupportedVideo => write!(f, "video unsupported on fleet"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Sizes a SoC-Cluster fleet: ladders on hardware codecs, archive on SoC
/// CPUs, DL on the best SoC engine for the precision.
pub fn plan_cluster_fleet(
    mix: &WorkloadMix,
    costs: &CostAssumptions,
) -> Result<FleetPlan, PlanError> {
    let ladder = Ladder::standard(&mix.live_source);
    let cost = price_ladder(&mix.live_source, &ladder);
    if cost.ladders_per_soc_hw == 0 {
        return Err(PlanError::UnsupportedVideo);
    }
    let live_socs = mix.live_ladders.div_ceil(cost.ladders_per_soc_hw);
    let archive_fps = TranscodeUnit::SocCpu
        .archive_fps(&mix.live_source)
        .ok_or(PlanError::UnsupportedVideo)?;
    let archive_socs = (mix.archive_frames_per_day / 86_400.0 / archive_fps).ceil() as usize;
    let engine = match mix.dl_dtype {
        DType::Int8 => Engine::QnnDsp,
        _ => Engine::TfLiteGpu,
    };
    let dl_unit_fps = engine
        .max_throughput(mix.dl_model, mix.dl_dtype)
        .or_else(|| Engine::TfLiteCpu.max_throughput(mix.dl_model, mix.dl_dtype))
        .ok_or(PlanError::UnsupportedDl)?;
    let dl_socs = (mix.dl_fps / dl_unit_fps).ceil() as usize;
    let total_socs = live_socs + archive_socs + dl_socs;
    let servers = total_socs
        .div_ceil(socc_hw::calib::CLUSTER_SOC_COUNT)
        .max(1);
    Ok(FleetPlan {
        servers,
        monthly_tco: servers as f64 * costs.monthly_tco(Platform::SocCluster),
        rack_units: servers * 2,
        live_share: live_socs as f64 / total_socs.max(1) as f64,
    })
}

/// Sizes a Xeon + 8×A40 fleet: ladders and archive on NVENC, DL on
/// TensorRT at batch 64.
pub fn plan_gpu_fleet(mix: &WorkloadMix, costs: &CostAssumptions) -> Result<FleetPlan, PlanError> {
    let ladder = Ladder::standard(&mix.live_source);
    let nvenc = socc_hw::codec::HwCodecModel::nvenc_a40();
    let per_ladder_mb_s: f64 = ladder
        .jobs(&mix.live_source)
        .iter()
        .map(VideoMeta::nvenc_cost_mb_s)
        .sum();
    let ladders_per_gpu = (nvenc.max_sessions / ladder.renditions.len())
        .min((nvenc.throughput_mb_per_s / per_ladder_mb_s).floor() as usize);
    if ladders_per_gpu == 0 {
        return Err(PlanError::UnsupportedVideo);
    }
    let live_gpus = mix.live_ladders.div_ceil(ladders_per_gpu);
    let archive_fps = TranscodeUnit::A40Nvenc
        .archive_fps(&mix.live_source)
        .ok_or(PlanError::UnsupportedVideo)?;
    let archive_gpus = (mix.archive_frames_per_day / 86_400.0 / archive_fps).ceil() as usize;
    let dl_unit_fps = Engine::TensorRtA40
        .max_throughput(mix.dl_model, mix.dl_dtype)
        .ok_or(PlanError::UnsupportedDl)?;
    let dl_gpus = (mix.dl_fps / dl_unit_fps).ceil() as usize;
    let total_gpus = live_gpus + archive_gpus + dl_gpus;
    let servers = total_gpus.div_ceil(8).max(1);
    Ok(FleetPlan {
        servers,
        monthly_tco: servers as f64 * costs.monthly_tco(Platform::EdgeWithGpu),
        rack_units: servers * 4,
        live_share: live_gpus as f64 / total_gpus.max(1) as f64,
    })
}

/// Plans both fleets and returns `(cluster, gpu)`.
pub fn compare_fleets(
    mix: &WorkloadMix,
    costs: &CostAssumptions,
) -> Result<(FleetPlan, FleetPlan), PlanError> {
    Ok((plan_cluster_fleet(mix, costs)?, plan_gpu_fleet(mix, costs)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(live: usize, archive: f64, dl: f64) -> WorkloadMix {
        WorkloadMix {
            live_ladders: live,
            live_source: socc_video::vbench::by_id("V5").unwrap(),
            archive_frames_per_day: archive,
            dl_fps: dl,
            dl_model: ModelId::ResNet50,
            dl_dtype: DType::Int8,
        }
    }

    #[test]
    fn live_heavy_mix_favors_the_cluster_per_stream() {
        // Pure live: the cluster's $/ladder is lower.
        let costs = CostAssumptions::default();
        let (cluster, gpu) = compare_fleets(&mix(2000, 0.0, 0.0), &costs).unwrap();
        let cluster_per_ladder = cluster.monthly_tco / 2000.0;
        let gpu_per_ladder = gpu.monthly_tco / 2000.0;
        assert!(
            cluster_per_ladder < gpu_per_ladder,
            "cluster {cluster_per_ladder} vs gpu {gpu_per_ladder}"
        );
    }

    #[test]
    fn archive_heavy_mix_favors_the_gpus() {
        let costs = CostAssumptions::default();
        let (cluster, gpu) = compare_fleets(&mix(0, 200.0e6, 0.0), &costs).unwrap();
        assert!(
            gpu.monthly_tco < cluster.monthly_tco,
            "{gpu:?} vs {cluster:?}"
        );
    }

    #[test]
    fn dl_heavy_mix_favors_the_gpus() {
        let costs = CostAssumptions::default();
        let (cluster, gpu) = compare_fleets(&mix(0, 0.0, 50_000.0), &costs).unwrap();
        assert!(gpu.monthly_tco < cluster.monthly_tco);
    }

    #[test]
    fn plans_scale_linearly_with_demand() {
        let costs = CostAssumptions::default();
        let small = plan_cluster_fleet(&mix(500, 0.0, 0.0), &costs).unwrap();
        let big = plan_cluster_fleet(&mix(5000, 0.0, 0.0), &costs).unwrap();
        let ratio = big.servers as f64 / small.servers as f64;
        assert!(
            (6.0..=12.0).contains(&ratio),
            "ratio {ratio} (ceil rounding)"
        );
    }

    #[test]
    fn empty_mix_still_needs_one_server() {
        let costs = CostAssumptions::default();
        let (cluster, gpu) = compare_fleets(&mix(0, 0.0, 0.0), &costs).unwrap();
        assert_eq!(cluster.servers, 1);
        assert_eq!(gpu.servers, 1);
    }

    #[test]
    fn live_share_reflects_the_mix() {
        let costs = CostAssumptions::default();
        let live_only = plan_cluster_fleet(&mix(1000, 0.0, 0.0), &costs).unwrap();
        assert!((live_only.live_share - 1.0).abs() < 1e-9);
        let balanced = plan_cluster_fleet(&mix(500, 20.0e6, 2000.0), &costs).unwrap();
        assert!(balanced.live_share < 0.9);
    }

    #[test]
    fn rack_density_favors_the_cluster() {
        // Same live demand: the cluster fleet fits in fewer rack units.
        let costs = CostAssumptions::default();
        let (cluster, gpu) = compare_fleets(&mix(2000, 0.0, 0.0), &costs).unwrap();
        assert!(cluster.rack_units <= gpu.rack_units * 2);
    }
}
