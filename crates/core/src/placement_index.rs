//! Capacity-indexed placement: O(log n) scheduling decisions that are
//! byte-identical to the linear scans they replace.
//!
//! The orchestrator's placement strategies ([`crate::scheduler`]) scan the
//! whole fleet per decision. At 60 SoCs that is tolerable; at the
//! "massive" scale the paper targets (§8) — and in churn-heavy sweeps
//! where every submit/finish/fault re-runs placement — the linear scan
//! dominates. [`PlacementIndex`] is a segment tree over SoC slots whose
//! nodes summarize per-resource *headroom* (capacity − used, elementwise
//! max over the subtree) plus the minimum CPU utilization, maintained
//! incrementally in O(log n) per mutation.
//!
//! ## Invariants (see DESIGN.md)
//!
//! 1. **Summaries are pruning bounds, never decisions.** A subtree is
//!    skipped only when *no* SoC inside could possibly fit (with a slack
//!    wider than [`SocUnit::fits`]'s epsilon, so float re-association can
//!    never prune a fitting SoC). The final accept always calls
//!    `socs[i].fits(demand)` on the leaf — the exact same predicate, on
//!    the exact same floats, as the linear scan. Decisions are therefore
//!    byte-identical, just reached faster.
//! 2. **The index mirrors `socs` after every mutation.** Every
//!    place/release/decommission/restore on a `SocUnit` must be followed
//!    by [`PlacementIndex::update`] for that slot before the next
//!    placement query. The orchestrator owns this discipline; the
//!    `debug_assert`s in `scheduler.rs` cross-check every indexed decision
//!    against the linear scan in debug builds.
//! 3. **Utilization bounds prune ties conservatively.** `Spread` keeps
//!    the *first* index among equal utilizations, so a right subtree is
//!    only skipped when its minimum utilization is `>=` the best found so
//!    far — equal can't win, smaller might.

use std::ops::Range;

use crate::soc::{Demand, SocUnit};

/// Pruning slack added to headroom comparisons. [`SocUnit::fits`] accepts
/// with a `1e-9` epsilon on `used + demand <= cap`; re-associating that to
/// `demand <= cap - used` can shift the boundary by a few ULPs of the
/// operands (≤ ~1e-10 at this domain's magnitudes), so a 1e-6 slack can
/// never prune a SoC the exact predicate would accept — it only lets a few
/// borderline subtrees through to the exact leaf check.
const PRUNE_SLACK: f64 = 1e-6;

/// Per-subtree summary: elementwise **max** headroom across healthy SoCs
/// (an upper bound on what any single SoC inside can absorb) and the
/// **min** CPU utilization (a lower bound for `Spread`'s best-first
/// search).
#[derive(Debug, Clone, Copy)]
struct Summary {
    cpu_pu: f64,
    codec_mb_s: f64,
    codec_sessions: usize,
    gpu_frac: f64,
    dsp_frac: f64,
    mem_gb: f64,
    net_mbps: f64,
    min_cpu_util: f64,
    any_healthy: bool,
}

impl Summary {
    /// The identity for [`Summary::merge`]: an empty/unhealthy range.
    const EMPTY: Self = Self {
        cpu_pu: f64::NEG_INFINITY,
        codec_mb_s: f64::NEG_INFINITY,
        codec_sessions: 0,
        gpu_frac: f64::NEG_INFINITY,
        dsp_frac: f64::NEG_INFINITY,
        mem_gb: f64::NEG_INFINITY,
        net_mbps: f64::NEG_INFINITY,
        min_cpu_util: f64::INFINITY,
        any_healthy: false,
    };

    fn leaf(soc: &SocUnit) -> Self {
        if !soc.healthy {
            return Self::EMPTY;
        }
        let used = soc.used();
        Self {
            cpu_pu: soc.spec.cpu.transcode_capacity() - used.cpu_pu,
            codec_mb_s: soc.spec.codec.throughput_mb_per_s - used.codec_mb_s,
            codec_sessions: soc
                .spec
                .codec
                .max_sessions
                .saturating_sub(used.codec_sessions),
            gpu_frac: soc.gpu_capacity_frac() - used.gpu_frac,
            dsp_frac: 1.0 - used.dsp_frac,
            mem_gb: soc.spec.memory.capacity_gb - used.mem_gb,
            net_mbps: soc.spec.ethernet_bps / 1e6 - used.net_mbps,
            min_cpu_util: soc.cpu_utilization().get(),
            any_healthy: true,
        }
    }

    /// Merges two child summaries (elementwise max headroom, min util).
    /// `f64::max`/`min` pick one operand verbatim — no arithmetic — so
    /// bounds never accumulate rounding error up the tree.
    fn merge(a: &Self, b: &Self) -> Self {
        Self {
            cpu_pu: a.cpu_pu.max(b.cpu_pu),
            codec_mb_s: a.codec_mb_s.max(b.codec_mb_s),
            codec_sessions: a.codec_sessions.max(b.codec_sessions),
            gpu_frac: a.gpu_frac.max(b.gpu_frac),
            dsp_frac: a.dsp_frac.max(b.dsp_frac),
            mem_gb: a.mem_gb.max(b.mem_gb),
            net_mbps: a.net_mbps.max(b.net_mbps),
            min_cpu_util: a.min_cpu_util.min(b.min_cpu_util),
            any_healthy: a.any_healthy || b.any_healthy,
        }
    }

    /// Could *some* SoC in this range fit `demand`? `false` is a proof of
    /// no-fit; `true` only licenses descending.
    fn may_fit(&self, d: &Demand) -> bool {
        self.any_healthy
            && d.cpu_pu <= self.cpu_pu + PRUNE_SLACK
            && d.codec_mb_s <= self.codec_mb_s + PRUNE_SLACK
            && d.codec_sessions <= self.codec_sessions
            && d.gpu_frac <= self.gpu_frac + PRUNE_SLACK
            && d.dsp_frac <= self.dsp_frac + PRUNE_SLACK
            && d.mem_gb <= self.mem_gb + PRUNE_SLACK
            && d.net_mbps <= self.net_mbps + PRUNE_SLACK
    }
}

/// A segment tree of per-resource headroom over the fleet's SoC slots.
///
/// Queries answer the three placement shapes the built-in schedulers need
/// — first fit, first fit from a cursor (wrap-around), and least-loaded
/// fit — each in O(log n) descent when the answer exists, with decisions
/// byte-identical to the corresponding linear scan.
#[derive(Debug, Clone)]
pub struct PlacementIndex {
    /// Number of real slots (leaves beyond `len` are [`Summary::EMPTY`]).
    len: usize,
    /// Leaf capacity: `len` rounded up to a power of two (min 1).
    base: usize,
    /// 1-based heap layout: `nodes[1]` is the root, leaf `i` lives at
    /// `base + i`.
    nodes: Vec<Summary>,
}

impl PlacementIndex {
    /// Builds the index for the current state of `socs` in O(n).
    pub fn new(socs: &[SocUnit]) -> Self {
        let len = socs.len();
        let base = len.next_power_of_two().max(1);
        let mut nodes = vec![Summary::EMPTY; 2 * base];
        for (i, soc) in socs.iter().enumerate() {
            nodes[base + i] = Summary::leaf(soc);
        }
        for i in (1..base).rev() {
            nodes[i] = Summary::merge(&nodes[2 * i], &nodes[2 * i + 1]);
        }
        Self { len, base, nodes }
    }

    /// Number of indexed slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no slots are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Re-summarizes slot `i` from its SoC and refreshes the O(log n)
    /// ancestor path. Must be called after *every* resource or health
    /// mutation of `socs[i]` (invariant 2 above).
    pub fn update(&mut self, i: usize, soc: &SocUnit) {
        assert!(i < self.len, "slot {i} out of range ({} slots)", self.len);
        let mut node = self.base + i;
        self.nodes[node] = Summary::leaf(soc);
        node /= 2;
        while node >= 1 {
            self.nodes[node] = Summary::merge(&self.nodes[2 * node], &self.nodes[2 * node + 1]);
            node /= 2;
        }
    }

    /// Lowest-index SoC that fits `demand` (the `BinPack` decision), or
    /// `None` if nothing does.
    pub fn first_fit(&self, demand: &Demand, socs: &[SocUnit]) -> Option<usize> {
        self.first_fit_in(1, 0, self.base, demand, socs)
    }

    /// First SoC at index `>= start` that fits, wrapping to the front (the
    /// `RoundRobin` decision for a cursor at `start`).
    pub fn first_fit_from(&self, start: usize, demand: &Demand, socs: &[SocUnit]) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let start = start % self.len;
        self.first_fit_at_or_after(1, 0, self.base, start, demand, socs)
            .or_else(|| self.first_fit_in(1, 0, self.base, demand, socs))
    }

    /// Lowest-index SoC *outside every `avoid` range* that fits `demand`
    /// (the anti-affinity decision: skip a failed board's slots, skip
    /// partitioned port groups), or `None` if nothing outside fits.
    ///
    /// Byte-identical to a linear scan that skips the avoided slots:
    /// subtrees fully inside one avoided range are pruned, membership is
    /// re-checked exactly at the leaf, and the final accept is the same
    /// `fits` predicate as everywhere else.
    pub fn first_fit_outside(
        &self,
        demand: &Demand,
        socs: &[SocUnit],
        avoid: &[Range<usize>],
    ) -> Option<usize> {
        self.first_fit_outside_in(1, 0, self.base, demand, socs, avoid)
    }

    fn first_fit_outside_in(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        demand: &Demand,
        socs: &[SocUnit],
        avoid: &[Range<usize>],
    ) -> Option<usize> {
        if lo >= self.len || !self.nodes[node].may_fit(demand) {
            return None;
        }
        // Prune a subtree a single avoid range covers whole; unions that
        // only jointly cover it fall through to the exact leaf check.
        let end = hi.min(self.len);
        if avoid.iter().any(|r| r.start <= lo && end <= r.end) {
            return None;
        }
        if hi - lo == 1 {
            let avoided = avoid.iter().any(|r| r.contains(&lo));
            return (!avoided && socs[lo].fits(demand)).then_some(lo);
        }
        let mid = lo + (hi - lo) / 2;
        self.first_fit_outside_in(2 * node, lo, mid, demand, socs, avoid)
            .or_else(|| self.first_fit_outside_in(2 * node + 1, mid, hi, demand, socs, avoid))
    }

    /// Fitting SoC with the minimum CPU utilization, first index winning
    /// ties (the `Spread` decision), or `None` if nothing fits.
    pub fn least_loaded_fit(&self, demand: &Demand, socs: &[SocUnit]) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        self.least_loaded_in(1, 0, self.base, demand, socs, &mut best);
        best.map(|(_, i)| i)
    }

    fn first_fit_in(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        demand: &Demand,
        socs: &[SocUnit],
    ) -> Option<usize> {
        if lo >= self.len || !self.nodes[node].may_fit(demand) {
            return None;
        }
        if hi - lo == 1 {
            // Exact check at the leaf: identical predicate to the scan.
            return socs[lo].fits(demand).then_some(lo);
        }
        let mid = lo + (hi - lo) / 2;
        self.first_fit_in(2 * node, lo, mid, demand, socs)
            .or_else(|| self.first_fit_in(2 * node + 1, mid, hi, demand, socs))
    }

    fn first_fit_at_or_after(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        start: usize,
        demand: &Demand,
        socs: &[SocUnit],
    ) -> Option<usize> {
        if lo >= self.len || hi <= start || !self.nodes[node].may_fit(demand) {
            return None;
        }
        if hi - lo == 1 {
            return socs[lo].fits(demand).then_some(lo);
        }
        let mid = lo + (hi - lo) / 2;
        self.first_fit_at_or_after(2 * node, lo, mid, start, demand, socs)
            .or_else(|| self.first_fit_at_or_after(2 * node + 1, mid, hi, start, demand, socs))
    }

    fn least_loaded_in(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        demand: &Demand,
        socs: &[SocUnit],
        best: &mut Option<(f64, usize)>,
    ) {
        if lo >= self.len || !self.nodes[node].may_fit(demand) {
            return;
        }
        // Ties keep the earlier index (we search left to right), so a
        // subtree whose *lower bound* equals the incumbent cannot win.
        if let Some((best_util, _)) = best {
            if self.nodes[node].min_cpu_util >= *best_util {
                return;
            }
        }
        if hi - lo == 1 {
            if socs[lo].fits(demand) {
                let util = socs[lo].cpu_utilization().get();
                // Strict `<`: the first minimal index must win, exactly as
                // `Iterator::min_by` keeps the first of equal elements.
                if best.is_none() || util < best.expect("checked").0 {
                    *best = Some((util, lo));
                }
            }
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.least_loaded_in(2 * node, lo, mid, demand, socs, best);
        self.least_loaded_in(2 * node + 1, mid, hi, demand, socs, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virt::DeploymentMode;

    fn fleet(n: usize) -> Vec<SocUnit> {
        (0..n)
            .map(|i| SocUnit::new(i, DeploymentMode::Physical))
            .collect()
    }

    fn d(pu: f64) -> Demand {
        Demand {
            cpu_pu: pu,
            ..Default::default()
        }
    }

    /// Reference decisions: the linear scans the index must reproduce.
    fn linear_first_fit(demand: &Demand, socs: &[SocUnit]) -> Option<usize> {
        socs.iter().position(|s| s.fits(demand))
    }

    fn linear_least_loaded(demand: &Demand, socs: &[SocUnit]) -> Option<usize> {
        socs.iter()
            .enumerate()
            .filter(|(_, s)| s.fits(demand))
            .min_by(|(_, a), (_, b)| {
                a.cpu_utilization()
                    .get()
                    .partial_cmp(&b.cpu_utilization().get())
                    .expect("utilization is never NaN")
            })
            .map(|(i, _)| i)
    }

    #[test]
    fn first_fit_matches_scan_as_fleet_fills() {
        let mut socs = fleet(7);
        let mut idx = PlacementIndex::new(&socs);
        let demand = d(1000.0);
        for _ in 0..3 * 7 {
            let got = idx.first_fit(&demand, &socs);
            assert_eq!(got, linear_first_fit(&demand, &socs));
            let Some(i) = got else { break };
            socs[i].place(&demand);
            idx.update(i, &socs[i]);
        }
        // Fleet is full for this demand; both agree on None.
        assert_eq!(idx.first_fit(&d(1000.0), &socs), None);
        assert_eq!(linear_first_fit(&d(1000.0), &socs), None);
    }

    #[test]
    fn least_loaded_matches_scan_with_ties() {
        let mut socs = fleet(5);
        // socs 2 and 4 share the minimum load: index 2 must win.
        socs[0].place(&d(2000.0));
        socs[1].place(&d(500.0));
        socs[3].place(&d(500.0));
        let idx = PlacementIndex::new(&socs);
        assert_eq!(idx.least_loaded_fit(&d(100.0), &socs), Some(2));
        assert_eq!(
            idx.least_loaded_fit(&d(100.0), &socs),
            linear_least_loaded(&d(100.0), &socs)
        );
    }

    #[test]
    fn cursor_queries_wrap() {
        let mut socs = fleet(4);
        let mut idx = PlacementIndex::new(&socs);
        socs[2].place(&d(3235.0)); // full
        idx.update(2, &socs[2]);
        assert_eq!(idx.first_fit_from(2, &d(100.0), &socs), Some(3));
        assert_eq!(idx.first_fit_from(3, &d(100.0), &socs), Some(3));
        socs[3].place(&d(3235.0));
        idx.update(3, &socs[3]);
        assert_eq!(idx.first_fit_from(2, &d(100.0), &socs), Some(0), "wraps");
    }

    #[test]
    fn unhealthy_slots_are_invisible() {
        let mut socs = fleet(3);
        socs[0].decommission();
        let mut idx = PlacementIndex::new(&socs);
        assert_eq!(idx.first_fit(&d(1.0), &socs), Some(1));
        socs[1].decommission();
        idx.update(1, &socs[1]);
        assert_eq!(idx.first_fit(&d(1.0), &socs), Some(2));
        socs[0].restore();
        idx.update(0, &socs[0]);
        assert_eq!(idx.first_fit(&d(1.0), &socs), Some(0));
    }

    #[test]
    fn empty_and_single_slot_fleets() {
        let socs = fleet(0);
        let idx = PlacementIndex::new(&socs);
        assert!(idx.is_empty());
        assert_eq!(idx.first_fit(&d(1.0), &socs), None);
        assert_eq!(idx.first_fit_from(0, &d(1.0), &socs), None);
        assert_eq!(idx.least_loaded_fit(&d(1.0), &socs), None);

        let socs = fleet(1);
        let idx = PlacementIndex::new(&socs);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.first_fit(&d(1.0), &socs), Some(0));
    }

    #[test]
    fn multi_resource_demands_prune_correctly() {
        let mut socs = fleet(6);
        // Exhaust GPU on the first five SoCs; a GPU demand must land on 5
        // even though CPU headroom exists everywhere.
        let gpu = Demand {
            gpu_frac: 1.0,
            ..Default::default()
        };
        let mut idx = PlacementIndex::new(&socs);
        for (i, soc) in socs.iter_mut().enumerate().take(5) {
            soc.place(&gpu);
            idx.update(i, soc);
        }
        let half_gpu = Demand {
            gpu_frac: 0.5,
            cpu_pu: 10.0,
            ..Default::default()
        };
        assert_eq!(idx.first_fit(&half_gpu, &socs), Some(5));
        assert_eq!(
            idx.first_fit(&half_gpu, &socs),
            linear_first_fit(&half_gpu, &socs)
        );
    }

    fn linear_first_fit_outside(
        demand: &Demand,
        socs: &[SocUnit],
        avoid: &[Range<usize>],
    ) -> Option<usize> {
        socs.iter()
            .enumerate()
            .position(|(i, s)| !avoid.iter().any(|r| r.contains(&i)) && s.fits(demand))
    }

    // `&[Range]` is this API's avoid-set type; one board is one range.
    #[allow(clippy::single_range_in_vec_init)]
    #[test]
    fn outside_query_skips_avoided_board_ranges() {
        let mut socs = fleet(20);
        let mut idx = PlacementIndex::new(&socs);
        let demand = d(100.0);
        // Avoid the first board (slots 0..5): the query must land on 5.
        let avoid = [0..5usize];
        assert_eq!(idx.first_fit_outside(&demand, &socs, &avoid), Some(5));
        assert_eq!(
            idx.first_fit_outside(&demand, &socs, &avoid),
            linear_first_fit_outside(&demand, &socs, &avoid)
        );
        // Fill boards 1 and 2; next fit outside the avoided board is 15.
        for (i, soc) in socs.iter_mut().enumerate().take(15).skip(5) {
            soc.place(&d(3235.0));
            idx.update(i, soc);
        }
        assert_eq!(idx.first_fit_outside(&demand, &socs, &avoid), Some(15));
        // Avoiding everything that still fits yields None even though the
        // plain query succeeds.
        let avoid_all = [0..5usize, 15..20];
        assert_eq!(idx.first_fit_outside(&demand, &socs, &avoid_all), None);
        assert_eq!(idx.first_fit(&demand, &socs), Some(0));
    }

    // `&[Range]` is this API's avoid-set type; one board is one range.
    #[allow(clippy::single_range_in_vec_init)]
    #[test]
    fn outside_query_matches_scan_across_range_shapes() {
        let mut socs = fleet(23); // non-power-of-two on purpose
        socs[3].decommission();
        socs[7].place(&d(3235.0));
        socs[12].place(&d(3000.0));
        let idx = PlacementIndex::new(&socs);
        let demand = d(500.0);
        let shapes: [&[Range<usize>]; 6] = [
            &[],              // no avoidance: must equal first_fit
            &[0..5],          // one board
            &[0..20],         // a whole port group
            &[5..10, 15..20], // disjoint boards
            &[0..10, 10..23], // union covers everything
            &[21..40],        // range past the end
        ];
        for avoid in shapes {
            assert_eq!(
                idx.first_fit_outside(&demand, &socs, avoid),
                linear_first_fit_outside(&demand, &socs, avoid),
                "avoid={avoid:?}"
            );
        }
        assert_eq!(
            idx.first_fit_outside(&demand, &socs, &[]),
            idx.first_fit(&demand, &socs)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        let socs = fleet(2);
        let mut idx = PlacementIndex::new(&socs);
        idx.update(2, &socs[0]);
    }
}
