//! The cluster orchestrator: admission, placement, power-state management,
//! failover — the "advanced software that can orchestrate multiple SoCs"
//! the paper calls for (§5.3, §8).

use std::collections::HashMap;
use std::ops::Range;

use socc_hw::ledger::EnergyLedger;
use socc_hw::power::PowerState;
use socc_sim::series::{EnergyMeter, TimeSeries};
use socc_sim::span::{EventKind, EventLog, Scope};
use socc_sim::time::{SimDuration, SimTime};
use socc_sim::units::{Energy, Power};

use crate::cluster::{ClusterConfig, SocCluster};
use crate::placement_index::PlacementIndex;
use crate::priority::{priority_of, Priority};
use crate::scheduler::{BinPack, Scheduler};
use crate::soc::Demand;
use crate::workload::{AdmissionError, SocProcessor, WorkloadId, WorkloadSpec};

/// Orchestrator construction parameters.
pub struct OrchestratorConfig {
    /// Cluster hardware configuration.
    pub cluster: ClusterConfig,
    /// Placement strategy.
    pub scheduler: Box<dyn Scheduler>,
    /// Put an idle SoC to sleep after this long (None = never sleep).
    pub sleep_after: Option<SimDuration>,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            cluster: ClusterConfig::default(),
            scheduler: Box::new(BinPack),
            sleep_after: Some(SimDuration::from_secs(30)),
        }
    }
}

#[derive(Debug, Clone)]
struct Placed {
    spec: WorkloadSpec,
    soc: usize,
    demand: Demand,
    completes: Option<SimTime>,
}

/// Orchestrator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrchestratorStats {
    /// Workloads admitted.
    pub admitted: u64,
    /// Workloads rejected at admission.
    pub rejected: u64,
    /// Workloads that ran to completion (archive) or were finished.
    pub completed: u64,
    /// SoC wake-ups performed to place work.
    pub wakeups: u64,
    /// Workload migrations after faults.
    pub migrations: u64,
    /// Workloads dropped because no healthy SoC could absorb them.
    pub dropped: u64,
}

/// The cluster orchestrator.
pub struct Orchestrator {
    cluster: SocCluster,
    scheduler: Box<dyn Scheduler>,
    /// Headroom index over `cluster.socs`, kept in lock-step with every
    /// place/release/decommission/restore so schedulers decide in
    /// O(log n) (see `placement_index` invariant 2).
    placement: PlacementIndex,
    sleep_after: Option<SimDuration>,
    now: SimTime,
    meter: EnergyMeter,
    power_series: TimeSeries,
    workloads: HashMap<WorkloadId, Placed>,
    idle_since: Vec<Option<SimTime>>,
    next_id: u64,
    stats: OrchestratorStats,
    completions: Vec<WorkloadId>,
    /// Degraded-mode admission floor: while set, submissions strictly
    /// below this priority are rejected with [`AdmissionError::Degraded`]
    /// (PSU brownout tightening; `None` = normal admission).
    admission_floor: Option<Priority>,
    /// Per-component energy ledger with PCB-board and PSU-rail roll-ups;
    /// its conservation identity is re-checked on every clock advance.
    ledger: EnergyLedger,
    /// Typed structured event log (placements, migrations, power
    /// transitions, faults) shared with the recovery engine.
    events: EventLog,
}

/// Retained-event capacity of the orchestrator's ring (oldest events are
/// evicted first; `events().dropped()` counts evictions).
const EVENT_CAPACITY: usize = 8192;

/// Relative tolerance of the per-tick energy-conservation check (the
/// ledger's rail roll-up is incremental, so only float roundoff — not
/// modelling error — may separate component-sum from rail-sum energy).
const CONSERVATION_REL_TOL: f64 = 1e-6;

impl Orchestrator {
    /// Creates an orchestrator over a fresh cluster.
    pub fn new(config: OrchestratorConfig) -> Self {
        let cluster = SocCluster::new(config.cluster);
        let soc_count = cluster.soc_count();
        let initial_power = cluster.total_power();
        let mut power_series = TimeSeries::new();
        power_series.push(SimTime::ZERO, initial_power.as_watts());
        let placement = PlacementIndex::new(&cluster.socs);
        let mut ledger = EnergyLedger::new(
            SimTime::ZERO,
            soc_count,
            socc_hw::calib::SOCS_PER_PCB,
            crate::faults::PSU_RAILS,
        );
        for (i, soc) in cluster.socs.iter().enumerate() {
            ledger.set_soc_power(SimTime::ZERO, i, soc.component_powers());
        }
        ledger.set_chassis_power(SimTime::ZERO, cluster.chassis_power());
        Self {
            cluster,
            scheduler: config.scheduler,
            placement,
            sleep_after: config.sleep_after,
            now: SimTime::ZERO,
            meter: EnergyMeter::new(SimTime::ZERO, initial_power),
            power_series,
            workloads: HashMap::new(),
            idle_since: vec![Some(SimTime::ZERO); soc_count],
            next_id: 0,
            stats: OrchestratorStats::default(),
            completions: Vec::new(),
            admission_floor: None,
            ledger,
            events: EventLog::new(EVENT_CAPACITY),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable view of the cluster.
    pub fn cluster(&self) -> &SocCluster {
        &self.cluster
    }

    /// Mutable cluster access for in-crate recovery machinery (BMC probes
    /// need `&mut` because protocol frames run through the command queue).
    pub(crate) fn cluster_mut(&mut self) -> &mut SocCluster {
        &mut self.cluster
    }

    /// Orchestration statistics so far.
    pub fn stats(&self) -> OrchestratorStats {
        self.stats
    }

    /// Total server power right now.
    pub fn power(&self) -> Power {
        self.cluster.total_power()
    }

    /// Energy consumed by the whole server since t=0.
    pub fn energy(&self) -> Energy {
        self.meter.energy_at(self.now)
    }

    /// The recorded total-power time series.
    pub fn power_series(&self) -> &TimeSeries {
        &self.power_series
    }

    /// The per-component energy ledger (CPU/codec/GPU/DSP/memory per SoC,
    /// rolled up to PCB boards and PSU rails).
    pub fn energy_ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Re-checks the ledger's conservation identity at the current clock:
    /// component-sum energy must equal PSU-rail-sum energy within
    /// `rel_tol`. Returns the observed relative error on failure.
    pub fn verify_energy_conservation(&self, rel_tol: f64) -> Result<(), f64> {
        self.ledger.verify_conservation(self.now, rel_tol)
    }

    /// The typed structured event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Mutable event-log access: enable/disable recording, restrict
    /// scopes, clear, or record additional events (the recovery engine
    /// threads its fault/detector/recovery chain through here so one log
    /// carries the whole causal story).
    pub fn events_mut(&mut self) -> &mut EventLog {
        &mut self.events
    }

    /// Number of currently deployed workloads.
    pub fn active_workloads(&self) -> usize {
        self.workloads.len()
    }

    fn record_power(&mut self) {
        let p = self.cluster.total_power();
        self.meter.set_power(self.now, p);
        self.power_series.push(self.now, p.as_watts());
        for i in 0..self.cluster.socs.len() {
            self.ledger
                .set_soc_power(self.now, i, self.cluster.socs[i].component_powers());
        }
        self.ledger
            .set_chassis_power(self.now, self.cluster.chassis_power());
    }

    /// Re-summarizes one SoC in the placement index. Every code path that
    /// mutates a SoC's resources or health must call this before the next
    /// placement decision.
    fn reindex(&mut self, soc: usize) {
        self.placement.update(soc, &self.cluster.socs[soc]);
    }

    /// Translates a spec into a per-SoC resource demand and (for archive
    /// jobs) a completion time offset.
    fn demand_for(
        &self,
        spec: &WorkloadSpec,
    ) -> Result<(Demand, Option<SimDuration>), AdmissionError> {
        match spec {
            WorkloadSpec::LiveStreamCpu { video } => Ok((
                Demand {
                    cpu_pu: video.cpu_cost_pu(),
                    net_mbps: video.stream_traffic().as_mbps(),
                    mem_gb: 0.3,
                    ..Default::default()
                },
                None,
            )),
            WorkloadSpec::LiveStreamHw { video } => {
                let codec = &self.cluster.socs[0].spec.codec;
                Ok((
                    Demand {
                        codec_mb_s: video.hw_cost_mb_s(),
                        codec_sessions: 1,
                        cpu_pu: codec.delegation_cpu_pu_per_session,
                        net_mbps: video.stream_traffic().as_mbps(),
                        mem_gb: 0.3,
                        ..Default::default()
                    },
                    None,
                ))
            }
            WorkloadSpec::ArchiveJob { video, frames } => {
                let fps = socc_video::TranscodeUnit::SocCpu
                    .archive_fps(video)
                    .ok_or(AdmissionError::Unsupported)?;
                if fps <= 0.0 {
                    return Err(AdmissionError::Unsupported);
                }
                let runtime = SimDuration::from_secs_f64(*frames as f64 / fps);
                Ok((
                    Demand {
                        cpu_pu: socc_hw::calib::SOC_CPU_TRANSCODE_PU,
                        mem_gb: 0.5,
                        ..Default::default()
                    },
                    Some(runtime),
                ))
            }
            WorkloadSpec::DlServe {
                processor,
                model,
                dtype,
                offered_fps,
            } => {
                let engine = processor.engine();
                let capacity = engine
                    .max_throughput(*model, *dtype)
                    .ok_or(AdmissionError::Unsupported)?;
                let frac = offered_fps / capacity;
                if frac > 1.0 + 1e-9 {
                    return Err(AdmissionError::NoCapacity);
                }
                let weights_gb = model.graph().weight_bytes(*dtype) / 1e9;
                let mem_gb = weights_gb * 1.5 + 0.8;
                let mut demand = Demand {
                    mem_gb,
                    ..Default::default()
                };
                match processor {
                    SocProcessor::Cpu => {
                        demand.cpu_pu = frac * socc_hw::calib::SOC_CPU_TRANSCODE_PU;
                    }
                    SocProcessor::Gpu => demand.gpu_frac = frac,
                    SocProcessor::Dsp => demand.dsp_frac = frac,
                }
                Ok((demand, None))
            }
            WorkloadSpec::GamingSession { stream_mbps } => Ok((
                Demand {
                    gpu_frac: 0.125,
                    cpu_pu: 300.0,
                    net_mbps: *stream_mbps,
                    mem_gb: 1.2,
                    ..Default::default()
                },
                None,
            )),
        }
    }

    /// Submits a workload; places it on a SoC or rejects it.
    pub fn submit(&mut self, spec: WorkloadSpec) -> Result<WorkloadId, AdmissionError> {
        self.submit_on(spec, None)
    }

    /// Submits a workload like [`Self::submit`] but never places it inside
    /// any of the `avoid` slot ranges — the anti-affinity path recovery
    /// uses to keep a retried workload off its just-failed board and out
    /// of partitioned port groups.
    pub fn submit_avoiding(
        &mut self,
        spec: WorkloadSpec,
        avoid: &[Range<usize>],
    ) -> Result<WorkloadId, AdmissionError> {
        self.submit_on(spec, Some(avoid))
    }

    /// While set, submissions strictly below `floor` are rejected with
    /// [`AdmissionError::Degraded`] (brownout admission tightening).
    pub fn set_admission_floor(&mut self, floor: Option<Priority>) {
        self.admission_floor = floor;
    }

    /// The current degraded-mode admission floor, if any.
    pub fn admission_floor(&self) -> Option<Priority> {
        self.admission_floor
    }

    fn submit_on(
        &mut self,
        spec: WorkloadSpec,
        avoid: Option<&[Range<usize>]>,
    ) -> Result<WorkloadId, AdmissionError> {
        if let Some(floor) = self.admission_floor {
            if priority_of(&spec) < floor {
                self.stats.rejected += 1;
                return Err(AdmissionError::Degraded);
            }
        }
        let (demand, runtime) = self.demand_for(&spec)?;
        let placed_at = match avoid {
            None => self
                .scheduler
                .place_indexed(&demand, &self.cluster.socs, &self.placement),
            Some(avoid) => {
                let got = self
                    .placement
                    .first_fit_outside(&demand, &self.cluster.socs, avoid);
                debug_assert_eq!(
                    got,
                    self.cluster
                        .socs
                        .iter()
                        .enumerate()
                        .position(
                            |(i, s)| !avoid.iter().any(|r| r.contains(&i)) && s.fits(&demand)
                        ),
                    "indexed anti-affinity decision must match the skip-scan"
                );
                got
            }
        };
        let Some(soc) = placed_at else {
            self.stats.rejected += 1;
            return Err(AdmissionError::NoCapacity);
        };
        if demand.net_mbps > 0.0 && !self.cluster.fits_network(soc, demand.net_mbps) {
            self.stats.rejected += 1;
            return Err(AdmissionError::NetworkBound);
        }
        if !self.cluster.socs[soc].state.is_serving() {
            self.stats.wakeups += 1;
            self.cluster.bmc.log(self.now, format!("wake soc {soc}"));
            self.events
                .record(self.now, Scope::Power, EventKind::Wake { soc: soc as u32 });
        }
        self.cluster.socs[soc].place(&demand);
        self.reindex(soc);
        self.idle_since[soc] = None;
        let id = WorkloadId(self.next_id);
        self.next_id += 1;
        self.events.record(
            self.now,
            Scope::Placement,
            EventKind::Placed {
                workload: id.0,
                soc: soc as u32,
            },
        );
        let completes = runtime.map(|d| self.now + d);
        self.workloads.insert(
            id,
            Placed {
                spec,
                soc,
                demand,
                completes,
            },
        );
        self.stats.admitted += 1;
        self.record_power();
        Ok(id)
    }

    /// The SoC a workload currently runs on.
    pub fn placement_of(&self, id: WorkloadId) -> Option<usize> {
        self.workloads.get(&id).map(|p| p.soc)
    }

    /// The spec of a deployed workload.
    pub fn spec_of(&self, id: WorkloadId) -> Option<&WorkloadSpec> {
        self.workloads.get(&id).map(|p| &p.spec)
    }

    /// Ids of all deployed workloads, ascending.
    pub fn workload_ids(&self) -> Vec<WorkloadId> {
        let mut ids: Vec<WorkloadId> = self.workloads.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Explicitly finishes a workload (live streams, DL serving).
    pub fn finish(&mut self, id: WorkloadId) -> Result<(), AdmissionError> {
        let placed = self
            .workloads
            .remove(&id)
            .ok_or(AdmissionError::Unsupported)?;
        self.release(&placed);
        self.stats.completed += 1;
        self.completions.push(id);
        self.events.record(
            self.now,
            Scope::Placement,
            EventKind::Finished {
                workload: id.0,
                soc: placed.soc as u32,
            },
        );
        self.record_power();
        Ok(())
    }

    /// Drains the ids of workloads that completed (finished explicitly or
    /// ran to their archive deadline) since the last call, in completion
    /// order.
    pub fn take_completions(&mut self) -> Vec<WorkloadId> {
        std::mem::take(&mut self.completions)
    }

    fn release(&mut self, placed: &Placed) {
        let soc = &mut self.cluster.socs[placed.soc];
        if soc.healthy {
            soc.release(&placed.demand);
            if soc.is_idle() {
                self.idle_since[placed.soc] = Some(self.now);
            }
            self.reindex(placed.soc);
        }
    }

    /// Places a demand directly on a specific SoC, bypassing the scheduler
    /// (used for pinned group deployments).
    ///
    /// # Panics
    ///
    /// Panics if the demand does not fit — callers must verify first.
    pub(crate) fn place_pinned(&mut self, soc: usize, demand: &Demand) {
        if !self.cluster.socs[soc].state.is_serving() {
            self.stats.wakeups += 1;
        }
        self.cluster.socs[soc].place(demand);
        self.reindex(soc);
        self.idle_since[soc] = None;
        self.stats.admitted += 1;
        self.record_power();
    }

    /// Releases a pinned demand from a specific SoC.
    pub(crate) fn release_pinned(&mut self, soc: usize, demand: &Demand) {
        if self.cluster.socs[soc].healthy {
            self.cluster.socs[soc].release(demand);
            if self.cluster.socs[soc].is_idle() {
                self.idle_since[soc] = Some(self.now);
            }
            self.reindex(soc);
        }
        self.stats.completed += 1;
        self.record_power();
    }

    /// Next internally scheduled event (archive completion or sleep
    /// deadline) at or before `horizon`.
    fn next_event(&self, horizon: SimTime) -> Option<SimTime> {
        let completion = self
            .workloads
            .values()
            .filter_map(|p| p.completes)
            .filter(|&t| t > self.now)
            .min();
        let sleep = self.sleep_after.and_then(|after| {
            self.idle_since
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    self.cluster.socs[*i].healthy && self.cluster.socs[*i].state == PowerState::Idle
                })
                .filter_map(|(_, t)| t.map(|t| t + after))
                .filter(|&t| t > self.now)
                .min()
        });
        [completion, sleep]
            .into_iter()
            .flatten()
            .filter(|&t| t <= horizon)
            .min()
    }

    /// Advances the clock to `t`, processing archive completions and
    /// sleep-state transitions in order.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot advance backwards");
        let start = self.now;
        while let Some(event_time) = self.next_event(t) {
            self.now = event_time;
            // Archive completions due now (id-sorted: the backing map does
            // not iterate deterministically and completion order is
            // observable through `take_completions`).
            let mut due: Vec<WorkloadId> = self
                .workloads
                .iter()
                .filter(|(_, p)| p.completes.is_some_and(|c| c <= event_time))
                .map(|(&id, _)| id)
                .collect();
            due.sort();
            for id in due {
                let placed = self.workloads.remove(&id).expect("due workload exists");
                self.release(&placed);
                self.stats.completed += 1;
                self.completions.push(id);
                self.events.record(
                    self.now,
                    Scope::Placement,
                    EventKind::Finished {
                        workload: id.0,
                        soc: placed.soc as u32,
                    },
                );
            }
            // Sleep transitions due now.
            if let Some(after) = self.sleep_after {
                for i in 0..self.cluster.socs.len() {
                    let soc = &mut self.cluster.socs[i];
                    if soc.healthy
                        && soc.state == PowerState::Idle
                        && self.idle_since[i].is_some_and(|since| since + after <= event_time)
                    {
                        soc.state = PowerState::Sleep;
                        self.cluster.bmc.log(event_time, format!("sleep soc {i}"));
                        self.events.record(
                            event_time,
                            Scope::Power,
                            EventKind::Sleep { soc: i as u32 },
                        );
                    }
                }
            }
            self.record_power();
        }
        self.now = t;
        self.cluster.step_thermal(t.saturating_since(start));
        self.cluster.refresh_bmc();
        // Energy-conservation tick: the per-component ledger and the
        // incrementally maintained PSU-rail roll-up must tell the same
        // story. A bookkeeping bug on either side fails loudly here.
        self.ledger.advance(t);
        if let Err(rel) = self.ledger.verify_conservation(t, CONSERVATION_REL_TOL) {
            panic!("energy ledger conservation violated at {t}: relative error {rel:.3e}");
        }
    }

    /// Kills a SoC (flash/SoC failure, §8) and migrates its workloads to
    /// healthy SoCs; workloads that fit nowhere are dropped.
    pub fn inject_fault(&mut self, soc: usize) {
        if !self.cluster.socs[soc].healthy {
            return;
        }
        self.cluster.socs[soc].decommission();
        self.reindex(soc);
        self.cluster
            .bmc
            .log(self.now, format!("fault: soc {soc} offline"));
        self.events.record(
            self.now,
            Scope::Fault,
            EventKind::SocOff { soc: soc as u32 },
        );
        let victims: Vec<WorkloadId> = self
            .workloads
            .iter()
            .filter(|(_, p)| p.soc == soc)
            .map(|(&id, _)| id)
            .collect();
        for id in victims {
            let mut placed = self.workloads.remove(&id).expect("victim exists");
            match self
                .scheduler
                .place_indexed(&placed.demand, &self.cluster.socs, &self.placement)
            {
                Some(target)
                    if placed.demand.net_mbps == 0.0
                        || self.cluster.fits_network(target, placed.demand.net_mbps) =>
                {
                    if !self.cluster.socs[target].state.is_serving() {
                        self.stats.wakeups += 1;
                    }
                    self.cluster.socs[target].place(&placed.demand);
                    self.reindex(target);
                    self.idle_since[target] = None;
                    placed.soc = target;
                    self.stats.migrations += 1;
                    self.cluster.bmc.log(
                        self.now,
                        format!("migrated workload {} to soc {target}", id.0),
                    );
                    self.events.record(
                        self.now,
                        Scope::Recovery,
                        EventKind::Migrated {
                            workload: id.0,
                            soc: target as u32,
                        },
                    );
                    self.workloads.insert(id, placed);
                }
                _ => {
                    self.stats.dropped += 1;
                    self.cluster
                        .bmc
                        .log(self.now, format!("dropped workload {}", id.0));
                    self.events.record(
                        self.now,
                        Scope::Recovery,
                        EventKind::WorkloadDropped { workload: id.0 },
                    );
                }
            }
        }
        self.record_power();
    }

    /// Takes a SoC out of service *without* migrating its workloads:
    /// decommissions the slot and returns the stranded workloads (id and
    /// spec, id-sorted) so a recovery policy can re-place them on its own
    /// schedule. This is the primitive the fault-tolerance loop builds on —
    /// unlike [`Self::inject_fault`], nothing is silently dropped here.
    pub fn fail_soc(&mut self, soc: usize) -> Vec<(WorkloadId, WorkloadSpec)> {
        if !self.cluster.socs[soc].healthy {
            return Vec::new();
        }
        self.cluster.socs[soc].decommission();
        self.reindex(soc);
        self.idle_since[soc] = None;
        self.cluster
            .bmc
            .log(self.now, format!("fault: soc {soc} out of service"));
        self.events.record(
            self.now,
            Scope::Fault,
            EventKind::SocOff { soc: soc as u32 },
        );
        let mut victims: Vec<WorkloadId> = self
            .workloads
            .iter()
            .filter(|(_, p)| p.soc == soc)
            .map(|(&id, _)| id)
            .collect();
        victims.sort();
        let stranded = victims
            .into_iter()
            .map(|id| {
                let placed = self.workloads.remove(&id).expect("victim exists");
                (id, placed.spec)
            })
            .collect();
        // The meter and ledger must see the slot go dark *now*: without a
        // sample here, energy until the next power-recording operation
        // would be billed at the pre-fault level — a whole-site blackout
        // (every SoC failed, nothing submitted until power returns) would
        // never flatline.
        self.record_power();
        stranded
    }

    /// Returns a previously failed SoC to service (post power-cycle,
    /// cooldown or link repair). Returns `false` if the SoC was healthy
    /// already.
    pub fn restore_soc(&mut self, soc: usize) -> bool {
        if self.cluster.socs[soc].healthy {
            return false;
        }
        self.cluster.socs[soc].restore();
        self.reindex(soc);
        self.idle_since[soc] = Some(self.now);
        self.cluster
            .bmc
            .log(self.now, format!("soc {soc} restored to service"));
        self.events.record(
            self.now,
            Scope::Recovery,
            EventKind::SocRestored { soc: soc as u32 },
        );
        self.record_power();
        true
    }

    /// Sends one wire frame to the BMC and returns its response. Recovery
    /// tooling uses the same framed protocol an external management agent
    /// would (§2.2), rather than reaching into simulator state.
    pub fn bmc_frame(
        &mut self,
        frame: &[u8],
    ) -> Result<crate::bmc::BmcResponse, crate::bmc::BmcProtocolError> {
        self.cluster.bmc.handle_frame(frame)
    }

    /// Applies power-state change commands queued at the BMC by
    /// `SetSocPowerState` frames: `Off` decommissions a healthy SoC (its
    /// workloads must have been evacuated first), `Idle`/`Active` restore a
    /// failed one. Returns the number of transitions applied.
    pub fn apply_bmc_state_changes(&mut self) -> usize {
        let mut applied = 0;
        for (soc, state) in self.cluster.bmc.take_state_changes() {
            match state {
                PowerState::Off | PowerState::Sleep => {
                    if self.cluster.socs[soc].healthy {
                        self.cluster.socs[soc].decommission();
                        self.reindex(soc);
                        self.idle_since[soc] = None;
                        self.cluster
                            .bmc
                            .log(self.now, format!("bmc: soc {soc} powered off"));
                        self.events.record(
                            self.now,
                            Scope::Power,
                            EventKind::SocOff { soc: soc as u32 },
                        );
                        applied += 1;
                    }
                }
                PowerState::Idle | PowerState::Active => {
                    if self.restore_soc(soc) {
                        applied += 1;
                    }
                }
            }
        }
        if applied > 0 {
            self.record_power();
        }
        applied
    }

    /// Overrides one SoC's BMC temperature reading (deci-°C granularity at
    /// the wire). The thermal model overwrites this on the next
    /// [`Self::advance_to`]; fault injection re-asserts it while a thermal
    /// trip is active.
    pub fn set_soc_temp(&mut self, soc: usize, temp_c: f64) {
        self.cluster.bmc.set_temp(soc, temp_c);
    }

    /// Cross-checks the incrementally maintained placement index against
    /// linear scans of the live fleet for a spread of probe demands
    /// (placement-index invariant 2). Returns `true` when every indexed
    /// decision is byte-identical to the scan — the chaos campaigns call
    /// this after every fault step and treat `false` as an invariant
    /// violation.
    pub fn verify_placement_index(&self) -> bool {
        let probes = [
            Demand::default(),
            Demand {
                cpu_pu: 248.8,
                net_mbps: 3.0,
                mem_gb: 0.3,
                ..Default::default()
            },
            Demand {
                cpu_pu: socc_hw::calib::SOC_CPU_TRANSCODE_PU,
                mem_gb: 0.5,
                ..Default::default()
            },
            Demand {
                gpu_frac: 0.125,
                cpu_pu: 300.0,
                net_mbps: 8.0,
                mem_gb: 1.2,
                ..Default::default()
            },
            // Venus hardware-codec sessions: the codec dimensions (MB/s
            // throughput plus the session cap) and the §4.4 delegation
            // daemon's CPU tax, as `demand_for` builds for LiveStreamHw.
            Demand {
                codec_mb_s: socc_video::vbench::by_id("V3")
                    .expect("V3 is in the catalogue")
                    .hw_cost_mb_s(),
                codec_sessions: 1,
                cpu_pu: self.cluster.socs[0]
                    .spec
                    .codec
                    .delegation_cpu_pu_per_session,
                net_mbps: 8.3,
                mem_gb: 0.3,
                ..Default::default()
            },
            Demand {
                codec_mb_s: socc_video::vbench::by_id("V6")
                    .expect("V6 is in the catalogue")
                    .hw_cost_mb_s(),
                codec_sessions: 1,
                cpu_pu: self.cluster.socs[0]
                    .spec
                    .codec
                    .delegation_cpu_pu_per_session,
                net_mbps: 65.6,
                mem_gb: 0.3,
                ..Default::default()
            },
        ];
        probes.iter().all(|d| {
            let scan_first = self.cluster.socs.iter().position(|s| s.fits(d));
            let scan_least = self
                .cluster
                .socs
                .iter()
                .enumerate()
                .filter(|(_, s)| s.fits(d))
                .min_by(|(_, a), (_, b)| {
                    a.cpu_utilization()
                        .get()
                        .partial_cmp(&b.cpu_utilization().get())
                        .expect("utilization is never NaN")
                })
                .map(|(i, _)| i);
            self.placement.first_fit(d, &self.cluster.socs) == scan_first
                && self.placement.least_loaded_fit(d, &self.cluster.socs) == scan_least
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socc_dl::{DType, ModelId};

    fn orch() -> Orchestrator {
        Orchestrator::new(OrchestratorConfig::default())
    }

    fn live_v1() -> WorkloadSpec {
        WorkloadSpec::LiveStreamCpu {
            video: socc_video::vbench::by_id("V1").unwrap(),
        }
    }

    #[test]
    fn submit_and_finish_roundtrip() {
        let mut o = orch();
        let id = o.submit(live_v1()).unwrap();
        assert_eq!(o.active_workloads(), 1);
        assert_eq!(o.placement_of(id), Some(0)); // bin-pack starts at 0
        o.finish(id).unwrap();
        assert_eq!(o.active_workloads(), 0);
        assert_eq!(o.stats().completed, 1);
    }

    #[test]
    fn soc_capacity_binds_at_table3_counts() {
        let mut o = orch();
        // One SoC takes 13 V1 streams (Table 3); bin-pack fills SoC 0 then 1.
        for i in 0..14 {
            let id = o.submit(live_v1()).unwrap();
            let expected = if i < 13 { 0 } else { 1 };
            assert_eq!(o.placement_of(id), Some(expected), "stream {i}");
        }
    }

    #[test]
    fn cluster_fills_to_780_v1_streams() {
        // Table 3 × 60 SoCs: 13 × 60 = 780 CPU streams of V1.
        let mut o = orch();
        let mut admitted = 0;
        while o.submit(live_v1()).is_ok() {
            admitted += 1;
        }
        assert_eq!(admitted, 780);
    }

    #[test]
    fn archive_jobs_complete_on_their_own() {
        let mut o = orch();
        let video = socc_video::vbench::by_id("V1").unwrap();
        // 156 frames at 15.6 fps = 10 s.
        o.submit(WorkloadSpec::ArchiveJob { video, frames: 156 })
            .unwrap();
        o.advance_to(SimTime::from_secs(5));
        assert_eq!(o.active_workloads(), 1);
        o.advance_to(SimTime::from_secs(11));
        assert_eq!(o.active_workloads(), 0);
        assert_eq!(o.stats().completed, 1);
    }

    #[test]
    fn idle_socs_sleep_and_power_drops() {
        let mut o = orch();
        let id = o.submit(live_v1()).unwrap();
        o.advance_to(SimTime::from_secs(10));
        o.finish(id).unwrap();
        let before_sleep = o.power();
        // Default sleep_after = 30 s; everything is asleep at t = 100 s.
        o.advance_to(SimTime::from_secs(100));
        let (_, idle, sleeping, _) = o.cluster().state_counts();
        assert_eq!(idle, 0);
        assert_eq!(sleeping, 60);
        assert!(o.power().as_watts() < before_sleep.as_watts() * 0.4);
    }

    #[test]
    fn dl_serving_demands_follow_engine_capacity() {
        let mut o = orch();
        // One SoC DSP serves ~113 fps of INT8 ResNet-50; 60 fps fits.
        let id = o
            .submit(WorkloadSpec::DlServe {
                processor: SocProcessor::Dsp,
                model: ModelId::ResNet50,
                dtype: DType::Int8,
                offered_fps: 60.0,
            })
            .unwrap();
        assert_eq!(o.placement_of(id), Some(0));
        // 200 fps exceeds one DSP.
        let err = o
            .submit(WorkloadSpec::DlServe {
                processor: SocProcessor::Dsp,
                model: ModelId::ResNet50,
                dtype: DType::Int8,
                offered_fps: 200.0,
            })
            .unwrap_err();
        assert_eq!(err, AdmissionError::NoCapacity);
    }

    #[test]
    fn unsupported_dl_combo_rejected() {
        let mut o = orch();
        let err = o
            .submit(WorkloadSpec::DlServe {
                processor: SocProcessor::Dsp,
                model: ModelId::BertBase,
                dtype: DType::Int8,
                offered_fps: 1.0,
            })
            .unwrap_err();
        assert_eq!(err, AdmissionError::Unsupported);
    }

    #[test]
    fn fault_migrates_workloads() {
        let mut o = orch();
        let a = o.submit(live_v1()).unwrap();
        let b = o.submit(live_v1()).unwrap();
        assert_eq!(o.placement_of(a), Some(0));
        o.inject_fault(0);
        // Both streams moved off the dead SoC.
        assert_eq!(o.stats().migrations, 2);
        assert_ne!(o.placement_of(a), Some(0));
        assert_ne!(o.placement_of(b), Some(0));
        assert_eq!(o.stats().dropped, 0);
        // The dead SoC takes no further work.
        assert!(!o.cluster().socs[0].healthy);
    }

    #[test]
    fn fault_with_full_cluster_drops_workloads() {
        let mut o = orch();
        loop {
            if o.submit(live_v1()).is_err() {
                break;
            }
        }
        let before = o.active_workloads();
        o.inject_fault(0);
        // 13 streams had nowhere to go.
        assert_eq!(o.stats().dropped, 13);
        assert_eq!(o.active_workloads(), before - 13);
    }

    #[test]
    fn energy_accumulates_over_time() {
        let mut o = orch();
        o.submit(live_v1()).unwrap();
        o.advance_to(SimTime::from_secs(60));
        let e = o.energy().as_joules();
        // At least the idle floor for a minute.
        assert!(e > 100.0 * 60.0, "energy {e}");
        assert!(o.power_series().len() >= 2);
    }

    #[test]
    fn fail_soc_returns_stranded_workloads_sorted() {
        let mut o = orch();
        let a = o.submit(live_v1()).unwrap();
        let b = o.submit(live_v1()).unwrap();
        let victims = o.fail_soc(0);
        assert_eq!(
            victims.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a, b]
        );
        assert!(!o.cluster().socs[0].healthy);
        assert_eq!(o.active_workloads(), 0, "victims are handed back, not kept");
        assert_eq!(o.stats().dropped, 0, "nothing silently dropped");
        // A second fail on the same SoC is a no-op.
        assert!(o.fail_soc(0).is_empty());
    }

    #[test]
    fn restore_soc_returns_slot_to_service() {
        let mut o = orch();
        o.fail_soc(0);
        assert!(o.restore_soc(0));
        assert!(!o.restore_soc(0), "already healthy");
        let id = o.submit(live_v1()).unwrap();
        assert_eq!(o.placement_of(id), Some(0), "bin-pack reuses slot 0");
    }

    #[test]
    fn bmc_frames_drive_power_transitions() {
        use crate::bmc::{encode_command, BmcCommand, BmcResponse};
        use socc_hw::power::PowerState;
        let mut o = orch();
        let r = o
            .bmc_frame(&encode_command(BmcCommand::SetSocPowerState(
                3,
                PowerState::Off,
            )))
            .unwrap();
        assert_eq!(r, BmcResponse::Ack);
        assert_eq!(o.apply_bmc_state_changes(), 1);
        assert!(!o.cluster().socs[3].healthy);
        o.bmc_frame(&encode_command(BmcCommand::SetSocPowerState(
            3,
            PowerState::Idle,
        )))
        .unwrap();
        assert_eq!(o.apply_bmc_state_changes(), 1);
        assert!(o.cluster().socs[3].healthy);
    }

    #[test]
    fn take_completions_reports_finished_ids() {
        let mut o = orch();
        let live = o.submit(live_v1()).unwrap();
        let video = socc_video::vbench::by_id("V1").unwrap();
        let job = o
            .submit(WorkloadSpec::ArchiveJob { video, frames: 156 })
            .unwrap();
        o.finish(live).unwrap();
        assert_eq!(o.take_completions(), vec![live]);
        o.advance_to(SimTime::from_secs(20));
        assert_eq!(o.take_completions(), vec![job]);
        assert!(o.take_completions().is_empty());
    }

    // `&[Range]` is the avoid-set type; one board is one range.
    #[allow(clippy::single_range_in_vec_init)]
    #[test]
    fn submit_avoiding_skips_the_failed_board() {
        let mut o = orch();
        // Avoid board 0 (slots 0..5): the stream must land on slot 5 even
        // though bin-pack would pick 0.
        let id = o.submit_avoiding(live_v1(), &[0..5]).unwrap();
        assert_eq!(o.placement_of(id), Some(5));
        // With no ranges the decision degenerates to plain first-fit.
        let id = o.submit_avoiding(live_v1(), &[]).unwrap();
        assert_eq!(o.placement_of(id), Some(0));
        // Avoiding the whole fleet rejects even with capacity everywhere.
        assert_eq!(
            o.submit_avoiding(live_v1(), &[0..60]).unwrap_err(),
            AdmissionError::NoCapacity
        );
    }

    #[test]
    fn admission_floor_rejects_below_floor_work() {
        use crate::priority::Priority;
        let mut o = orch();
        o.set_admission_floor(Some(Priority::Serving));
        let video = socc_video::vbench::by_id("V1").unwrap();
        let err = o
            .submit(WorkloadSpec::ArchiveJob { video, frames: 156 })
            .unwrap_err();
        assert_eq!(err, AdmissionError::Degraded);
        assert_eq!(o.stats().rejected, 1);
        // At-or-above the floor still admits.
        o.submit(live_v1()).unwrap();
        o.set_admission_floor(None);
        let video = socc_video::vbench::by_id("V1").unwrap();
        o.submit(WorkloadSpec::ArchiveJob { video, frames: 156 })
            .unwrap();
    }

    #[test]
    fn placement_index_verifies_through_churn() {
        let mut o = orch();
        assert!(o.verify_placement_index());
        let a = o.submit(live_v1()).unwrap();
        for _ in 0..40 {
            o.submit(live_v1()).unwrap();
        }
        o.fail_soc(1);
        o.finish(a).unwrap();
        o.restore_soc(1);
        assert!(o.verify_placement_index());
    }

    #[test]
    fn gaming_sessions_consume_gpu_slots() {
        let mut o = orch();
        for _ in 0..8 {
            o.submit(WorkloadSpec::GamingSession { stream_mbps: 8.0 })
                .unwrap();
        }
        // 8 sessions fill SoC 0's GPU (8 × 0.125); the 9th goes to SoC 1.
        let id = o
            .submit(WorkloadSpec::GamingSession { stream_mbps: 8.0 })
            .unwrap();
        assert_eq!(o.placement_of(id), Some(1));
    }
}
