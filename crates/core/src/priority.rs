//! QoS classes and preemption.
//!
//! Production edge sites mix revenue-critical interactive work (gaming,
//! live streams) with deferrable batch work (archive transcoding). When an
//! interactive workload finds the cluster full, the orchestrator should
//! evict batch work rather than reject — archive jobs restart cheaply,
//! dropped game sessions do not. This module adds priority-aware admission
//! on top of [`Orchestrator`].

use serde::{Deserialize, Serialize};

use crate::orchestrator::Orchestrator;
use crate::workload::{AdmissionError, WorkloadId, WorkloadSpec};

/// Scheduling priority of a workload class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Priority {
    /// Deferrable batch work (archive transcoding).
    Batch,
    /// Throughput serving (DL pools).
    Serving,
    /// Interactive, revenue-critical (gaming, live streams).
    Interactive,
}

/// The intrinsic priority of a workload spec.
pub fn priority_of(spec: &WorkloadSpec) -> Priority {
    match spec {
        WorkloadSpec::ArchiveJob { .. } => Priority::Batch,
        WorkloadSpec::DlServe { .. } => Priority::Serving,
        WorkloadSpec::LiveStreamCpu { .. }
        | WorkloadSpec::LiveStreamHw { .. }
        | WorkloadSpec::GamingSession { .. } => Priority::Interactive,
    }
}

/// Result of a preempting admission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreemptingAdmission {
    /// The admitted workload.
    pub id: WorkloadId,
    /// Lower-priority workloads evicted to make room (empty if none were
    /// needed).
    pub evicted: Vec<WorkloadId>,
}

/// Priority-aware admission for the orchestrator.
pub trait PriorityAdmission {
    /// Submits a workload; if the cluster is full and the workload outranks
    /// running batch work, evicts just enough lower-priority workloads to
    /// fit. Evicted ids are returned so callers can requeue them.
    fn submit_with_preemption(
        &mut self,
        spec: WorkloadSpec,
    ) -> Result<PreemptingAdmission, AdmissionError>;
}

impl PriorityAdmission for Orchestrator {
    fn submit_with_preemption(
        &mut self,
        spec: WorkloadSpec,
    ) -> Result<PreemptingAdmission, AdmissionError> {
        match self.submit(spec.clone()) {
            Ok(id) => Ok(PreemptingAdmission {
                id,
                evicted: Vec::new(),
            }),
            // Unsupported shapes can never run; a below-floor priority in a
            // brownout must not evict its way past the floor either.
            Err(e @ (AdmissionError::Unsupported | AdmissionError::Degraded)) => Err(e),
            Err(_) => {
                let want = priority_of(&spec);
                // Find victims strictly below the incoming priority, lowest
                // class first, newest first (cheapest restart).
                let mut victims: Vec<(Priority, WorkloadId)> = self
                    .workload_ids()
                    .into_iter()
                    .filter_map(|id| {
                        let p = priority_of(self.spec_of(id)?);
                        (p < want).then_some((p, id))
                    })
                    .collect();
                victims.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
                let mut evicted = Vec::new();
                for (_, victim) in victims {
                    self.finish(victim).expect("victim exists");
                    evicted.push(victim);
                    match self.submit(spec.clone()) {
                        Ok(id) => return Ok(PreemptingAdmission { id, evicted }),
                        Err(_) => continue,
                    }
                }
                // Nothing (more) to evict. Any evictions already made freed
                // capacity the incoming workload still could not use, so
                // the demand shape is the blocker; report the rejection.
                Err(AdmissionError::NoCapacity)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::OrchestratorConfig;

    fn orch() -> Orchestrator {
        Orchestrator::new(OrchestratorConfig::default())
    }

    fn fill_with_archive(o: &mut Orchestrator) -> usize {
        let v = socc_video::vbench::by_id("V1").unwrap();
        let mut n = 0;
        while o
            .submit(WorkloadSpec::ArchiveJob {
                video: v.clone(),
                frames: 1_000_000,
            })
            .is_ok()
        {
            n += 1;
        }
        n
    }

    #[test]
    fn priorities_are_ordered() {
        assert!(Priority::Interactive > Priority::Serving);
        assert!(Priority::Serving > Priority::Batch);
        let v = socc_video::vbench::by_id("V1").unwrap();
        assert_eq!(
            priority_of(&WorkloadSpec::ArchiveJob {
                video: v.clone(),
                frames: 1
            }),
            Priority::Batch
        );
        assert_eq!(
            priority_of(&WorkloadSpec::LiveStreamCpu { video: v }),
            Priority::Interactive
        );
    }

    #[test]
    fn live_preempts_archive_when_full() {
        let mut o = orch();
        let filled = fill_with_archive(&mut o);
        assert_eq!(filled, 60, "one archive job per SoC");
        let v = socc_video::vbench::by_id("V1").unwrap();
        // Plain submit is rejected…
        assert!(o
            .submit(WorkloadSpec::LiveStreamCpu { video: v.clone() })
            .is_err());
        // …preempting admission evicts one archive job.
        let adm = o
            .submit_with_preemption(WorkloadSpec::LiveStreamCpu { video: v })
            .expect("preemption succeeds");
        assert_eq!(adm.evicted.len(), 1);
        assert_eq!(o.active_workloads(), 60, "59 archive + 1 live");
    }

    #[test]
    fn no_preemption_when_room_exists() {
        let mut o = orch();
        let v = socc_video::vbench::by_id("V1").unwrap();
        let adm = o
            .submit_with_preemption(WorkloadSpec::LiveStreamCpu { video: v })
            .unwrap();
        assert!(adm.evicted.is_empty());
    }

    #[test]
    fn batch_never_preempts_anything() {
        let mut o = orch();
        fill_with_archive(&mut o);
        let v = socc_video::vbench::by_id("V1").unwrap();
        let err = o
            .submit_with_preemption(WorkloadSpec::ArchiveJob {
                video: v,
                frames: 100,
            })
            .unwrap_err();
        assert_eq!(err, AdmissionError::NoCapacity);
        assert_eq!(o.active_workloads(), 60, "nothing was evicted");
    }

    #[test]
    fn interactive_cannot_preempt_interactive() {
        let mut o = orch();
        let v6 = socc_video::vbench::by_id("V6").unwrap();
        // Fill every SoC with interactive V6 streams.
        loop {
            if o.submit(WorkloadSpec::LiveStreamCpu { video: v6.clone() })
                .is_err()
            {
                break;
            }
        }
        let before = o.active_workloads();
        let err = o
            .submit_with_preemption(WorkloadSpec::LiveStreamCpu { video: v6 })
            .unwrap_err();
        assert_eq!(err, AdmissionError::NoCapacity);
        assert_eq!(o.active_workloads(), before);
    }

    #[test]
    fn eviction_count_is_minimal() {
        let mut o = orch();
        fill_with_archive(&mut o);
        // A V2 stream needs ~216 pu: evicting one archive job (3,235 pu)
        // is more than enough; exactly one eviction expected.
        let v2 = socc_video::vbench::by_id("V2").unwrap();
        let adm = o
            .submit_with_preemption(WorkloadSpec::LiveStreamCpu { video: v2 })
            .unwrap();
        assert_eq!(adm.evicted.len(), 1);
    }
}
